"""Experiment: simulation throughput across engines and batch widths.

The explorer's quantitative loop (compile candidates, *simulate* them
over stimulus, compare outputs) was bottlenecked on the scalar
simulator, which re-decodes every instruction word on every cycle.
The decode-once engines amortize that decode, and the numpy engine
steps whole stimulus batches as array operations.

This bench measures cycles/second for all three engines at batch
widths 1, 16 and 256, asserts every engine stays bit-identical to the
scalar oracle, asserts the numpy engine clears a 10x speedup at width
256, and writes the trajectory to ``BENCH_sim.json`` (uploaded as a
CI artifact; ``tools/check_sim_regression.py`` guards it against the
committed ``benchmarks/sim_baseline.json``).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro import Q15, CompileOptions, Telemetry, Toolchain, use_telemetry
from repro.apps import fir_application
from repro.sim import NUMPY_AVAILABLE, run_batch

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

BATCH_WIDTHS = (1, 16, 256)
N_SAMPLES = 16
#: The acceptance floor for the numpy engine at the widest batch.
MIN_NUMPY_SPEEDUP = 10.0


def compiled_program():
    toolchain = Toolchain("fir", CompileOptions(disk_cache=False))
    coefficients = [0.05 * (k + 1) for k in range(8)]
    return toolchain.compile(fir_application(coefficients, name="fir8")).binary


def stimulus_lanes(n_lanes: int, seed: int = 0):
    rng = random.Random(seed)
    return [
        {"x": [rng.randint(Q15.min_value, Q15.max_value)
               for _ in range(N_SAMPLES)]}
        for _ in range(n_lanes)
    ]


def timed_run(program, lanes, engine):
    """(outputs, seconds, simulated cycles) for one engine pass."""
    obs = Telemetry()
    start = time.perf_counter()
    with use_telemetry(obs):
        outputs = run_batch(program, [dict(lane) for lane in lanes],
                            engine=engine)
    seconds = time.perf_counter() - start
    return outputs, seconds, obs.counters["sim.cycles"]


def test_bench_sim_engines():
    program = compiled_program()
    engines = ["scalar", "decoded"] + (["numpy"] if NUMPY_AVAILABLE else [])

    record = {
        "program": "fir8 on the fir core",
        "n_samples": N_SAMPLES,
        "numpy_available": NUMPY_AVAILABLE,
        "batch": {},
    }
    print(f"\n{'N':>4}  {'engine':8}  {'seconds':>9}  {'cycles/s':>12}  "
          f"{'speedup':>8}")
    for n_lanes in BATCH_WIDTHS:
        lanes = stimulus_lanes(n_lanes, seed=n_lanes)
        rows = {}
        oracle = None
        for engine in engines:
            outputs, seconds, cycles = timed_run(program, lanes, engine)
            if engine == "scalar":
                oracle = outputs
            else:
                # The load-bearing check: engines are bit-identical.
                assert outputs == oracle, f"{engine} diverged at N={n_lanes}"
            rows[engine] = {
                "seconds": seconds,
                "cycles": cycles,
                "cycles_per_sec": cycles / seconds if seconds else None,
            }
        scalar_rate = rows["scalar"]["cycles_per_sec"]
        for engine in engines:
            rate = rows[engine]["cycles_per_sec"]
            rows[engine]["speedup_vs_scalar"] = (
                rate / scalar_rate if scalar_rate and rate else None)
            print(f"{n_lanes:>4}  {engine:8}  "
                  f"{rows[engine]['seconds']:>9.4f}  {rate:>12.0f}  "
                  f"{rows[engine]['speedup_vs_scalar']:>7.1f}x")
        record["batch"][str(n_lanes)] = rows

    if NUMPY_AVAILABLE:
        widest = record["batch"][str(BATCH_WIDTHS[-1])]
        speedup = widest["numpy"]["speedup_vs_scalar"]
        assert speedup >= MIN_NUMPY_SPEEDUP, (
            f"numpy engine at N={BATCH_WIDTHS[-1]} is only "
            f"{speedup:.1f}x over scalar (floor {MIN_NUMPY_SPEEDUP}x)")

    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")


@pytest.mark.skipif(NUMPY_AVAILABLE, reason="numpy installed")
def test_bench_sim_records_fallback():
    """Without numpy the bench still runs (and records that it did) —
    the pure-Python engines are the only requirement."""
    assert not NUMPY_AVAILABLE
