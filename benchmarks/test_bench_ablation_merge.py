"""Experiment abl-merge: resource merging reduces parallelism.

Paper (section 5): "the merging of resources such as busses and
register files.  Then these resources can be shared at the cost of
reduction of parallelism."

We merge the two ALU operand files (one shared write port: 91 result
writes serialise) and the MULT/ALU result buses (116 values on one
bus) and measure the schedule stretch on the audio application.  The
merged cores are cheaper silicon; the schedule must grow well past the
64-cycle budget — the quantified cost the paper alludes to.
"""

from __future__ import annotations

from repro import Toolchain, audio_core
from repro.apps import audio_application, audio_io_binding
from repro.arch import MergeSpec


def build(merges=None, budget=None):
    # The longer merged schedules stretch value lifetimes, so this
    # ablation runs on the wide-register variant of the core: register
    # pressure must not mask the schedule-length effect under study.
    # -O0 keeps the paper's exact 58-write / 116-value counts.
    core = audio_core(rf_scale=4) if merges is not None else audio_core()
    return Toolchain(core, cache=None, budget=budget, opt=0) \
        .compile(audio_application(), io_binding=audio_io_binding(), merges=merges)


def test_bench_unmerged(benchmark):
    compiled = benchmark(lambda: build(budget=64))
    assert compiled.n_cycles == 63
    print(f"\nabl-merge[distributed]: {compiled.n_cycles} cycles")


def test_bench_merged_alu_operand_files(benchmark):
    merges = MergeSpec().merge_register_files(
        "rf_alu", ["rf_alu_p0", "rf_alu_p1"]
    )
    compiled = benchmark(lambda: build(merges))
    # 56 + 35 result writes now share one write port: >= 91 cycles.
    assert compiled.n_cycles >= 91
    print(f"\nabl-merge[alu operand files merged]: {compiled.n_cycles} "
          f"cycles (write-port bound 91)")


def test_bench_merged_result_buses(benchmark):
    merges = MergeSpec().merge_buses("bus_mult_alu", ["bus_mult", "bus_alu"])
    compiled = benchmark(lambda: build(merges))
    # 58 products + 58 ALU results on one bus: >= 116 cycles.
    assert compiled.n_cycles >= 116
    print(f"\nabl-merge[mult/alu buses merged]: {compiled.n_cycles} "
          f"cycles (bus bound 116)")
