"""Shared fixtures for the benchmark harness.

Every bench regenerates one evaluation artifact of the paper (see
DESIGN.md's per-experiment index) and prints the measured rows next to
the published ones.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro import Toolchain, audio_core
from repro.apps import audio_application, audio_io_binding
from repro.core import ClassTable, InstructionSet, impose_instruction_set
from repro.rtgen import generate_rts
from repro.sched import build_dependence_graph

#: The published figure-9 rows: display name -> (percent, operation count).
FIGURE9_PAPER = {
    "PRG_CNST": (92, 58),
    "ROM": (92, 58),
    "MULT": (92, 58),
    "ALU": (92, 58),
    "ACU": (93, 59),
    "RAM": (92, 58),
    "IPB": (3, 2),
    "OPB_1": (6, 4),
    "OPB_2": (6, 4),
}

#: OPU name -> figure-9 display name.
FIGURE9_NAMES = {
    "prg_c": "PRG_CNST", "rom": "ROM", "mult": "MULT", "alu": "ALU",
    "acu": "ACU", "ram": "RAM", "ipb": "IPB", "opb_1": "OPB_1",
    "opb_2": "OPB_2",
}

FIGURE9_ORDER = ["prg_c", "rom", "mult", "alu", "acu", "ram",
                 "ipb", "opb_1", "opb_2"]


@pytest.fixture(scope="session")
def audio_compiled():
    """The section-7 compilation, shared by the audio benches.

    Pinned to ``-O0``: the published figures describe the application
    exactly as written, so the paper-reproduction benches bypass the
    machine-independent optimizer (see ``test_bench_opt_levels`` for
    the optimized trajectory).
    """
    return Toolchain(audio_core(), cache=None, budget=64, opt=0) \
        .compile(audio_application(), io_binding=audio_io_binding())


@pytest.fixture(scope="session")
def audio_rt_program():
    """Unmodified RTs of the audio application (before imposition)."""
    return generate_rts(audio_application(), audio_core(), audio_io_binding())


def imposed_graph(cover_algorithm: str = "greedy"):
    """RT program with instruction-set conflicts plus dependence graph."""
    core = audio_core()
    program = generate_rts(audio_application(), core, audio_io_binding())
    table = ClassTable.from_core(core)
    iset = InstructionSet.from_desired(table.names, core.instruction_types)
    model = impose_instruction_set(
        program.rts, table, iset, cover_algorithm=cover_algorithm
    )
    program.rts = model.rts
    return program, build_dependence_graph(program), model
