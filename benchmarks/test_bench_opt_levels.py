"""Experiment opt-levels: the machine-independent optimizer's cycle
savings.

Not a paper figure — the 1995 flow lowered the source exactly as
written — but the paper's own figure of merit (time-loop length in
instructions) is the measure: every transfer the optimizer removes
before RT generation is a slot the scheduler no longer packs.  This
bench records the schedule length of the section-7 audio application
and the synthetic stress networks at ``-O0``/``-O1``/``-O2``:

* the audio application is MULT/ALU-bound (58 + 58 operations against
  the 63-cycle schedule), so CSE of its shared delay-line reads trims
  RAM/ACU pressure without moving the critical resource — the length
  holds while the instruction words get emptier;
* the stress networks are RAM/ACU-bound and share one input delay line
  across all sections, so delay-read CSE plus elimination of the
  sections the outputs never tap collapses the schedule severalfold.

The acceptance gate: ``-O2`` never schedules longer than ``-O0``, and
at least two applications get strictly shorter.
"""

from __future__ import annotations

import pytest

from repro import Toolchain, audio_core
from repro.apps import audio_application, audio_io_binding, stress_application


def compile_at(dfg, core, opt, kwargs):
    """Cold-compile one catalog entry at an optimization level."""
    options = dict(kwargs)
    io_binding = options.pop("io_binding", None)
    return Toolchain(core, cache=None, opt=opt, **options).compile(
        dfg, io_binding=io_binding)


def _catalog():
    big_core = dict(ram_size=256, rom_size=128, rf_scale=4, program_size=512)
    return {
        "sec7-audio": (
            audio_application(), audio_core(),
            dict(budget=64, io_binding=audio_io_binding()),
        ),
        "stress-4": (stress_application(4), audio_core(), {}),
        "stress-8": (
            stress_application(8, seed=1), audio_core(**big_core), {},
        ),
        "stress-16": (
            stress_application(16, seed=1), audio_core(**big_core), {},
        ),
    }


APP_NAMES = list(_catalog())
_LENGTHS: dict[str, dict[int, int]] = {}


def lengths_of(name: str) -> dict[int, int]:
    if name not in _LENGTHS:
        dfg, core, kwargs = _catalog()[name]
        _LENGTHS[name] = {
            level: compile_at(dfg, core, level, kwargs).n_cycles
            for level in (0, 1, 2)
        }
    return _LENGTHS[name]


@pytest.mark.parametrize("name", APP_NAMES)
def test_bench_opt_levels(benchmark, name):
    dfg, core, kwargs = _catalog()[name]
    compiled = benchmark(
        lambda: compile_at(dfg, core, 2, kwargs)
    )
    lengths = lengths_of(name)
    assert compiled.n_cycles == lengths[2]
    # Each level may only shorten the time loop.
    assert lengths[2] <= lengths[1] <= lengths[0]
    report = compiled.opt_report
    print(f"\nopt-levels[{name}]: "
          f"-O0 {lengths[0]} / -O1 {lengths[1]} / -O2 {lengths[2]} cycles; "
          f"-O2 rewrites: {report.summary()}")


def test_bench_opt_levels_strict_reduction():
    rows = {name: lengths_of(name) for name in APP_NAMES}
    strictly_shorter = [
        name for name, lengths in rows.items() if lengths[2] < lengths[0]
    ]
    print("\nopt-levels summary (schedule length)")
    print(f"{'application':<12} {'-O0':>5} {'-O1':>5} {'-O2':>5}")
    for name, lengths in rows.items():
        print(f"{name:<12} {lengths[0]:>5} {lengths[1]:>5} {lengths[2]:>5}")
    assert len(strictly_shorter) >= 2, strictly_shorter
