"""Experiment sec8-folding: time-loop folding.

Paper (section 7): "The total application is scheduled in 63 cycles.
This could be reduced a few cycles if the time-loop could be folded
which is not supported by the current system."

Our folding extension (iterative modulo scheduling over the same
conflict-modelled RTs) quantifies that remark: the initiation interval
must come out below 63 but not below the 59-cycle ACU resource bound.
"""

from __future__ import annotations

from conftest import imposed_graph

from repro.sched import list_schedule, modulo_schedule, resource_mii

UNFOLDED_CYCLES = 63


def test_bench_folding(benchmark):
    program, graph, _ = imposed_graph()
    unfolded = list_schedule(graph, budget=64)
    assert unfolded.length == UNFOLDED_CYCLES

    folded = benchmark(lambda: modulo_schedule(graph, budget_hint=UNFOLDED_CYCLES))
    folded.validate(graph)

    bound = resource_mii(graph.rts)
    assert bound == 59      # the ACU: 58 accesses + the pointer advance
    assert folded.initiation_interval < UNFOLDED_CYCLES
    assert folded.initiation_interval >= bound
    saved = UNFOLDED_CYCLES - folded.initiation_interval
    print(f"\nsec8-folding: unfolded {UNFOLDED_CYCLES} cycles, folded II "
          f"{folded.initiation_interval} (resource bound {bound}) — "
          f"saves {saved} cycle(s), the paper's 'a few cycles'")
