"""Experiment scale: compiler runtime vs application size.

Not a paper figure, but the retargetable-compiler claim implies the
flow stays interactive as applications grow ("the design time may not
be increased significantly", section 3).  We sweep synthetic filter
networks from 4 to 32 sections through the full pipeline.
"""

from __future__ import annotations

import pytest

from repro import Toolchain, audio_core
from repro.apps import stress_application


@pytest.mark.parametrize("n_sections", [4, 8, 16, 32])
def test_bench_pipeline_scaling(benchmark, n_sections):
    dfg = stress_application(n_sections, seed=1)
    # A larger in-house core variant: big applications need a deeper
    # ROM, more state RAM and wider register files.
    core = audio_core(ram_size=256, rom_size=128, rf_scale=4,
                      program_size=512)
    # -O0: this bench measures compiler runtime against the *full*
    # network; the optimizer would (correctly) discard every section
    # the outputs never tap — see test_bench_opt_levels for that story.
    compiled = benchmark(
        lambda: Toolchain(core, cache=None, opt=0).compile(dfg)
    )
    # 3 multiplies per section + 2 gain taps, all on one multiplier.
    expected_mults = 3 * n_sections + 2
    assert compiled.rt_program.opu_histogram()["mult"] == expected_mults
    assert compiled.n_cycles >= expected_mults
    print(f"\nscale[{n_sections} sections]: {len(compiled.rt_program.rts)} "
          f"RTs -> {compiled.n_cycles} cycles")


def test_bench_simulator_throughput(benchmark):
    from repro import Q15
    from repro.apps import audio_application, audio_io_binding

    compiled = Toolchain(audio_core(), cache=None, budget=64) \
        .compile(audio_application(), io_binding=audio_io_binding())
    n = 32
    stimulus = {
        "IN_L": [Q15.from_float(0.01 * (i % 50 - 25)) for i in range(n)],
        "IN_R": [Q15.from_float(0.02 * (i % 25 - 12)) for i in range(n)],
    }
    outputs = benchmark(lambda: compiled.run(stimulus))
    assert all(len(stream) == n for stream in outputs.values())
