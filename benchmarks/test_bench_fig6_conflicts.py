"""Experiments sec6.2 + fig6 + sec6.3: the paper's worked ISA example.

Section 6.2: classes S,T,U,V,X,Y with desired types {S,T}, {S,U,V},
{X,Y} close (rules 1-4) to the 13-type instruction set I.
Figure 6: the conflict graph of I has the ten edges
SX SY TU TV TX TY UX UY VX VY.
Section 6.3: a valid clique cover is {S,X},{S,Y},{T,U,Y},{T,V,X},
{U,X},{V,Y} — six cliques; artificial resources make S- and X-class
RTs conflict (SX = S vs SX = X).
"""

from __future__ import annotations

from repro.core import (
    ConflictGraph,
    InstructionSet,
    edge_per_clique_cover,
    exact_cover,
    greedy_cover,
    verify_cover,
)

CLASSES = ["S", "T", "U", "V", "X", "Y"]
DESIRED = [frozenset("ST"), frozenset("SUV"), frozenset("XY")]
PAPER_EDGES = {frozenset(e) for e in
               ("SX", "SY", "TU", "TV", "TX", "TY", "UX", "UY", "VX", "VY")}
PAPER_COVER = [frozenset("SX"), frozenset("SY"), frozenset("TUY"),
               frozenset("TVX"), frozenset("UX"), frozenset("VY")]


def build_model():
    iset = InstructionSet.from_desired(CLASSES, DESIRED)
    graph = ConflictGraph.from_instruction_set(iset)
    cover = greedy_cover(graph)
    return iset, graph, cover


def test_bench_closure_and_cover(benchmark):
    iset, graph, cover = benchmark(build_model)

    # --- section 6.2: the closed instruction set I ---------------------
    assert len(iset) == 13
    print("\nsec6.2:", iset.pretty())

    # --- figure 6: the ten conflict edges ------------------------------
    assert graph.edges == PAPER_EDGES
    print(f"fig6: {len(graph.edges)} conflict edges "
          f"(paper: {len(PAPER_EDGES)})")
    for edge in sorted(graph.edges, key=sorted):
        a, b = sorted(edge)
        print(f"  {a} -- {b}")

    # --- section 6.3: clique covers ------------------------------------
    verify_cover(graph, PAPER_COVER)       # the paper's cover is valid
    verify_cover(graph, cover)             # ours is valid
    assert len(cover) <= len(PAPER_COVER)  # and no larger
    minimal = exact_cover(graph)
    trivial = edge_per_clique_cover(graph)
    print(f"sec6.3 cover sizes: paper 6, greedy {len(cover)}, "
          f"exact {len(minimal)}, edge-per-clique {len(trivial)}")
    pretty = ", ".join("{" + ",".join(sorted(c)) + "}" for c in cover)
    print(f"greedy cover: {pretty}")
