"""Experiment sec7 + fig9: the paper's headline result.

Paper (section 7): "The total application is scheduled in 63 cycles"
within the 64-cycle budget (2.8 MHz / 44 kHz); figure 9 shows the
occupation distribution: RAM, MULT and ALU "all more than 90% which is
extremely high taking the irregularities in the dataflow of the
application into account.  This also clearly proves the quality of the
code!"

This bench compiles the synthesized figure-7 application end to end and
checks every published number: the 13→9 RT classes, the single 'ABC'
artificial resource, the cycle count and all nine occupation rows.
"""

from __future__ import annotations

from conftest import FIGURE9_NAMES, FIGURE9_ORDER, FIGURE9_PAPER

from repro import Toolchain, audio_core
from repro.apps import audio_application, audio_io_binding
from repro.core import ClassTable
from repro.report import occupation_chart, occupation_rows

PAPER_CYCLES = 63
PAPER_BUDGET = 64


def test_bench_full_compilation(benchmark, audio_compiled):
    # -O0: figure 9's occupation rows count every RT of the source as
    # written; the optimizer's effect is measured in the opt-levels bench.
    compiled = benchmark(
        lambda: Toolchain(audio_core(), cache=None, budget=PAPER_BUDGET,
                          opt=0).compile(audio_application(),
                                         io_binding=audio_io_binding())
    )
    # --- "scheduled in 63 cycles" ------------------------------------
    assert compiled.n_cycles <= PAPER_BUDGET
    assert compiled.n_cycles == PAPER_CYCLES, (
        f"paper: {PAPER_CYCLES} cycles, measured: {compiled.n_cycles}"
    )

    # --- "13 RT classes ... reduced to 9" -----------------------------
    assert len(ClassTable.auto(compiled.core)) == 13
    assert len(compiled.conflict_model.table) == 9

    # --- "A single artificial resource 'ABC'" -------------------------
    assert compiled.conflict_model.cover == [frozenset("ABC")]

    # --- figure 9, row by row -----------------------------------------
    rows = occupation_rows(compiled.schedule, FIGURE9_ORDER, FIGURE9_NAMES)
    print("\nfig9: occupation distribution (paper vs measured)")
    print(f"{'unit':<10} {'paper%':>7} {'ours%':>7} {'paper ops':>10} {'ours ops':>9}")
    for row in rows:
        paper_pct, paper_ops = FIGURE9_PAPER[row.name]
        print(f"{row.name:<10} {paper_pct:>6}% {row.percent:>6}% "
              f"{paper_ops:>10} {row.busy:>9}")
        assert row.percent == paper_pct, f"{row.name}: {row.percent}% vs paper {paper_pct}%"
        assert row.busy == paper_ops, f"{row.name}: {row.busy} ops vs paper {paper_ops}"

    # --- "occupation of the RAM, MULT and ALU are all more than 90%" --
    by_name = {row.name: row for row in rows}
    for unit in ("RAM", "MULT", "ALU"):
        assert by_name[unit].percent > 90

    print(f"\nschedule: {compiled.n_cycles} cycles "
          f"(paper: {PAPER_CYCLES}, budget {PAPER_BUDGET})")
    print(occupation_chart(compiled.schedule, FIGURE9_ORDER, FIGURE9_NAMES))
