"""Experiment base-vertical: why VLIW scheduling is the whole game.

Paper (section 2): "Existing compilers generate code of which the
efficiency is not sufficient.  The quality of the generated code is
measured by comparing with a hand coded implementation."

A non-parallelising compiler emits vertical code — one transfer per
instruction.  On the audio application that is ~359 cycles against the
63-cycle budgeted schedule: a 5.7x gap, far beyond the 64-cycle real-
time budget, which is exactly why the paper adapts the ASIC scheduler
instead of using a conventional compiler.
"""

from __future__ import annotations

from conftest import imposed_graph

from repro.sched import list_schedule, vertical_schedule

VLIW_CYCLES = 63


def test_bench_vertical_baseline(benchmark):
    program, graph, _ = imposed_graph()
    vertical = benchmark(lambda: vertical_schedule(graph))
    vertical.validate(graph)
    vliw = list_schedule(graph, budget=64)

    assert vertical.length >= len(graph.rts)      # one RT per cycle
    assert vliw.length == VLIW_CYCLES
    ratio = vertical.length / vliw.length
    assert ratio > 4
    print(f"\nbase-vertical: vertical {vertical.length} cycles vs VLIW "
          f"{vliw.length} cycles — {ratio:.1f}x; the 64-cycle budget is "
          f"impossible without instruction-level parallelism")
