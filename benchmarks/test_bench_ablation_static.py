"""Experiment abl-static: static conflict modelling vs dynamic checking.

The paper's contribution is that instruction-set restrictions become
*fixed conflicts before scheduling*, so the scheduler stays a plain
resource scheduler.  The alternative re-validates the instruction set
on every placement attempt, which requires the *closed* instruction
set (all sub-instructions, rule 3, and all pairwise-implied types,
rule 4) to be materialised — a family that grows as 2^k with k
mutually-compatible classes.  The conflict-graph model never builds
that family: it only needs the pairwise compatibility relation (k²)
and an edge clique cover.

Three measurements:

1. identical schedule quality on the audio application,
2. one scheduling pass each (comparable runtime on a 9-class core),
3. modelling-setup cost as the class count grows: closure enumeration
   explodes, conflict-graph construction stays flat.
"""

from __future__ import annotations

import pytest
from conftest import imposed_graph

from repro import audio_core
from repro.apps import audio_application, audio_io_binding
from repro.core import (
    ClassTable,
    ConflictGraph,
    InstructionSet,
    greedy_cover,
)
from repro.rtgen import generate_rts
from repro.sched import build_dependence_graph, dynamic_check_schedule
from repro.sched.list_scheduler import _run_critical_path


def test_bench_static_single_pass(benchmark):
    _, graph, _ = imposed_graph()
    schedule = benchmark(lambda: _run_critical_path(graph, None))
    assert schedule.length <= 66
    print(f"\nabl-static[static pass]: {schedule.length} cycles")


def test_bench_dynamic_single_pass(benchmark):
    core = audio_core()
    program = generate_rts(audio_application(), core, audio_io_binding())
    table = ClassTable.from_core(core)
    iset = InstructionSet.from_desired(table.names, core.instruction_types)
    graph = build_dependence_graph(program)

    schedule = benchmark(lambda: dynamic_check_schedule(graph, table, iset))

    # Same legality: no instruction combines conflicting IO classes.
    for instruction in schedule.instructions():
        classes = frozenset(
            rt.rt_class for rt in instruction if rt.rt_class in ("A", "B", "C")
        )
        assert len(classes) <= 1
    print(f"\nabl-static[dynamic pass]: {schedule.length} cycles")


def _wide_instruction_set(k: int):
    """k mutually-compatible datapath classes + 2 exclusive IO classes."""
    classes = [f"C{i}" for i in range(k)] + ["IN", "OUT"]
    desired = [
        frozenset(classes[:k] + ["IN"]),
        frozenset(classes[:k] + ["OUT"]),
    ]
    return classes, desired


@pytest.mark.parametrize("k", [8, 12, 16])
def test_bench_dynamic_model_setup(benchmark, k):
    """The dynamic checker must enumerate the closed family: 2^k types."""
    classes, desired = _wide_instruction_set(k)

    iset = benchmark(lambda: InstructionSet.from_desired(classes, desired))
    # |closure| ≈ 3 * 2^k (k free classes, with IN, with OUT) minus overlaps.
    assert len(iset) > 2 ** k
    print(f"\nabl-static[dynamic setup, k={k}]: {len(iset)} instruction "
          f"types materialised")


@pytest.mark.parametrize("k", [8, 12, 16])
def test_bench_static_model_setup(benchmark, k):
    """The static model only needs pairs + a cover: polynomial.

    The conflict graph is built straight from the *desired* types
    (rules 3-4 never change the pairwise relation), so the closed
    family is never materialised.
    """
    classes, desired = _wide_instruction_set(k)

    def build():
        graph = ConflictGraph.from_types(classes, desired)
        return graph, greedy_cover(graph)

    graph, cover = benchmark(build)
    assert graph.edges == {frozenset({"IN", "OUT"})}
    assert len(cover) == 1
    print(f"\nabl-static[static setup, k={k}]: {len(graph.edges)} conflict "
          f"edge(s), {len(cover)} clique(s)")
