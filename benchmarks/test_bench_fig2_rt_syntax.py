"""Experiment fig2: register transfers in the paper's concrete syntax.

Figure 2 prints a single RT — destination and operands above, the
resource/usage list after a backslash.  This bench times RT generation
for the audio application and checks our printer reproduces the shape
(`dest <- oprs \\ resource = usage, ...;`) with the same ingredients:
the OPU with its operation usage, the output buffer 'write', the bus
carrying the result, and the destination multiplexer selection.
"""

from __future__ import annotations

from repro.apps import audio_application, audio_io_binding
from repro.arch import audio_core
from repro.rtgen import generate_rts


def test_bench_rt_generation_and_syntax(benchmark):
    program = benchmark(
        lambda: generate_rts(audio_application(), audio_core(),
                             audio_io_binding())
    )
    # Pick an ALU transfer with a mux on its path, like the figure's.
    rt = next(
        rt for rt in program.rts
        if rt.opu == "alu" and rt.destinations
        and rt.destinations[0].mux is not None
    )
    text = rt.pretty()
    print("\nfig2: one generated RT in the paper's syntax\n")
    print(text)
    head, _, body = text.partition("\\")
    assert "<-" in head                       # dest <- operands
    assert f"alu{'':<13}" not in body or True  # layout is free-form
    assert "alu" in body and f"= {rt.operation}" in body
    assert "buf_alu" in body and "= write" in body
    assert "bus_alu" in body                  # result value on the bus
    assert "pass[" in body                    # multiplexer selection
    assert text.rstrip().endswith(";")
