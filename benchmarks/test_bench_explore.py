"""Experiment: design-space exploration throughput.

Phase 1 of the paper's methodology is a *loop* — the core designer
sweeps allocations, reads the quantitative feedback, narrows the
ranges and sweeps again.  The seed explorer re-ran the monolithic
compiler end to end for every (application × allocation) pair; the
staged explorer optimizes every application exactly once per opt
level, stops each candidate at register allocation (schedule length is
the feedback — no encoding needed), can fan candidates out over a
process pool, and memoizes evaluated candidates across sweeps.

This bench measures all of that against the seed behavior, asserts the
feedback is unchanged, and writes the measured numbers to
``BENCH_explore.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import importlib
import json
import os
import time
from pathlib import Path

from repro import Toolchain
from repro.apps import fir_application, stress_application
from repro.arch import (
    Allocation,
    ExploreCache,
    SweepSpec,
    explore,
    explore_refined,
    intermediate_architecture,
    pareto_axes,
    pareto_front,
)
from repro.errors import ReproError
from repro.pipeline import DiskCache

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore.json"


def application_set():
    return [
        stress_application(6, seed=2),
        stress_application(8, seed=3),
        fir_application([0.05 * (k + 1) for k in range(6)], name="fir6"),
    ]


def allocation_sweep():
    return [
        Allocation(n_mult=m, n_alu=a, n_ram=r)
        for m in (1, 2) for a in (1, 2) for r in (1, 2)
    ]


def seed_explore(dfgs, allocations, budget=None):
    """The pre-staged-pipeline explorer, verbatim: one monolithic
    cold compile per (application × allocation) pair, re-parsing and
    re-optimizing every time, infeasible points silently dropped."""
    points = []
    for allocation in allocations:
        core = intermediate_architecture(dfgs, allocation)
        lengths = {}
        feasible = True
        for dfg in dfgs:
            try:
                compiled = Toolchain(core, cache=None,
                                     budget=budget).compile(dfg)
            except ReproError:
                feasible = False
                break
            lengths[dfg.name] = compiled.n_cycles
        if feasible:
            points.append((allocation, lengths, len(core.datapath.opus)))
    return points


def test_bench_explore_speedup(monkeypatch, tmp_path):
    """Staged explorer vs the sequential seed, plus warm-cache re-sweep
    and the persistent disk cache (cold fill vs a new process's warm
    sweep over the same directory).

    The wall-clock assertions are deliberately loose (CI machines are
    noisy); the load-bearing checks are exact — identical feedback, the
    machine-independent optimizer runs once per application, and a
    repeated sweep is served from the candidate cache.
    """
    dfgs = application_set()
    allocations = allocation_sweep()

    t0 = time.perf_counter()
    seed_points = seed_explore(dfgs, allocations)
    seed_seconds = time.perf_counter() - t0

    explore_module = importlib.import_module("repro.arch.explore")
    mi_calls: list[str] = []
    real_mi = explore_module.optimize_machine_independent

    def counting(dfg, level=1, fmt=None):
        mi_calls.append(dfg.name)
        return real_mi(dfg, level=level, fmt=fmt)

    monkeypatch.setattr(explore_module, "optimize_machine_independent",
                        counting)
    cache = ExploreCache()
    t0 = time.perf_counter()
    staged_points = explore(dfgs, allocations, cache=cache)
    staged_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_points = explore(dfgs, allocations, cache=cache)
    warm_seconds = time.perf_counter() - t0

    # Identical quantitative feedback, point for point.
    assert [lengths for _, lengths, _ in seed_points] == \
        [p.schedule_lengths for p in staged_points]
    assert [n for _, _, n in seed_points] == [p.n_opus for p in staged_points]
    assert [p.schedule_lengths for p in warm_points] == \
        [p.schedule_lengths for p in staged_points]

    # Each application optimized exactly once per sweep (the warm sweep
    # re-optimizes to key the cache, so two sweeps = 2 × len(dfgs)).
    assert mi_calls[:len(dfgs)] == [d.name for d in dfgs]
    assert len(mi_calls) == 2 * len(dfgs)
    assert cache.hits == len(allocations)

    # Wall clock: the staged sweep must not regress, and the cached
    # re-sweep must be dramatically cheaper (it compiles nothing).
    assert staged_seconds <= seed_seconds * 1.25, \
        f"staged sweep slower than seed: {staged_seconds:.2f}s " \
        f"vs {seed_seconds:.2f}s"
    assert warm_seconds <= staged_seconds * 0.5

    # Persistent disk cache: a cold sweep fills the store; the "next
    # morning's" sweep — a fresh process, empty memory tiers, the same
    # cache directory — must come from disk, not from recompiling.
    cache_dir = tmp_path / "diskcache"
    t0 = time.perf_counter()
    disk_cold_points = explore(dfgs, allocations,
                               cache_dir=str(cache_dir))
    disk_cold_seconds = time.perf_counter() - t0

    new_process_cache = ExploreCache(disk=DiskCache(cache_dir))
    t0 = time.perf_counter()
    disk_warm_points = explore(dfgs, allocations, cache=new_process_cache)
    disk_warm_seconds = time.perf_counter() - t0

    assert [p.schedule_lengths for p in disk_cold_points] == \
        [p.schedule_lengths for p in staged_points]
    assert [p.schedule_lengths for p in disk_warm_points] == \
        [p.schedule_lengths for p in staged_points]
    assert new_process_cache.disk_hits == len(allocations)
    assert disk_warm_seconds < disk_cold_seconds, \
        f"warm-disk sweep not faster: {disk_warm_seconds:.3f}s " \
        f"vs {disk_cold_seconds:.3f}s cold"

    results = {
        "applications": [d.name for d in dfgs],
        "n_allocations": len(allocations),
        "seed_seconds": round(seed_seconds, 4),
        "staged_seconds": round(staged_seconds, 4),
        "warm_cache_seconds": round(warm_seconds, 4),
        "staged_speedup": round(seed_seconds / staged_seconds, 3),
        "warm_cache_speedup": round(seed_seconds / warm_seconds, 1),
        "disk_cold_seconds": round(disk_cold_seconds, 4),
        "disk_warm_seconds": round(disk_warm_seconds, 4),
        "disk_warm_speedup": round(disk_cold_seconds / disk_warm_seconds, 1),
        "cpu_count": os.cpu_count(),
    }

    if (os.cpu_count() or 1) >= 2:
        t0 = time.perf_counter()
        parallel_points = explore(dfgs, allocations, jobs=2)
        parallel_seconds = time.perf_counter() - t0
        assert [p.schedule_lengths for p in parallel_points] == \
            [p.schedule_lengths for p in staged_points]
        results["parallel_jobs"] = 2
        results["parallel_seconds"] = round(parallel_seconds, 4)
        results["parallel_speedup"] = round(seed_seconds / parallel_seconds, 3)

    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print("\nexplore sweep ({} allocations x {} applications):".format(
        len(allocations), len(dfgs)))
    print(f"  seed (monolithic, sequential) : {seed_seconds:8.3f}s")
    print(f"  staged (shared MI-opt)        : {staged_seconds:8.3f}s "
          f"({seed_seconds / staged_seconds:.2f}x)")
    if "parallel_seconds" in results:
        print(f"  staged --jobs 2               : "
              f"{results['parallel_seconds']:8.3f}s "
              f"({results['parallel_speedup']:.2f}x)")
    print(f"  warm candidate cache          : {warm_seconds:8.3f}s "
          f"({seed_seconds / warm_seconds:.0f}x)")
    print(f"  disk cache, cold fill         : {disk_cold_seconds:8.3f}s")
    print(f"  disk cache, new process       : {disk_warm_seconds:8.3f}s "
          f"({disk_cold_seconds / disk_warm_seconds:.0f}x)")
    print(f"  results -> {RESULTS_PATH.name}")


def test_bench_refine_prunes_the_grid():
    """Coarse-to-fine vs the full multi-dimensional cross-product.

    The load-bearing checks are exact: the refined sweep's Pareto front
    equals the full grid's, while evaluating measurably fewer
    candidates.  The wall clock lands in BENCH_explore.json as
    ``refine_speedup`` next to the other trajectory numbers.
    """
    dfgs = application_set()
    spec = SweepSpec(n_mults=(1, 2), n_alus=(1, 2, 3), n_rams=(1,),
                     rf_sizes=(8, 12, 16))
    axes = pareto_axes(spec)

    t0 = time.perf_counter()
    full_points = explore(dfgs, spec.allocations())
    full_seconds = time.perf_counter() - t0
    full_front = pareto_front(full_points, axes=axes)

    t0 = time.perf_counter()
    refined = explore_refined(dfgs, spec)
    refine_seconds = time.perf_counter() - t0

    assert refined.n_evaluated < spec.size, \
        f"refinement evaluated the whole grid ({refined.n_evaluated})"
    assert sorted(p.allocation.astuple() for p in refined.front) == \
        sorted(p.allocation.astuple() for p in full_front), \
        "coarse-to-fine front diverged from the full-grid front"
    # Candidate counts above are the load-bearing pruning proof; the
    # wall clock only guards against a gross regression — the expected
    # win is ~1.3x, so the bound is deliberately loose for noisy CI.
    assert refine_seconds <= full_seconds * 2.0, \
        f"refined sweep grossly slower than the full grid: " \
        f"{refine_seconds:.2f}s vs {full_seconds:.2f}s"

    results = json.loads(RESULTS_PATH.read_text()) \
        if RESULTS_PATH.exists() else {}
    results.update({
        "refine_grid": spec.size,
        "refine_coarse": refined.n_coarse,
        "refine_fine": refined.n_refined,
        "refine_evaluated": refined.n_evaluated,
        "full_grid_seconds": round(full_seconds, 4),
        "refine_seconds": round(refine_seconds, 4),
        "refine_speedup": round(full_seconds / refine_seconds, 3),
    })
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\ncoarse-to-fine sweep ({spec.size}-point grid x "
          f"{len(dfgs)} applications):")
    print(f"  full cross-product            : {full_seconds:8.3f}s "
          f"({spec.size} candidates)")
    print(f"  coarse-to-fine                : {refine_seconds:8.3f}s "
          f"({refined.n_coarse} coarse + {refined.n_refined} refined, "
          f"{full_seconds / refine_seconds:.2f}x)")
    print(f"  results -> {RESULTS_PATH.name}")


def test_bench_explore_cached_resweep(benchmark):
    """The designer's inner loop: re-sweeping with a warm cache."""
    dfgs = application_set()
    allocations = allocation_sweep()
    cache = ExploreCache()
    explore(dfgs, allocations, cache=cache)  # cold fill
    points = benchmark(lambda: explore(dfgs, allocations, cache=cache))
    assert all(p.feasible for p in points)
    assert cache.hits >= len(allocations)
