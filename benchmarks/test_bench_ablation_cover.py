"""Experiment abl-cover: clique-cover granularity vs scheduler runtime.

Paper (section 6.3): "Note that any clique cover will lead to a valid
schedule.  The only motivation to look for a maximal clique cover is to
minimize the run time of the scheduler."

The audio core's conflict graph is one triangle (A,B,C), so the two
granularities are: one 3-clique {ABC} (maximal) vs three 2-cliques
{AB},{AC},{BC} (edge-per-clique).  Both must deliver the same schedule
length; the maximal cover gives every IO transfer one artificial
resource instead of two, so the scheduler touches fewer usage slots.
"""

from __future__ import annotations

import pytest
from conftest import imposed_graph

from repro.sched import list_schedule

BUDGET = 64


@pytest.mark.parametrize("algorithm,n_cliques", [("greedy", 1), ("edge", 3)])
def test_bench_cover_granularity(benchmark, algorithm, n_cliques):
    program, graph, model = imposed_graph(cover_algorithm=algorithm)
    assert len(model.cover) == n_cliques

    schedule = benchmark(lambda: list_schedule(graph, budget=BUDGET))
    schedule.validate(graph)
    # Any valid cover leads to a valid schedule of the same quality.
    assert schedule.length == 63
    uses = sum(len(rt.uses) for rt in program.rts)
    print(f"\nabl-cover[{algorithm}]: {n_cliques} artificial resource(s), "
          f"{uses} total usage entries, schedule {schedule.length} cycles")
