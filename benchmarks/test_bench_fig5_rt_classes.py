"""Experiments fig5 + sec7-classes: RT class identification.

Figure 5 shows classification by (OPU, usage); the section-7 table
identifies 13 classes on the audio core, reduced to 9 by grouping
RAM {read, write} → X and the four ALU usages → Y.
"""

from __future__ import annotations

from repro.arch import AUDIO_CLASS_TABLE_13, audio_core
from repro.core import ClassTable
from repro.report import class_table_report


def classify_everything(program):
    core = audio_core()
    auto = ClassTable.auto(core)
    reduced = ClassTable.from_core(core)
    by_class = reduced.classify_program(program.rts)
    return auto, reduced, by_class


def test_bench_classification(benchmark, audio_rt_program):
    auto, reduced, by_class = benchmark(
        classify_everything, audio_rt_program
    )

    # "The available register transfers result in 13 RT classes."
    assert len(auto) == 13
    pairs = {(c.opu, u) for c in auto for u in c.usages}
    expected = {(d.opu, u) for d in AUDIO_CLASS_TABLE_13 for u in d.usages}
    assert pairs == expected

    # "... the number of classes is reduced to 9."
    assert len(reduced) == 9
    assert set(reduced.names) == {"A", "B", "C", "D", "X", "G", "Y", "L", "M"}

    # Every audio-application RT classifies into exactly one class.
    total = sum(len(rts) for rts in by_class.values())
    assert total == len(audio_rt_program.rts)

    print("\nfig5/sec7: " + class_table_report(reduced))
    print("\nRTs per class (audio application):")
    for name, rts in sorted(by_class.items()):
        print(f"  {name}: {len(rts)}")
