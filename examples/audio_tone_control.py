#!/usr/bin/env python3
"""The paper's section-7 case study, end to end (figures 7, 8, 9).

Compiles the stereo tone-control application (built around the paper's
published treble-section source) onto the audio core of figure 8 with
the 64-cycle real-time budget (2.8 MHz clock, 44 kHz sample rate),
prints the figure-9 occupation distribution, and runs a stereo sweep
through the compiled microcode.

Run:  python examples/audio_tone_control.py
"""

import math

from repro import Q15, Toolchain, audio_core, run_reference
from repro.apps import audio_application, audio_io_binding
from repro.core import ClassTable
from repro.report import class_table_report, occupation_chart, summary_report

FIGURE9_ORDER = ["prg_c", "rom", "mult", "alu", "acu", "ram",
                 "ipb", "opb_1", "opb_2"]
FIGURE9_NAMES = {
    "prg_c": "PRG_CNST", "rom": "ROM", "mult": "MULT", "alu": "ALU",
    "acu": "ACU", "ram": "RAM", "ipb": "IPB", "opb_1": "OPB_1",
    "opb_2": "OPB_2",
}


def main() -> None:
    core = audio_core()
    application = audio_application()

    print("=== the core's RT classes (13 auto, 9 after grouping) ===")
    print(class_table_report(ClassTable.from_core(core)))
    print()

    compiled = Toolchain(core, budget=64).compile(
        application, io_binding=audio_io_binding(),
    )
    print("=== compilation summary ===")
    print(summary_report(compiled))
    print()
    print(f"=== figure 9: occupation distribution of the "
          f"{compiled.n_cycles}-cycle schedule ===")
    print(occupation_chart(compiled.schedule, FIGURE9_ORDER, FIGURE9_NAMES))
    print()

    # A stereo test signal: 1 kHz-ish sine left, 3 kHz-ish sine right.
    n = 32
    left = [Q15.from_float(0.4 * math.sin(2 * math.pi * i / 44.1))
            for i in range(n)]
    right = [Q15.from_float(0.3 * math.sin(2 * math.pi * 3 * i / 44.1))
             for i in range(n)]
    stimulus = {"IN_L": left, "IN_R": right}

    outputs = compiled.run(stimulus)
    expected = run_reference(compiled.dfg, stimulus)
    assert outputs == expected, "microcode must match the reference"

    print("=== first 8 samples of each output band (Q15) ===")
    for port in sorted(outputs):
        print(f"  {port:<8} {outputs[port][:8]}")
    print()
    print(f"schedule {compiled.n_cycles} cycles (paper: 63, budget 64); "
          f"all streams bit-exact against the reference ✔")


if __name__ == "__main__":
    main()
