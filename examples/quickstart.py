#!/usr/bin/env python3
"""Quickstart: compile a five-line application onto the tiny core.

The flow of the paper's figure 1b in its smallest form:

1. write an application in the time-loop source language,
2. pick an in-house core by registered name (datapath + controller +
   instruction set — see ``repro.arch.list_cores``),
3. bind core and options in a ``Toolchain`` and compile — RT
   generation, instruction-set conflict modelling, scheduling,
   register allocation, binary encoding,
4. execute the binary on the cycle-accurate simulator and compare with
   the golden reference interpreter,
5. read the telemetry: the same ``Toolchain`` call recorded a span per
   pipeline stage, cache counters and subsystem tallies (see
   ``docs/observability.md``), printed here as a timeline,
6. sweep a few candidate architectures with a progress callback — the
   paper's phase-1 exploration in miniature.

Run:  python examples/quickstart.py
"""

from repro import (
    Q15,
    CompileOptions,
    Telemetry,
    Toolchain,
    parse_source,
    run_reference,
)
from repro.apps import fir_application
from repro.arch import Allocation
from repro.report import gantt_chart, summary_report, timeline

SOURCE = """
app quickstart;
param gain = 0.5;             /* quantised to Q15 and fetched as a constant */
input  i;
output o;
loop {
  scaled := add(i, gain);     /* one ALU operation per sample */
  o = scaled;
}
"""


def main() -> None:
    obs = Telemetry()  # everything the toolchain does lands here
    toolchain = Toolchain("tiny", CompileOptions(budget=8), telemetry=obs)
    compiled = toolchain.compile(SOURCE)

    print(summary_report(compiled))
    print()
    print(gantt_chart(compiled.schedule))
    print()
    print(compiled.binary.listing())

    # Run 5 samples through the compiled binary and the reference.
    stimulus = {"i": [Q15.from_float(x) for x in (0.1, -0.3, 0.25, 0.0, -0.5)]}
    simulated = compiled.run(stimulus)
    expected = run_reference(parse_source(SOURCE), stimulus)
    print()
    print("simulator :", simulated["o"])
    print("reference :", expected["o"])
    assert simulated == expected, "compiled code must match the reference"
    print("bit-exact ✔")

    # Where did the compile spend its time?  The telemetry registry
    # holds a span per stage plus cache/scheduler counters.
    print()
    print(timeline(obs))

    # Phase 1 in miniature: which allocation schedules a 4-tap FIR
    # fastest?  The progress callback streams one record per candidate.
    print()
    fir4 = fir_application([0.1, 0.2, 0.3, 0.4], name="fir4")
    candidates = [Allocation(n_mult=m, n_alu=1, n_ram=1) for m in (1, 2)]
    points = toolchain.explore(
        [fir4], candidates,
        progress=lambda r: print(
            f"  candidate {r['done']}/{r['total']} "
            f"{r['allocation']} feasible={r['feasible']}"
        ),
    )
    for point in points:
        if point.feasible:
            print(f"  {point.allocation.astuple()} -> "
                  f"worst schedule {point.worst_length} cycles")


if __name__ == "__main__":
    main()
