#!/usr/bin/env python3
"""Quickstart: compile a five-line application onto the tiny core.

The flow of the paper's figure 1b in its smallest form:

1. write an application in the time-loop source language,
2. pick an in-house core by registered name (datapath + controller +
   instruction set — see ``repro.arch.list_cores``),
3. bind core and options in a ``Toolchain`` and compile — RT
   generation, instruction-set conflict modelling, scheduling,
   register allocation, binary encoding,
4. execute the binary on the cycle-accurate simulator and compare with
   the golden reference interpreter.

Run:  python examples/quickstart.py
"""

from repro import CompileOptions, Q15, Toolchain, parse_source, run_reference
from repro.report import gantt_chart, summary_report

SOURCE = """
app quickstart;
param gain = 0.5;             /* quantised to Q15 and fetched as a constant */
input  i;
output o;
loop {
  scaled := add(i, gain);     /* one ALU operation per sample */
  o = scaled;
}
"""


def main() -> None:
    toolchain = Toolchain("tiny", CompileOptions(budget=8))
    compiled = toolchain.compile(SOURCE)

    print(summary_report(compiled))
    print()
    print(gantt_chart(compiled.schedule))
    print()
    print(compiled.binary.listing())

    # Run 5 samples through the compiled binary and the reference.
    stimulus = {"i": [Q15.from_float(x) for x in (0.1, -0.3, 0.25, 0.0, -0.5)]}
    simulated = compiled.run(stimulus)
    expected = run_reference(parse_source(SOURCE), stimulus)
    print()
    print("simulator :", simulated["o"])
    print("reference :", expected["o"])
    assert simulated == expected, "compiled code must match the reference"
    print("bit-exact ✔")


if __name__ == "__main__":
    main()
