#!/usr/bin/env python3
"""Retargetability: the same compiler, a new in-house core.

The paper's methodology (section 1): when an application domain needs
capabilities an existing core lacks, the systems house designs a *new*
in-house core and reuses the code generation flow unchanged.

An LMS adaptive filter multiplies two signals (``mu * e[n] * x[n-k]``)
— impossible on the FIR core, whose multiplier coefficient port is fed
only by the constant unit.  The adaptive core adds two interconnect
routes (RAM and ALU results into the coefficient port); nothing else
changes, and the compiler retargets automatically.

Run:  python examples/retarget_lms.py
"""

import random

from repro import Q15, Toolchain, fir_core, run_reference
from repro.apps import adaptive_core, lms_application
from repro.errors import ReproError
from repro.report import summary_report


def main() -> None:
    application = lms_application(n_taps=4, mu=0.25)

    print("=== attempt 1: the FIR core ===")
    try:
        Toolchain(fir_core()).compile(application)
        raise AssertionError("should not be mappable")
    except ReproError as exc:
        print(f"rejected, as expected:\n  {type(exc).__name__}: {exc}\n")

    print("=== attempt 2: the adaptive core (two extra routes) ===")
    compiled = Toolchain(adaptive_core()).compile(application)
    print(summary_report(compiled))
    print()

    # System identification: adapt towards a 4-tap echo plant.
    rng = random.Random(11)
    n = 300
    xs = [rng.randint(-10000, 10000) for _ in range(n)]
    plant = [0.4, 0.3, 0.2, 0.1]
    quantised = [Q15.from_float(h) for h in plant]
    ds = []
    for i in range(n):
        acc = 0
        for k, h in enumerate(quantised):
            sample = xs[i - k] if i - k >= 0 else 0
            acc = Q15.add_clip(Q15.mult(h, sample), acc)
        ds.append(acc)

    stimulus = {"x": xs, "d": ds}
    outputs = compiled.run(stimulus)
    expected = run_reference(compiled.dfg, stimulus)
    assert outputs == expected, "microcode must match the reference"

    errors = outputs["e"]
    head = sum(abs(e) for e in errors[:30]) / 30
    tail = sum(abs(e) for e in errors[-30:]) / 30
    print(f"mean |error|, first 30 samples : {head:8.1f}")
    print(f"mean |error|, last 30 samples  : {tail:8.1f}")
    assert tail < head, "the filter must adapt"
    print("adapting ✔ (and bit-exact against the reference)")


if __name__ == "__main__":
    main()
