#!/usr/bin/env python3
"""FIR filters on the FIR core: budget sweeps and the design iteration.

The paper (sections 2-3): "the cycle budget is specified by the user
... To obtain this efficiency, user interaction with the specification
and with the synthesis tools is more important than automation."  This
example sweeps tap counts, shows the budget/feasibility boundary the
user navigates, and verifies every compiled filter bit-exactly.

Run:  python examples/fir_filter.py
"""

from repro import Q15, Toolchain, fir_core, run_reference
from repro.apps import fir_application, reference_fir
from repro.errors import BudgetExceededError


def impulse(n: int) -> list[int]:
    return [Q15.from_float(0.5)] + [0] * (n - 1)


def main() -> None:
    core = fir_core()
    print(f"core: {core.name} (no ROM — coefficients are program "
          f"constants)\n")

    print("=== tap-count sweep (minimum achievable cycles) ===")
    print(f"{'taps':>5} {'RTs':>5} {'cycles':>7}  first output samples")
    for taps in (1, 2, 4, 8, 16):
        coefficients = [((-1) ** k) * 0.8 / (k + 1) for k in range(taps)]
        dfg = fir_application(coefficients, name=f"fir{taps}")
        compiled = Toolchain(core).compile(dfg)
        stimulus = {"x": impulse(taps + 4)}
        outputs = compiled.run(stimulus)
        expected = run_reference(dfg, stimulus)
        assert outputs == expected
        assert outputs["y"] == reference_fir(coefficients, Q15, stimulus["x"])
        n_rts = len(compiled.rt_program.rts)
        print(f"{taps:>5} {n_rts:>5} {compiled.n_cycles:>7}  "
              f"{outputs['y'][:4]}")

    print()
    print("=== the user's budget iteration (8 taps) ===")
    coefficients = [0.1 * (k + 1) for k in range(8)]
    dfg = fir_application(coefficients, name="fir8")
    for budget in (64, 32, 24, 12, 8):
        try:
            compiled = Toolchain(core, budget=budget).compile(dfg)
            print(f"  budget {budget:>3}: feasible, scheduled in "
                  f"{compiled.n_cycles} cycles")
        except BudgetExceededError as exc:
            print(f"  budget {budget:>3}: infeasible — {exc}")


if __name__ == "__main__":
    main()
