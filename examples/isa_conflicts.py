#!/usr/bin/env python3
"""Walkthrough of the paper's section 6: instruction-set conflict
modelling on the worked S..Y example and on the real audio core.

Shows, step by step:

* closure of desired instruction types under construction rules 1-4
  (section 6.2's 13-type instruction set I),
* the conflict graph of figure 6,
* clique covers (the paper's, greedy, exact, one-per-edge),
* artificial resources and the RT_1/RT_3 conflict of section 6.3,
* the same machinery on the audio core: one clique, 'ABC'.

Run:  python examples/isa_conflicts.py
"""

from repro import audio_core
from repro.core import (
    ClassTable,
    ConflictGraph,
    InstructionSet,
    edge_per_clique_cover,
    exact_cover,
    greedy_cover,
    impose_instruction_set,
    verify_cover,
)
from repro.lang import parse_source
from repro.report import conflict_report
from repro.rtgen import conflict_same_cycle, generate_rts


def section_62() -> None:
    print("=== section 6.2: construction rules ===")
    classes = ["S", "T", "U", "V", "X", "Y"]
    desired = [frozenset("ST"), frozenset("SUV"), frozenset("XY")]
    print("desired instruction types: {S,T}, {S,U,V}, {X,Y}")
    iset = InstructionSet.from_desired(classes, desired)
    print(f"closure under rules 1-4 ({len(iset)} types):")
    print("  " + iset.pretty())
    print()

    print("=== figure 6: conflict graph, and section 6.3: covers ===")
    graph = ConflictGraph.from_instruction_set(iset)
    paper_cover = [frozenset("SX"), frozenset("SY"), frozenset("TUY"),
                   frozenset("TVX"), frozenset("UX"), frozenset("VY")]
    verify_cover(graph, paper_cover)
    print(conflict_report(graph, greedy_cover(graph)))
    print(f"paper's cover: 6 cliques (valid); "
          f"exact minimum: {len(exact_cover(graph))}; "
          f"one-per-edge: {len(edge_per_clique_cover(graph))}")
    print()


def section_63_on_audio_core() -> None:
    print("=== section 7: the audio core needs one artificial "
          "resource, 'ABC' ===")
    core = audio_core()
    source = """
    app io; input i; output o0, o1;
    loop {
      a := pass_clip(i);
      o0 = a;
      o1 = a;
    }
    """
    program = generate_rts(parse_source(source), core)
    table = ClassTable.from_core(core)
    iset = InstructionSet.from_desired(table.names, core.instruction_types)
    model = impose_instruction_set(program.rts, table, iset)
    print(conflict_report(model.graph, model.cover))
    print()

    io_rts = [rt for rt in model.rts if rt.opu in ("ipb", "opb_1", "opb_2")]
    print("pairwise IO conflicts through iset:ABC "
          "(SX = S vs SX = X, section 6.3):")
    for i, a in enumerate(io_rts):
        for b in io_rts[i + 1:]:
            state = "conflict" if conflict_same_cycle(a, b) else "parallel"
            print(f"  {a.opu}.{a.operation} ({a.rt_class}) vs "
                  f"{b.opu}.{b.operation} ({b.rt_class}): {state}")
    print()
    print("one RT with its artificial resource, in the paper's syntax:")
    print(io_rts[0].pretty())


def main() -> None:
    section_62()
    section_63_on_audio_core()


if __name__ == "__main__":
    main()
