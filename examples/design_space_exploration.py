#!/usr/bin/env python3
"""Phase 1 of the paper's methodology: design-space exploration.

"During phase 1 a representative set of applications within the target
application domain is implemented using existing ASIC synthesis tools
for the design space exploration.  Based on this quantitative feedback
a core architecture including the instruction set is defined."

This example plays core designer: a representative application set
(two filter networks and an 8-tap FIR) is compiled onto intermediate
architectures with varying multiplier/ALU/RAM allocations, and the
schedule lengths guide the allocation choice against a 48-cycle domain
budget.  The explorer is optimizer-aware (each application is
machine-independently optimized once, candidates are sized from the
optimized graphs) and reports every candidate — including infeasible
ones, with the reason — plus the Pareto front of the sweep.

Run:  python examples/design_space_exploration.py
"""

from repro import CompileOptions
from repro.apps import fir_application, stress_application
from repro.arch import (
    Allocation,
    SweepSpec,
    explore,
    explore_refined,
    pareto_front,
)

BUDGET = 48


def main() -> None:
    applications = [
        stress_application(8, seed=3, name="network_a"),
        stress_application(12, seed=7, name="network_b"),
        fir_application([0.05 * (k + 1) for k in range(8)], name="fir8"),
    ]
    print("representative application set:")
    for dfg in applications:
        histogram = dfg.op_histogram()
        print(f"  {dfg.name:<10} ops: {dict(sorted(histogram.items()))}")
    print()

    candidates = [
        Allocation(n_mult=m, n_alu=a, n_ram=r)
        for m in (1, 2)
        for a in (1, 2)
        for r in (1, 2)
    ]
    points = explore(applications, candidates,
                     options=CompileOptions(opt=1))
    front = set(id(p) for p in pareto_front(points))

    print(f"{'mult':>4} {'alu':>4} {'ram':>4} {'OPUs':>5}  "
          + "".join(f"{dfg.name:>11}" for dfg in applications)
          + f"  {'fits ' + str(BUDGET):>9}  pareto")
    best = None
    for point in points:
        a = point.allocation
        if not point.feasible:
            reason = "; ".join(point.failures.values())
            print(f"{a.n_mult:>4} {a.n_alu:>4} {a.n_ram:>4} "
                  f"{point.n_opus:>5}  infeasible: {reason}")
            continue
        lengths = "".join(
            f"{point.schedule_lengths[dfg.name]:>11}" for dfg in applications
        )
        fits = point.worst_length <= BUDGET
        marker = "yes" if fits else "no"
        star = "*" if id(point) in front else ""
        print(f"{a.n_mult:>4} {a.n_alu:>4} {a.n_ram:>4} {point.n_opus:>5}  "
              f"{lengths}  {marker:>9}  {star:>6}")
        if fits and (best is None or point.n_opus < best.n_opus):
            best = point

    print()
    if best is None:
        print(f"no candidate meets the {BUDGET}-cycle budget — enlarge the "
              f"allocation space or rewrite the applications")
    else:
        a = best.allocation
        print(f"chosen core: {a.n_mult} MULT, {a.n_alu} ALU, {a.n_ram} RAM "
              f"({best.n_opus} OPUs) — the smallest allocation meeting the "
              f"budget on every application.")

    # Second pass: size the register files too.  The grid now has a
    # storage axis, so instead of the full cross-product the explorer
    # sweeps coarse-to-fine: a thinned grid first, then only the
    # fine-grid neighborhoods of its Pareto front.
    print()
    spec = SweepSpec(n_mults=(1, 2), n_alus=(1, 2), n_rams=(1,),
                     rf_sizes=(8, 12, 16))
    refined = explore_refined(applications, spec)
    print(f"register-file sizing, coarse to fine: evaluated "
          f"{refined.n_evaluated} of {refined.n_grid} grid points "
          f"({refined.n_coarse} coarse + {refined.n_refined} refined)")
    for point in refined.front:
        a = point.allocation
        print(f"  front: {a.n_mult} MULT, {a.n_alu} ALU, rf={a.rf_size} "
              f"-> worst {point.worst_length} cycles, "
              f"{point.storage_words} storage words")
    print("phase 2 would now freeze the chosen datapath and its "
          "instruction set, and program production applications onto it.")


if __name__ == "__main__":
    main()
