"""Buses and multiplexers of the target datapath (paper, figures 2/3).

Every result-producing OPU drives exactly one bus through its output
buffer.  A bus fans out to one or more register files, each reached
either directly or through an input of a multiplexer in front of the
file.  The RT usage model makes the sharing rules fall out naturally:

* a bus carries a *value* — two RTs may use the same bus in the same
  cycle iff they carry the same value (multicast of one result is free,
  two different results conflict);
* a multiplexer carries a *selection* — two RTs agree on a mux iff they
  select the same input.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArchitectureError
from .storage import RegisterFile


class Bus:
    """An interconnect bus driven by one OPU's output buffer."""

    def __init__(self, name: str):
        self.name = name
        self.driver = None  # Opu, set by Datapath wiring
        self.sinks: list["BusSink"] = []

    @property
    def resource(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        driver = self.driver.name if self.driver is not None else "?"
        return f"Bus({self.name}, driver={driver}, sinks={len(self.sinks)})"


class Mux:
    """A multiplexer in front of a register file's write port."""

    def __init__(self, name: str, register_file: RegisterFile):
        self.name = name
        self.register_file = register_file
        self.inputs: list[Bus] = []

    @property
    def resource(self) -> str:
        return self.name

    def input_index(self, bus: Bus) -> int:
        try:
            return self.inputs.index(bus)
        except ValueError:
            raise ArchitectureError(
                f"mux {self.name!r} has no input driven by bus {bus.name!r}"
            ) from None

    def select_usage(self, bus: Bus) -> str:
        """Usage string of selecting ``bus``, e.g. ``pass[1]``.

        The paper prints the selection as ``pass[0,1]`` (selected input,
        number of inputs); we keep just the selected index — the input
        count is a property of the mux, not of the transfer.
        """
        return f"pass[{self.input_index(bus)}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mux({self.name} -> {self.register_file.name}, inputs={len(self.inputs)})"


@dataclass(frozen=True)
class BusSink:
    """One fan-out of a bus: a destination register file.

    ``mux`` is ``None`` when the bus writes the file directly (single
    writer); otherwise the transfer also occupies the multiplexer with
    the corresponding selection usage.
    """

    register_file: RegisterFile
    mux: Mux | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = f" via {self.mux.name}" if self.mux is not None else ""
        return f"BusSink({self.register_file.name}{via})"
