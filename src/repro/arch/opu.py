"""Operation units (OPUs) of the target datapath (paper, section 5).

An OPU is any processing unit on the datapath: ALU, MULT, RAM, ROM,
address computation units (ACUs), application-specific units (ASUs) and
the IO port blocks.  Each OPU supports a small set of *operations*; the
(OPU, operation-usage) pair later determines the RT class of every
register transfer executed on it (section 6.1).

Operands are fetched from register files connected to the OPU's input
ports; the result leaves through an output buffer onto a bus
(figure 2/3).  Ports may alternatively accept an *immediate* operand
taken from the instruction word (used by the ACU offset and the program
constant unit PRG_C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ArchitectureError


class OpuKind(enum.Enum):
    """Classification of operation units.

    The kind drives default behaviour in the simulator (RAM has memory
    state, INPUT/OUTPUT touch the port streams, CONST reads the
    instruction word) and style checking, but any kind may carry any
    operation set.
    """

    ALU = "alu"
    MULT = "mult"
    RAM = "ram"
    ROM = "rom"
    ACU = "acu"
    ASU = "asu"
    INPUT = "input"
    OUTPUT = "output"
    CONST = "const"

    @property
    def has_memory(self) -> bool:
        return self in (OpuKind.RAM, OpuKind.ROM)

    @property
    def is_io(self) -> bool:
        return self in (OpuKind.INPUT, OpuKind.OUTPUT)


@dataclass(frozen=True)
class Operation:
    """A single operation an OPU can execute.

    Attributes
    ----------
    name:
        Usage string of the operation, e.g. ``"add"``.  This is the
        *usage* the OPU resource obtains in every RT executing it and
        (together with the OPU) decides the RT class.
    arity:
        Number of operands read from input ports (immediates included).
    latency:
        Cycles from operand fetch to the result being written into the
        destination register.  ``1`` is the single-cycle default of the
        paper's audio core; larger values model pipelined OPUs.
    initiation_interval:
        Cycles before the OPU can accept the next operation.  ``1``
        means fully pipelined; equal to ``latency`` means unpipelined.
    commutative:
        Whether the two operands may be swapped during routing.
    flags:
        Names of controller flags the operation produces (e.g.
        ``("neg",)`` for a compare); empty for pure dataflow ops.
    writes_memory / reads_memory:
        Memory side effects (RAM write / RAM and ROM read).
    """

    name: str
    arity: int = 2
    latency: int = 1
    initiation_interval: int = 1
    commutative: bool = False
    flags: tuple[str, ...] = ()
    writes_memory: bool = False
    reads_memory: bool = False

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ArchitectureError(f"operation {self.name!r}: negative arity")
        if self.latency < 1:
            raise ArchitectureError(f"operation {self.name!r}: latency must be >= 1")
        if not 1 <= self.initiation_interval <= self.latency:
            raise ArchitectureError(
                f"operation {self.name!r}: initiation interval must be in "
                f"[1, latency={self.latency}]"
            )


@dataclass
class InputPort:
    """One operand input of an OPU.

    Each port is fed by exactly one register file (set when the
    datapath is wired) or accepts an immediate field of the instruction
    word.  The paper's architecture style mandates that all non-
    immediate operands originate from register files.
    """

    opu: "Opu"
    index: int
    register_file: object | None = None  # RegisterFile, set by Datapath wiring
    accepts_immediate: bool = False

    @property
    def name(self) -> str:
        return f"{self.opu.name}.p{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fed = self.register_file.name if self.register_file is not None else (
            "imm" if self.accepts_immediate else "unconnected"
        )
        return f"InputPort({self.name} <- {fed})"


class Opu:
    """An operation unit instance on a datapath.

    Create OPUs through :meth:`repro.arch.datapath.Datapath.add_opu`;
    constructing one directly leaves it un-wired.
    """

    def __init__(self, name: str, kind: OpuKind, operations: list[Operation]):
        if not operations:
            raise ArchitectureError(f"OPU {name!r} needs at least one operation")
        names = [op.name for op in operations]
        if len(set(names)) != len(names):
            raise ArchitectureError(f"OPU {name!r}: duplicate operation names {names}")
        self.name = name
        self.kind = kind
        self.operations: dict[str, Operation] = {op.name: op for op in operations}
        arity = max(op.arity for op in operations)
        self.ports: list[InputPort] = [InputPort(self, i) for i in range(arity)]
        self.bus = None  # repro.arch.interconnect.Bus, set by Datapath wiring
        self.memory_size: int | None = None  # for RAM/ROM kinds
        self.rom_contents: list[int] | None = None  # for ROM kinds

    @property
    def buffer_name(self) -> str:
        """Resource name of the output buffer between OPU and bus."""
        return f"buf_{self.name}"

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise ArchitectureError(
                f"OPU {self.name!r} has no operation {name!r}; "
                f"available: {sorted(self.operations)}"
            ) from None

    def supports(self, name: str) -> bool:
        return name in self.operations

    @property
    def produces_result(self) -> bool:
        """Whether the OPU drives a bus (OUTPUT port blocks do not)."""
        return self.kind is not OpuKind.OUTPUT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Opu({self.name}, {self.kind.value}, ops={sorted(self.operations)})"


# Catalogue of standard operations --------------------------------------------
#
# These are the operations used by the library cores; applications may
# define additional ASU operations freely.

def standard_alu_operations(clip: bool = True) -> list[Operation]:
    """ALU operation set of the audio core (classes H, I, J, K)."""
    ops = [
        Operation("add", arity=2, commutative=True),
        Operation("sub", arity=2),
        Operation("pass", arity=1),
    ]
    if clip:
        ops.append(Operation("add_clip", arity=2, commutative=True))
        ops.append(Operation("pass_clip", arity=1))
    return ops


def standard_mult_operations(latency: int = 1) -> list[Operation]:
    """Multiplier operation set (class G)."""
    return [
        Operation(
            "mult",
            arity=2,
            commutative=True,
            latency=latency,
            initiation_interval=1,
        )
    ]


def standard_ram_operations() -> list[Operation]:
    """RAM read/write (classes E, F): port 0 = address, port 1 = data."""
    return [
        Operation("read", arity=1, reads_memory=True),
        Operation("write", arity=2, writes_memory=True),
    ]


def standard_rom_operations() -> list[Operation]:
    """ROM constant fetch (class L): port 0 = address."""
    return [Operation("const", arity=1, reads_memory=True)]


def standard_acu_operations() -> list[Operation]:
    """Address computation (class D and friends, figure 5)."""
    return [
        Operation("addmod", arity=2),
        Operation("add", arity=2),
        Operation("inca", arity=1),
    ]


def standard_shift_operations(max_shift: int = 4) -> list[Operation]:
    """Step shifter: one unary arithmetic-shift-right operation per
    distance (``asr1`` .. ``asr<max_shift>``), the distance encoded in
    the opcode as small in-house shifters do.  The optimizer's strength
    reduction targets these (:mod:`repro.opt`)."""
    if max_shift < 1:
        raise ArchitectureError("shifter needs at least distance 1")
    return [Operation(f"asr{k}", arity=1) for k in range(1, max_shift + 1)]


def standard_const_operations() -> list[Operation]:
    """Program constant generator PRG_C (class M)."""
    return [Operation("const", arity=1)]


def standard_input_operations() -> list[Operation]:
    """Input port block, e.g. IPB (class A)."""
    return [Operation("read", arity=0)]


def standard_output_operations() -> list[Operation]:
    """Output port block, e.g. OPB_1 / OPB_2 (classes B, C)."""
    return [Operation("write", arity=1)]
