"""The parameterisable controller model (paper, figure 4).

The controller is pipelined via a program counter and an instruction
register.  A stack saves return addresses for the time-loop and for
(possibly nested) for-loops.  Parameters of the model: program and
instruction bus width, stack depth and number of datapath flags.

The audio core of section 7 uses "a stripped version of the controller
... as there are no conditional instructions at all"; the
``supports_conditionals`` switch models exactly that stripping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ArchitectureError


class CtrlOp(enum.Enum):
    """Controller operations encodable in the instruction word.

    ``CONT``
        Fall through to the next instruction (default).
    ``IDLE``
        Wait for the external start signal, then continue.  Used to
        synchronise the time-loop to the sample rate (figure 4's
        ``Start_Signal``).
    ``JUMP``
        Unconditional branch to an absolute address.
    ``CJMP``
        Conditional branch on a datapath flag; requires
        ``supports_conditionals``.
    ``LOOP``
        Push (return address, count) on the loop stack and enter a
        zero-overhead hardware loop body.
    ``ENDL``
        Bottom of a hardware loop: decrement the count and branch back
        while it is non-zero, else pop.
    ``HALT``
        Stop the core (used by finite test programs).
    """

    CONT = "cont"
    IDLE = "idle"
    JUMP = "jump"
    CJMP = "cjmp"
    LOOP = "loop"
    ENDL = "endl"
    HALT = "halt"


@dataclass
class ControllerSpec:
    """Static parameters of the controller instance of a core."""

    stack_depth: int = 4
    n_flags: int = 0
    supports_conditionals: bool = False
    supports_loops: bool = True
    program_size: int = 256

    def __post_init__(self) -> None:
        if self.stack_depth < 0:
            raise ArchitectureError("controller: stack depth must be >= 0")
        if self.n_flags < 0:
            raise ArchitectureError("controller: flag count must be >= 0")
        if self.supports_conditionals and self.n_flags == 0:
            raise ArchitectureError(
                "controller: conditional branches need at least one flag"
            )
        if self.program_size < 1:
            raise ArchitectureError("controller: program size must be >= 1")

    @property
    def address_bits(self) -> int:
        return max(1, (self.program_size - 1).bit_length())

    @property
    def flag_bits(self) -> int:
        return max(1, (self.n_flags - 1).bit_length()) if self.n_flags else 0

    def allowed_ops(self) -> set[CtrlOp]:
        ops = {CtrlOp.CONT, CtrlOp.IDLE, CtrlOp.JUMP, CtrlOp.HALT}
        if self.supports_conditionals:
            ops.add(CtrlOp.CJMP)
        if self.supports_loops and self.stack_depth > 0:
            ops.add(CtrlOp.LOOP)
            ops.add(CtrlOp.ENDL)
        return ops

    def stripped(self) -> "ControllerSpec":
        """The stripped controller of section 7: no conditionals."""
        return ControllerSpec(
            stack_depth=self.stack_depth,
            n_flags=0,
            supports_conditionals=False,
            supports_loops=self.supports_loops,
            program_size=self.program_size,
        )
