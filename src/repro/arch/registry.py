"""The core registry: named targets as a first-class, extensible set.

The paper's pitch is *retargetability* — one compiler, many in-house
cores.  This module is the single place a core name resolves to a
:class:`~repro.arch.library.CoreSpec`: the built-in library cores are
pre-registered, user-defined cores join via :func:`register_core`, and
every surface that accepts a target (``Toolchain``, the sessions, the
CLI's ``--core``, docs examples) funnels through :func:`resolve_core`,
which also accepts a ready ``CoreSpec`` or a path to a JSON core
description (:func:`repro.arch.serialize.dump_core` output).

Factories, not instances, are registered: cores are mutable-ish object
graphs, and handing every caller a fresh spec keeps one user's
modifications from leaking into the next resolution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from ..errors import ReproError
from .library import CoreSpec, audio_core, fir_core, tiny_core
from .serialize import load_core

#: name -> zero-argument factory producing a fresh CoreSpec.
_REGISTRY: dict[str, Callable[[], CoreSpec]] = {}


def register_core(name: str, factory: Callable[[], CoreSpec],
                  replace: bool = False) -> None:
    """Register a named core factory.

    ``factory`` is a zero-argument callable returning a
    :class:`CoreSpec` — called on every :func:`get_core`, so each
    resolution is a fresh spec.  Re-registering an existing name is an
    error unless ``replace=True`` (shadowing a built-in silently is how
    two libraries end up disagreeing about what ``"audio"`` means).
    """
    if not name:
        raise ReproError("core name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ReproError(
            f"core {name!r} is already registered; pass replace=True "
            f"to override it")
    _REGISTRY[name] = factory


def unregister_core(name: str) -> None:
    """Remove a registered core (missing names are an error)."""
    if name not in _REGISTRY:
        raise ReproError(f"core {name!r} is not registered")
    del _REGISTRY[name]


def list_cores() -> list[str]:
    """The registered core names, sorted."""
    return sorted(_REGISTRY)


def get_core(name: str) -> CoreSpec:
    """Instantiate the registered core ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ReproError(
            f"unknown core {name!r}: not a registered core "
            f"({', '.join(list_cores())})")
    core = factory()
    if not isinstance(core, CoreSpec):
        raise ReproError(
            f"core factory for {name!r} returned "
            f"{type(core).__name__}, not a CoreSpec")
    return core


def resolve_core(core: CoreSpec | str) -> CoreSpec:
    """Resolve anything the public surface accepts as a target.

    A :class:`CoreSpec` passes through; a string is a registered core
    name or a path to a JSON core description.  This is the one
    resolution rule — the library and the CLI cannot drift.
    """
    if isinstance(core, CoreSpec):
        return core
    if not isinstance(core, str):
        raise ReproError(
            f"expected a CoreSpec or core name, got {type(core).__name__}")
    if core in _REGISTRY:
        return get_core(core)
    path = Path(core)
    if path.exists():
        return load_core(path.read_text())
    raise ReproError(
        f"unknown core {core!r}: not a registered core "
        f"({', '.join(list_cores())}) and no such file")


def _adaptive() -> CoreSpec:
    # Imported lazily: repro.apps builds on repro.arch, so registering
    # its core at this module's import time would cycle.
    from ..apps import adaptive_core

    return adaptive_core()


register_core("audio", audio_core)
register_core("fir", fir_core)
register_core("tiny", tiny_core)
register_core("adaptive", _adaptive)
