"""The datapath container and builder (paper, figure 3).

A :class:`Datapath` holds OPUs, register files, buses and multiplexers
and offers the connectivity queries the RT generator needs:

* which register file feeds an OPU input port,
* which routes (bus → optional mux → register file) a result can take,
* which OPUs support a given operation.

Wiring conventions
------------------
* Each result-producing OPU drives exactly one bus (created by
  :meth:`attach_bus`, or implicitly on first route).
* A register file written by exactly one bus is written directly; as
  soon as a second bus is routed to the same file, a multiplexer is
  materialised in front of its write port (matching figure 3, where the
  mux is optional).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArchitectureError, ConnectivityError
from .interconnect import Bus, BusSink, Mux
from .opu import Operation, Opu, OpuKind
from .storage import RegisterFile


@dataclass(frozen=True)
class Route:
    """One way a result of ``opu`` can reach a register file."""

    opu: Opu
    bus: Bus
    sink: BusSink

    @property
    def register_file(self) -> RegisterFile:
        return self.sink.register_file

    @property
    def mux(self) -> Mux | None:
        return self.sink.mux


class Datapath:
    """A concrete instantiation of the generic target datapath."""

    def __init__(self, name: str):
        self.name = name
        self.opus: dict[str, Opu] = {}
        self.register_files: dict[str, RegisterFile] = {}
        self.buses: dict[str, Bus] = {}
        self.muxes: dict[str, Mux] = {}

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------

    def add_opu(
        self,
        name: str,
        kind: OpuKind,
        operations: list[Operation],
        memory_size: int | None = None,
    ) -> Opu:
        """Add an operation unit.  ``memory_size`` is for RAM/ROM kinds."""
        if name in self.opus:
            raise ArchitectureError(f"duplicate OPU name {name!r}")
        opu = Opu(name, kind, operations)
        if kind.has_memory:
            if memory_size is None:
                raise ArchitectureError(f"{kind.value} OPU {name!r} needs memory_size")
            opu.memory_size = memory_size
        elif memory_size is not None:
            raise ArchitectureError(f"OPU {name!r} of kind {kind.value} has no memory")
        self.opus[name] = opu
        return opu

    def add_register_file(
        self, name: str, size: int, dedicated_read_ports: bool = True
    ) -> RegisterFile:
        if name in self.register_files:
            raise ArchitectureError(f"duplicate register file name {name!r}")
        rf = RegisterFile(name, size, dedicated_read_ports)
        self.register_files[name] = rf
        return rf

    def connect_port(self, opu: Opu | str, port_index: int, rf: RegisterFile | str) -> None:
        """Feed OPU input port ``port_index`` from register file ``rf``."""
        opu = self._opu(opu)
        rf = self._rf(rf)
        port = self._port(opu, port_index)
        if port.register_file is not None:
            raise ArchitectureError(
                f"port {port.name} is already fed by {port.register_file.name!r}"
            )
        if port.accepts_immediate:
            raise ArchitectureError(f"port {port.name} is an immediate port")
        port.register_file = rf
        rf.readers.append(port)

    def make_immediate_port(self, opu: Opu | str, port_index: int) -> None:
        """Mark an OPU input port as fed by an instruction-word field."""
        opu = self._opu(opu)
        port = self._port(opu, port_index)
        if port.register_file is not None:
            raise ArchitectureError(f"port {port.name} is already fed by a register file")
        port.accepts_immediate = True

    def attach_bus(self, opu: Opu | str, bus_name: str | None = None) -> Bus:
        """Create the output bus driven by ``opu``."""
        opu = self._opu(opu)
        if not opu.produces_result:
            raise ArchitectureError(f"OPU {opu.name!r} (output port) drives no bus")
        if opu.bus is not None:
            raise ArchitectureError(f"OPU {opu.name!r} already drives bus {opu.bus.name!r}")
        name = bus_name or f"bus_{opu.name}"
        if name in self.buses:
            raise ArchitectureError(f"duplicate bus name {name!r}")
        bus = Bus(name)
        bus.driver = opu
        opu.bus = bus
        self.buses[name] = bus
        return bus

    def route_bus(self, bus: Bus | str, rf: RegisterFile | str) -> BusSink:
        """Fan a bus out to a register file, inserting a mux if needed.

        The first bus routed to a file connects directly; routing a
        second bus re-wires both through a multiplexer in front of the
        file's write port (figure 3: the mux is optional).
        """
        bus = self._bus(bus)
        rf = self._rf(rf)
        for sink in bus.sinks:
            if sink.register_file is rf:
                raise ArchitectureError(
                    f"bus {bus.name!r} is already routed to {rf.name!r}"
                )
        existing = [w for w in rf.writers if isinstance(w, BusSink)]
        if not existing:
            sink = BusSink(rf, mux=None)
        else:
            mux = self._mux_for(rf)
            if len(existing) == 1 and existing[0].mux is None:
                # Re-wire the direct writer through the new mux.
                old = existing[0]
                old_bus = self._driving_bus(old)
                mux.inputs.append(old_bus)
                new_old = BusSink(rf, mux=mux)
                old_bus.sinks[old_bus.sinks.index(old)] = new_old
                rf.writers[rf.writers.index(old)] = new_old
            mux.inputs.append(bus)
            sink = BusSink(rf, mux=mux)
        bus.sinks.append(sink)
        rf.writers.append(sink)
        return sink

    def _mux_for(self, rf: RegisterFile) -> Mux:
        name = f"mux_{rf.name}"
        if name not in self.muxes:
            self.muxes[name] = Mux(name, rf)
        return self.muxes[name]

    def _driving_bus(self, sink: BusSink) -> Bus:
        for bus in self.buses.values():
            if sink in bus.sinks:
                return bus
        raise ArchitectureError("internal: sink not found on any bus")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def opu(self, name: str) -> Opu:
        return self._opu(name)

    def register_file(self, name: str) -> RegisterFile:
        return self._rf(name)

    def opus_supporting(self, operation: str) -> list[Opu]:
        """All OPUs that can execute ``operation``, in insertion order."""
        return [o for o in self.opus.values() if o.supports(operation)]

    def routes_from(self, opu: Opu | str) -> list[Route]:
        """All (bus, mux, register file) routes a result of ``opu`` can take."""
        opu = self._opu(opu)
        if opu.bus is None:
            return []
        return [Route(opu, opu.bus, sink) for sink in opu.bus.sinks]

    def route_to(self, opu: Opu | str, rf: RegisterFile | str) -> Route:
        """The route from ``opu`` to ``rf``; raises if none exists."""
        opu = self._opu(opu)
        rf = self._rf(rf)
        for route in self.routes_from(opu):
            if route.register_file is rf:
                return route
        raise ConnectivityError(
            f"no route from OPU {opu.name!r} to register file {rf.name!r}"
        )

    def port_register_file(self, opu: Opu | str, port_index: int) -> RegisterFile:
        opu = self._opu(opu)
        port = self._port(opu, port_index)
        if port.register_file is None:
            raise ConnectivityError(
                f"port {port.name} is not fed by a register file"
                + (" (immediate port)" if port.accepts_immediate else "")
            )
        return port.register_file

    def reachable_register_files(self, opu: Opu | str) -> list[RegisterFile]:
        return [r.register_file for r in self.routes_from(opu)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _opu(self, opu: Opu | str) -> Opu:
        if isinstance(opu, Opu):
            return opu
        try:
            return self.opus[opu]
        except KeyError:
            raise ArchitectureError(f"unknown OPU {opu!r}") from None

    def _rf(self, rf: RegisterFile | str) -> RegisterFile:
        if isinstance(rf, RegisterFile):
            return rf
        try:
            return self.register_files[rf]
        except KeyError:
            raise ArchitectureError(f"unknown register file {rf!r}") from None

    def _bus(self, bus: Bus | str) -> Bus:
        if isinstance(bus, Bus):
            return bus
        try:
            return self.buses[bus]
        except KeyError:
            raise ArchitectureError(f"unknown bus {bus!r}") from None

    @staticmethod
    def _port(opu: Opu, port_index: int):
        if not 0 <= port_index < len(opu.ports):
            raise ArchitectureError(
                f"OPU {opu.name!r} has no port {port_index} "
                f"(ports: 0..{len(opu.ports) - 1})"
            )
        return opu.ports[port_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Datapath({self.name}: {len(self.opus)} OPUs, "
            f"{len(self.register_files)} RFs, {len(self.buses)} buses, "
            f"{len(self.muxes)} muxes)"
        )
