"""Register-file and bus merging (paper, sections 4 and 5).

"The architecture modifications mentioned in figure 1b specify the
merging of resources such as busses and register files.  Then these
resources can be shared at the cost of reduction of parallelism."

A :class:`MergeSpec` names groups of register files (and groups of
buses) that the final core implements as one physical resource.  The
spec is *applied to RTs*, not to the datapath: per the paper, merging
"is realized by modification of the RTs" (step 2 of figure 1b), i.e. by
renaming resources in the usage maps so that the scheduler sees the
shared resource.  :func:`repro.core.merge.apply_merges` performs that
rewriting; this module defines and validates the spec and computes the
resource-name mapping.

Semantics of a merged register file:

* one write port — writes that used to go to different files now
  conflict;
* one shared read port — reads of *different* registers now conflict
  (reading the same register is still free, same usage);
* capacity = sum of the parts' capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ArchitectureError
from .datapath import Datapath


@dataclass(frozen=True)
class RegisterFileMerge:
    """Merge the register files ``parts`` into one file ``name``."""

    name: str
    parts: tuple[str, ...]


@dataclass(frozen=True)
class BusMerge:
    """Merge the buses ``parts`` into one bus ``name``."""

    name: str
    parts: tuple[str, ...]


@dataclass
class MergeSpec:
    """A set of register-file and bus merges for one core."""

    register_file_merges: list[RegisterFileMerge] = field(default_factory=list)
    bus_merges: list[BusMerge] = field(default_factory=list)

    def merge_register_files(self, name: str, parts: list[str]) -> "MergeSpec":
        self.register_file_merges.append(RegisterFileMerge(name, tuple(parts)))
        return self

    def merge_buses(self, name: str, parts: list[str]) -> "MergeSpec":
        self.bus_merges.append(BusMerge(name, tuple(parts)))
        return self

    @property
    def is_empty(self) -> bool:
        return not self.register_file_merges and not self.bus_merges

    # ------------------------------------------------------------------

    def validate(self, dp: Datapath) -> None:
        """Check the spec against a datapath."""
        seen_rfs: set[str] = set()
        for merge in self.register_file_merges:
            if len(merge.parts) < 2:
                raise ArchitectureError(
                    f"merge {merge.name!r}: needs at least two register files"
                )
            for part in merge.parts:
                if part not in dp.register_files:
                    raise ArchitectureError(
                        f"merge {merge.name!r}: unknown register file {part!r}"
                    )
                if part in seen_rfs:
                    raise ArchitectureError(
                        f"register file {part!r} appears in two merges"
                    )
                seen_rfs.add(part)
        seen_buses: set[str] = set()
        for merge in self.bus_merges:
            if len(merge.parts) < 2:
                raise ArchitectureError(
                    f"merge {merge.name!r}: needs at least two buses"
                )
            for part in merge.parts:
                if part not in dp.buses:
                    raise ArchitectureError(
                        f"merge {merge.name!r}: unknown bus {part!r}"
                    )
                if part in seen_buses:
                    raise ArchitectureError(f"bus {part!r} appears in two merges")
                seen_buses.add(part)

    def register_file_map(self) -> dict[str, str]:
        """Old register-file name → merged name (identity entries omitted)."""
        mapping: dict[str, str] = {}
        for merge in self.register_file_merges:
            for part in merge.parts:
                mapping[part] = merge.name
        return mapping

    def bus_map(self) -> dict[str, str]:
        """Old bus name → merged name (identity entries omitted)."""
        mapping: dict[str, str] = {}
        for merge in self.bus_merges:
            for part in merge.parts:
                mapping[part] = merge.name
        return mapping

    def merged_capacity(self, dp: Datapath, merged_name: str) -> int:
        """Register capacity of a merged file (sum of the parts)."""
        for merge in self.register_file_merges:
            if merge.name == merged_name:
                return sum(dp.register_files[p].size for p in merge.parts)
        raise ArchitectureError(f"unknown merged register file {merged_name!r}")
