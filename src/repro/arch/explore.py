"""Phase-1 support: intermediate architectures and design-space
exploration (paper, sections 1 and 4).

"During phase 1 a representative set of applications within the target
application domain is implemented using existing ASIC synthesis tools
for the design space exploration.  Based on this quantitative feedback
a core architecture including the instruction set is defined."

and, on the compiler side (section 4): "The generated RTs can be
executed on an intermediate datapath which is equivalent to the
Piramid/Cathedral2 architecture."

:func:`intermediate_architecture` synthesises that starting point for a
set of applications: one or more OPUs per operation kind, one register
file per OPU input port, one bus per OPU and full fan-out (every bus
reaches every compatible operand file).  :func:`explore` sweeps
candidate allocations and reports the schedule length of each — the
quantitative feedback a core designer iterates on before freezing the
instruction set.

The design space is *multi-dimensional*: an :class:`Allocation` fixes
not just the OPU unit counts but the register-file capacity, the
data/coefficient memory sizes and a register-file merge variant, and a
:class:`SweepSpec` enumerates a candidate grid over all of those axes.
Because the full cross-product blows up combinatorially,
:func:`explore_refined` runs a **coarse-to-fine** sweep: a thinned grid
first, then only the fine-grid neighborhoods of the coarse Pareto
front.

The explorer is *optimizer-aware* and built on the staged pipeline:

* each application is machine-independently optimized **once per opt
  level** (the candidate cores are sized from the optimized graphs,
  not the source as written); only the core-aware specialization
  (``-O2`` strength reduction) re-runs per candidate;
* candidates fan out over a ``concurrent.futures`` worker pool
  (``jobs=``): the optimized application set ships to each worker
  exactly once (pool initializer), and each task carries only its
  allocation;
* infeasible candidates are not dropped: every
  :class:`ExplorationPoint` records per-application failure reasons;
* :func:`pareto_front` extracts the candidates worth a designer's
  attention (no other candidate is at least as good on every cost
  axis and better on one);
* repeated sweeps reuse an :class:`ExploreCache` — a designer
  narrowing the ranges pays only for the new candidates — and the
  coarse and fine phases of a refined sweep share one cache.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from functools import partial
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..options import CompileOptions

from ..errors import ArchitectureError, ReproError
from ..lang.dfg import Dfg, NodeKind
from ..obs import current_telemetry
from ..opt import optimize_machine_independent, specialize_for_core
from .controller import ControllerSpec
from .datapath import Datapath
from .library import ClassDef, CoreSpec
from .merge import MergeSpec
from .opu import Operation, OpuKind

#: Operation sets per functional-unit kind the allocator can instantiate.
_ALU_OPS = ("add", "sub", "add_clip", "pass", "pass_clip")
_KNOWN_ALU = set(_ALU_OPS)

#: Pseudo-application key for failures of core synthesis itself.
ARCHITECTURE_FAILURE = "(architecture)"


# ---------------------------------------------------------------------------
# Merge variants: named datapath sharings a sweep can enumerate.
# ---------------------------------------------------------------------------

def _merge_none(core: CoreSpec) -> MergeSpec | None:
    return None


def _merge_operand_files(core: CoreSpec, kind: OpuKind) -> MergeSpec | None:
    """Share one operand file per OPU of ``kind`` (both input ports
    read it — for a multiplier that is data and coefficient)."""
    dp = core.datapath
    spec = MergeSpec()
    for opu in dp.opus.values():
        if opu.kind is kind:
            parts = [dp.port_register_file(opu, 0).name,
                     dp.port_register_file(opu, 1).name]
            spec.merge_register_files(f"m_{opu.name}", parts)
    return None if spec.is_empty else spec


#: Named merge variants a sweep can put on its ``merge_variants`` axis.
#: Each maps a synthesized intermediate core to a
#: :class:`~repro.arch.merge.MergeSpec` (or ``None`` when the variant
#: has nothing to merge on that core — it then degenerates to "none").
MERGE_VARIANTS = {
    "none": _merge_none,
    "alu-operands": partial(_merge_operand_files, kind=OpuKind.ALU),
    "mult-operands": partial(_merge_operand_files, kind=OpuKind.MULT),
}

#: Operation a variant needs on the application set to merge anything;
#: without it the variant degenerates to "none" (ALUs always exist, so
#: only the multiplier variant is conditional).
_VARIANT_REQUIRES = {"mult-operands": "mult"}


def _check_merge_variant(variant: str) -> None:
    if variant not in MERGE_VARIANTS:
        raise ArchitectureError(
            f"unknown merge variant {variant!r} "
            f"(known: {', '.join(sorted(MERGE_VARIANTS))})"
        )


def canonical_variant(variant: str, operations: set[str]) -> str:
    """The variant an application set actually experiences: ``none``
    when the named variant has nothing to merge (e.g. ``mult-operands``
    on a set without multiplies), so degenerate candidates share the
    plain candidate's cache entry instead of recompiling it."""
    required = _VARIANT_REQUIRES.get(variant)
    if required is not None and required not in operations:
        return "none"
    return variant


def merge_spec_for(variant: str, core: CoreSpec) -> MergeSpec | None:
    """The merge spec a named variant applies to ``core``."""
    _check_merge_variant(variant)
    return MERGE_VARIANTS[variant](core)


@dataclass(frozen=True)
class Allocation:
    """One design-space candidate: unit counts, storage sizes and the
    register-file merge variant of an intermediate architecture."""

    n_mult: int = 1
    n_alu: int = 1
    n_ram: int = 1
    rf_size: int = 16
    ram_size: int = 256
    rom_size: int = 128
    merge_variant: str = "none"

    def __post_init__(self) -> None:
        if min(self.n_mult, self.n_alu, self.n_ram) < 1:
            raise ArchitectureError("allocation needs at least one unit of each kind")
        if min(self.rf_size, self.ram_size, self.rom_size) < 1:
            raise ArchitectureError(
                f"allocation needs rf/ram/rom sizes >= 1, got "
                f"rf_size={self.rf_size}, ram_size={self.ram_size}, "
                f"rom_size={self.rom_size}"
            )
        _check_merge_variant(self.merge_variant)

    def astuple(self) -> tuple:
        return tuple(getattr(self, f.name) for f in fields(self))


#: ``SweepSpec`` axis name -> the :class:`Allocation` field it sweeps.
_SWEEP_AXES = (
    ("n_mults", "n_mult"),
    ("n_alus", "n_alu"),
    ("n_rams", "n_ram"),
    ("rf_sizes", "rf_size"),
    ("ram_sizes", "ram_size"),
    ("rom_sizes", "rom_size"),
)


@dataclass(frozen=True)
class SweepSpec:
    """A candidate grid over every architectural axis.

    Numeric axes are stored sorted and deduplicated; the merge-variant
    axis is categorical and keeps its given order.
    :meth:`allocations` enumerates the full cross-product in
    deterministic order; :meth:`coarse` thins every numeric axis to
    every other value (endpoints always kept) for the first phase of a
    coarse-to-fine sweep; :meth:`neighborhood` expands one grid point
    back to the fine values its coarse cell covers.
    """

    n_mults: tuple[int, ...] = (1,)
    n_alus: tuple[int, ...] = (1,)
    n_rams: tuple[int, ...] = (1,)
    rf_sizes: tuple[int, ...] = (16,)
    ram_sizes: tuple[int, ...] = (256,)
    rom_sizes: tuple[int, ...] = (128,)
    merge_variants: tuple[str, ...] = ("none",)

    def __post_init__(self) -> None:
        for name, _ in _SWEEP_AXES:
            values = tuple(sorted(set(getattr(self, name))))
            if not values:
                raise ArchitectureError(f"sweep axis {name} is empty")
            if values[0] < 1:
                raise ArchitectureError(
                    f"sweep axis {name} has values < 1: {values}"
                )
            object.__setattr__(self, name, values)
        variants = []
        for variant in self.merge_variants:
            _check_merge_variant(variant)
            if variant not in variants:
                variants.append(variant)
        if not variants:
            raise ArchitectureError("sweep axis merge_variants is empty")
        object.__setattr__(self, "merge_variants", tuple(variants))

    @property
    def size(self) -> int:
        """Number of grid points in the full cross-product."""
        total = len(self.merge_variants)
        for name, _ in _SWEEP_AXES:
            total *= len(getattr(self, name))
        return total

    def allocations(self) -> list[Allocation]:
        """Every grid point, in deterministic axis order."""
        axes = [getattr(self, name) for name, _ in _SWEEP_AXES]
        return [
            Allocation(*values, merge_variant=variant)
            for values in itertools.product(*axes)
            for variant in self.merge_variants
        ]

    def coarse(self) -> "SweepSpec":
        """The thinned grid of phase 1: every other value per numeric
        axis, endpoints always kept; merge variants (categorical, and
        few) are enumerated in full."""
        def thin(axis: tuple[int, ...]) -> tuple[int, ...]:
            if len(axis) <= 2:
                return axis
            kept = axis[::2]
            return kept if axis[-1] in kept else kept + (axis[-1],)

        return SweepSpec(
            **{name: thin(getattr(self, name)) for name, _ in _SWEEP_AXES},
            merge_variants=self.merge_variants,
        )

    def neighborhood(self, allocation: Allocation) -> list[Allocation]:
        """The fine-grid cell around one (coarse) grid point: per axis,
        the fine values strictly between the point's coarse neighbors,
        plus the point's own value.  The merge variant is held fixed —
        variants are fully enumerated in the coarse phase already."""
        coarse = self.coarse()
        windows = []
        for spec_name, alloc_name in _SWEEP_AXES:
            fine = getattr(self, spec_name)
            coarse_axis = getattr(coarse, spec_name)
            value = getattr(allocation, alloc_name)
            below = max((c for c in coarse_axis if c < value), default=value)
            above = min((c for c in coarse_axis if c > value), default=value)
            windows.append(tuple(
                w for w in fine if below < w < above or w == value
            ))
        return [
            Allocation(*values, merge_variant=allocation.merge_variant)
            for values in itertools.product(*windows)
        ]


def required_operations(dfgs: list[Dfg]) -> set[str]:
    """All dataflow operations the applications use."""
    operations: set[str] = set()
    for dfg in dfgs:
        for node in dfg.nodes:
            if node.kind is NodeKind.OP:
                operations.add(node.name)
    return operations


def intermediate_architecture(
    dfgs: list[Dfg],
    allocation: Allocation | None = None,
    name: str = "intermediate",
) -> CoreSpec:
    """Synthesize the Cathedral-2-like intermediate core for ``dfgs``.

    The result has distributed per-port register files, one bus per
    OPU, full fan-out, and a *fully parallel* instruction set (one
    maximal type containing every class): no instruction-set
    restrictions, which is exactly what step 1 of the compiler assumes.
    """
    allocation = allocation or Allocation()
    operations = required_operations(dfgs)
    unknown_alu = {
        op for op in operations if op not in _KNOWN_ALU and op != "mult"
    }
    if unknown_alu:
        raise ArchitectureError(
            f"no functional-unit template supports operations "
            f"{sorted(unknown_alu)}; extend the allocator with an ASU"
        )
    needs_mult = "mult" in operations
    needs_state = any(dfg.states for dfg in dfgs)
    needs_params = needs_mult or any(dfg.params for dfg in dfgs)
    n_inputs = max((len(dfg.inputs) for dfg in dfgs), default=0)
    n_outputs = max((len(dfg.outputs) for dfg in dfgs), default=1)

    dp = Datapath(name)
    alus = [
        dp.add_opu(f"alu_{i}" if allocation.n_alu > 1 else "alu", OpuKind.ALU, [
            Operation("add", arity=2, commutative=True),
            Operation("sub", arity=2),
            Operation("add_clip", arity=2, commutative=True),
            Operation("pass", arity=1),
            Operation("pass_clip", arity=1),
        ])
        for i in range(allocation.n_alu)
    ]
    mults = []
    if needs_mult:
        mults = [
            dp.add_opu(f"mult_{i}" if allocation.n_mult > 1 else "mult",
                       OpuKind.MULT,
                       [Operation("mult", arity=2, commutative=True)])
            for i in range(allocation.n_mult)
        ]
    rams = []
    acus = []
    if needs_state:
        rams = [
            dp.add_opu(f"ram_{i}" if allocation.n_ram > 1 else "ram",
                       OpuKind.RAM, [
                           Operation("read", arity=1, reads_memory=True),
                           Operation("write", arity=2, writes_memory=True),
                       ], memory_size=allocation.ram_size)
            for i in range(allocation.n_ram)
        ]
        # One address unit per data memory (X/Y dual-memory style).
        acus = [
            dp.add_opu(f"acu_{i}" if allocation.n_ram > 1 else "acu",
                       OpuKind.ACU, [Operation("addmod", arity=2)])
            for i in range(allocation.n_ram)
        ]
    rom = None
    if needs_params:
        rom = dp.add_opu("rom", OpuKind.ROM,
                         [Operation("const", arity=1, reads_memory=True)],
                         memory_size=allocation.rom_size)
    # The program-constant unit is unconditional: it drives ROM
    # addresses and supplies immediate constants, and the Cathedral-2
    # template always carries one.
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)]) \
        if n_inputs else None
    opbs = [
        dp.add_opu(f"opb_{i}" if n_outputs > 1 else "opb", OpuKind.OUTPUT,
                   [Operation("write", arity=1)])
        for i in range(max(n_outputs, 1))
    ]

    # One register file per register-fed input port.
    def feed(opu, index):
        rf = dp.add_register_file(f"rf_{opu.name}_p{index}", allocation.rf_size)
        dp.connect_port(opu, index, rf)
        return rf

    operand_files = []   # files that receive routed data values
    for alu in alus:
        operand_files.append(feed(alu, 0))
        operand_files.append(feed(alu, 1))
    mult_data_files = []
    mult_coef_files = []
    for mult in mults:
        mult_data_files.append(feed(mult, 0))
        mult_coef_files.append(feed(mult, 1))
    ram_addr_files = []
    ram_data_files = []
    for ram in rams:
        ram_addr_files.append(feed(ram, 0))
        ram_data_files.append(feed(ram, 1))
    for acu in acus:
        feed(acu, 0)
        dp.make_immediate_port(acu, 1)
    rom_addr_file = feed(rom, 0) if rom is not None else None
    dp.make_immediate_port(prg, 0)
    opb_files = [feed(opb, 0) for opb in opbs]

    producers = [*alus, *mults, *rams]
    if ipb is not None:
        producers.append(ipb)
    buses = {opu.name: dp.attach_bus(opu) for opu in producers}
    for acu in acus:
        buses[acu.name] = dp.attach_bus(acu)
    if rom is not None:
        buses[rom.name] = dp.attach_bus(rom)
    buses[prg.name] = dp.attach_bus(prg)

    # Full fan-out: every data producer reaches every operand file.
    data_targets = (operand_files + mult_data_files + ram_data_files
                    + opb_files)
    for opu in producers:
        for rf in data_targets:
            dp.route_bus(buses[opu.name], rf)
    # Dedicated paths: coefficients, addresses, the frame pointer.
    if rom is not None:
        for rf in mult_coef_files:
            dp.route_bus(buses[rom.name], rf)
        dp.route_bus(buses[prg.name], rom_addr_file)
    elif mult_coef_files:
        for rf in mult_coef_files:
            dp.route_bus(buses[prg.name], rf)
    for acu, addr_file in zip(acus, ram_addr_files):
        dp.route_bus(buses[acu.name], addr_file)
        dp.route_bus(buses[acu.name], dp.port_register_file(acu, 0))

    class_defs = [
        ClassDef(opu.name, opu.name, tuple(sorted(opu.operations)))
        for opu in dp.opus.values()
    ]
    # Fully parallel: one maximal instruction type with every class.
    instruction_types = [frozenset(cd.name for cd in class_defs)]
    return CoreSpec(
        name=name,
        datapath=dp,
        controller=ControllerSpec(stack_depth=4, program_size=1024),
        class_defs=class_defs,
        instruction_types=instruction_types,
    )


@dataclass
class ExplorationPoint:
    """One design-space candidate and its quantitative feedback.

    ``schedule_lengths`` holds one entry per application that compiled;
    ``failures`` maps the applications that did not (or the
    :data:`ARCHITECTURE_FAILURE` pseudo-key when core synthesis itself
    failed) to a human-readable reason.  ``n_rfs`` counts the physical
    register files *after* the candidate's merge variant is applied;
    ``storage_words`` totals every word of storage the candidate
    instantiates (registers + data memories + coefficient ROM) — the
    cost axes :func:`pareto_front` can trade against schedule length.
    """

    allocation: Allocation
    schedule_lengths: dict[str, int]
    n_opus: int
    failures: dict[str, str] = field(default_factory=dict)
    opt_level: int = 1
    n_rfs: int = 0
    storage_words: int = 0

    @property
    def feasible(self) -> bool:
        """True when every application compiled on this candidate."""
        return not self.failures and bool(self.schedule_lengths)

    @property
    def worst_length(self) -> int:
        """The binding schedule length across the application set."""
        if not self.schedule_lengths:
            reasons = "; ".join(
                f"{app}: {reason}" for app, reason in self.failures.items()
            ) or "no applications were compiled"
            raise ArchitectureError(
                f"candidate {self.allocation} has no schedule lengths "
                f"({reasons})"
            )
        return max(self.schedule_lengths.values())


#: Classic cost axes: schedule length vs datapath size.  The default,
#: and bit-compatible with 3-axis unit-count sweeps.
PARETO_AXES = ("worst_length", "n_opus")

#: Cost axes of a multi-dimensional sweep: storage sizing and merge
#: variants differentiate candidates the OPU count cannot.
STORAGE_AXES = ("worst_length", "n_opus", "n_rfs", "storage_words")


def pareto_axes(spec: SweepSpec) -> tuple[str, ...]:
    """The cost axes appropriate for a sweep: the classic pair when
    only unit counts vary, the storage-aware set when register-file or
    memory sizes or merge variants are on the grid."""
    storage_varies = any(
        len(getattr(spec, name)) > 1
        for name in ("rf_sizes", "ram_sizes", "rom_sizes")
    ) or len(spec.merge_variants) > 1
    return STORAGE_AXES if storage_varies else PARETO_AXES


def pareto_front(points: list[ExplorationPoint],
                 axes: tuple[str, ...] = PARETO_AXES) -> list[ExplorationPoint]:
    """The non-dominated feasible candidates.

    A point dominates another when it is no worse on every cost axis
    and strictly better on at least one.  ``axes`` names
    :class:`ExplorationPoint` attributes, all minimized; the default
    pair (worst schedule length, OPU count) reproduces the classic
    two-axis front, :data:`STORAGE_AXES` adds register-file count and
    total storage words for multi-dimensional sweeps.
    """
    feasible = [p for p in points if p.feasible]
    costs = [tuple(getattr(p, axis) for axis in axes) for p in feasible]
    front = []
    for p, cost in zip(feasible, costs):
        dominated = any(
            all(q <= c for q, c in zip(other, cost))
            and any(q < c for q, c in zip(other, cost))
            for other in costs
        )
        if not dominated:
            front.append(p)
    return front


#: Serialization version of :class:`ExplorationPoint` in the disk
#: cache; bump when the dataclass shape changes.
#: v2: Allocation.merge_variant, ExplorationPoint.n_rfs/storage_words.
EXPLORATION_POINT_VERSION = 2

_POINT_SCHEMA = {"exploration_point": EXPLORATION_POINT_VERSION}


class ExploreCache:
    """Memo of evaluated candidates, keyed by (applications, allocation,
    budget, opt level).  Share one across sweeps to pay only for new
    candidates when iterating on the allocation ranges.

    ``disk`` layers a persistent
    :class:`~repro.pipeline.diskcache.DiskCache` underneath: a memory
    miss falls through to the store, and evaluated candidates are
    written through — so the morning's warm re-sweep in a *new process*
    reads yesterday's feedback from disk instead of recompiling it.
    """

    def __init__(self, disk=None):
        self._points: dict[str, ExplorationPoint] = {}
        self.disk = disk
        self.hits = 0
        self.misses = 0
        #: subset of ``hits`` served by the on-disk layer
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._points)

    def __bool__(self) -> bool:
        # An *empty* memo is still a memo: without this, __len__ makes
        # a fresh ExploreCache falsy and `cache or ExploreCache()`
        # silently drops a configured (e.g. disk-backed) empty cache —
        # the exact PR-4 --refine bug.  Pinned by regression test.
        return True

    @staticmethod
    def _copy(point: ExplorationPoint) -> ExplorationPoint:
        return ExplorationPoint(
            allocation=point.allocation,
            schedule_lengths=dict(point.schedule_lengths),
            n_opus=point.n_opus,
            failures=dict(point.failures),
            opt_level=point.opt_level,
            n_rfs=point.n_rfs,
            storage_words=point.storage_words,
        )

    def get(self, key: str) -> ExplorationPoint | None:
        point = self._points.get(key)
        if point is not None:
            self.hits += 1
            return self._copy(point)
        if self.disk is not None:
            point = self.disk.get(key, schema=_POINT_SCHEMA)
            if point is not None:
                self._points[key] = self._copy(point)
                self.hits += 1
                self.disk_hits += 1
                return point
        self.misses += 1
        return None

    def put(self, key: str, point: ExplorationPoint) -> None:
        # Store a copy, symmetric with get(): callers may mutate the
        # points a sweep hands back without poisoning later sweeps.
        self._points[key] = self._copy(point)
        if self.disk is not None:
            self.disk.put(key, self._points[key], schema=_POINT_SCHEMA)


def _evaluate_candidate(dfgs: list[Dfg], allocation: Allocation,
                        options: CompileOptions) -> ExplorationPoint:
    """Evaluate one allocation: synthesize the core, apply its merge
    variant, compile every application through register allocation,
    record lengths/failures.

    ``dfgs`` are the machine-independently optimized graphs; ``options``
    is the sweep's base :class:`~repro.options.CompileOptions` — its
    budget, cover algorithm and scheduler restarts/seed all shape the
    feedback (``mode``/``repeat`` do not: evaluation stops before
    assembly).  Only compiler/architecture errors are treated as
    infeasibility — anything else is a bug and propagates.
    """
    from ..toolchain import Toolchain

    opt_level = options.opt
    try:
        core = intermediate_architecture(dfgs, allocation)
        merges = merge_spec_for(allocation.merge_variant, core)
    except ReproError as exc:
        return ExplorationPoint(
            allocation=allocation, schedule_lengths={}, n_opus=0,
            failures={ARCHITECTURE_FAILURE: f"{type(exc).__name__}: {exc}"},
            opt_level=opt_level,
        )
    n_rfs = len(core.datapath.register_files)
    if merges is not None:
        n_rfs -= sum(len(m.parts) - 1 for m in merges.register_file_merges)
    storage_words = sum(
        rf.size for rf in core.datapath.register_files.values()
    ) + sum(
        opu.memory_size or 0 for opu in core.datapath.opus.values()
    )
    lengths: dict[str, int] = {}
    failures: dict[str, str] = {}
    # The graphs are already machine-independently optimized (opt=0
    # here skips only the MI passes; core-aware specialization ran
    # above); everything else — budget, cover, restarts, seed — is the
    # caller's base option set, taking effect per candidate.
    toolchain = Toolchain(
        core,
        options.replace(opt=0, stop_after="regalloc"),
        cache=None,
    )
    for dfg in dfgs:
        try:
            # Core-aware specialization (a no-op below -O2), then the
            # staged pipeline through regalloc: schedule length is the
            # feedback, so encoding is skipped.
            specialized, _ = specialize_for_core(dfg, core, opt_level)
            state = toolchain.run_pipeline(specialized, merges=merges)
            lengths[dfg.name] = state.artifacts["schedule"].length
        except ReproError as exc:
            failures[dfg.name] = f"{type(exc).__name__}: {exc}"
    return ExplorationPoint(
        allocation=allocation, schedule_lengths=lengths,
        n_opus=len(core.datapath.opus), failures=failures,
        opt_level=opt_level, n_rfs=n_rfs, storage_words=storage_words,
    )


#: Per-worker sweep context: the optimized application set and the
#: base options, shipped once via the pool initializer instead of
#: being re-pickled into every candidate task.
_WORKER_CONTEXT: tuple[list[Dfg], CompileOptions] | None = None


def _worker_init(dfgs: list[Dfg], options: CompileOptions) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = (dfgs, options)


def _worker_evaluate(allocation: Allocation) -> ExplorationPoint:
    """Top-level (picklable) per-task entry point: the task carries
    only the allocation; everything else came with the initializer."""
    dfgs, options = _WORKER_CONTEXT
    return _evaluate_candidate(dfgs, allocation, options)


def _sweep_options(options: CompileOptions | None, budget: int | None,
                   opt_level: int) -> CompileOptions:
    """Fold the legacy ``budget=``/``opt_level=`` spelling and
    ``options=`` into one validated :class:`CompileOptions`
    (:meth:`CompileOptions.merge_legacy` — mixing the spellings is
    refused, exactly as in ``CompileSession.run``).

    With no ``options``, construction validates the legacy values at
    the API boundary: an out-of-range budget is a caller error raised
    here with a clear message, not per-candidate infeasibility, and
    never an exception propagating out of a ``jobs=`` pool worker
    mid-sweep.
    """
    from ..options import CompileOptions as Options

    return Options.merge_legacy(options, budget=budget,
                                opt_level=opt_level)


def explore(
    dfgs: list[Dfg],
    allocations: list[Allocation],
    budget: int | None = None,
    opt_level: int = 1,
    jobs: int | None = None,
    cache: ExploreCache | None = None,
    cache_dir: str | None = None,
    preoptimized: bool = False,
    options: "CompileOptions | None" = None,
    progress=None,
) -> list[ExplorationPoint]:
    """Compile every application on every candidate architecture.

    Returns one :class:`ExplorationPoint` per allocation, in input
    order, with the schedule length of each application — the feedback
    loop of phase 1.  Candidates that cannot run an application
    (budget, routing or register pressure) are *kept*, with the reason
    on :attr:`ExplorationPoint.failures`; filter on
    :attr:`ExplorationPoint.feasible` or use :func:`pareto_front`.

    Each application is machine-independently optimized exactly once
    (per opt level) before the sweep, and the candidate cores are sized
    from the optimized graphs.  ``jobs`` > 1 fans candidates out over a
    process pool (the optimized graphs ship once per worker, each task
    carries only its allocation); ``cache`` memoizes evaluated
    candidates across sweeps.  ``cache_dir`` (when no ``cache`` is
    handed in) builds a disk-backed :class:`ExploreCache` on that
    directory, so repeated sweeps hit disk across processes.
    ``preoptimized=True`` declares ``dfgs`` already machine-independently
    optimized at ``opt_level`` and skips the pass — the contract
    :func:`explore_refined` uses so its two phases optimize each
    application exactly once between them.

    ``options`` hands the sweep a base
    :class:`~repro.options.CompileOptions` instead of loose keywords:
    its ``budget`` and ``opt`` override the ``budget``/``opt_level``
    parameters (the spelling :meth:`repro.toolchain.Toolchain.explore`
    uses), and its cover algorithm and scheduler ``restarts``/``seed``
    take effect per candidate (``mode``/``repeat`` do not — evaluation
    stops before assembly).  These knobs key the candidate memo, so
    sweeps differing in any of them never share cache entries.

    ``progress`` is an optional callable invoked once per candidate as
    its result resolves (memo hit during the scan, evaluation as it
    completes) with a dict: ``allocation`` (the candidate's field
    tuple), ``feasible``, ``cached``, ``done``, ``total``.  The same
    payload is recorded as an ``explore.candidate`` telemetry event,
    with ``explore.candidates``/``explore.cache_hits`` counters
    tracking evaluations vs memo hits.
    """
    from ..pipeline import dfg_fingerprint, fingerprint
    from ..pipeline.backend import open_backend

    options = _sweep_options(options, budget, opt_level)
    budget, opt_level = options.budget, options.opt
    if cache is None and cache_dir is not None:
        cache = ExploreCache(disk=open_backend(cache_dir))

    optimized = list(dfgs) if preoptimized else [
        optimize_machine_independent(dfg, level=opt_level)[0] for dfg in dfgs
    ]
    app_key = [dfg_fingerprint(dfg) for dfg in optimized]

    operations = required_operations(optimized)
    # The non-default knobs that shape the feedback (cover, restarts,
    # seed) must key the memo too, or two sweeps differing only there
    # would share entries wrongly; the digest is loop-invariant.
    options_fp = options.fingerprint("cover", "restarts", "seed")
    obs = current_telemetry()
    total = len(allocations)
    done = 0

    def report(allocation: Allocation, point: ExplorationPoint,
               cached: bool) -> None:
        nonlocal done
        done += 1
        if progress is None and not obs.enabled:
            return
        record = {"allocation": allocation.astuple(),
                  "feasible": point.feasible, "cached": cached,
                  "done": done, "total": total}
        obs.event("explore.candidate", **record)
        if progress is not None:
            progress(record)

    results: dict[int, ExplorationPoint] = {}
    pending: list[tuple[int, Allocation, str]] = []
    pending_keys: dict[str, int] = {}
    aliases: list[tuple[int, str]] = []
    for index, allocation in enumerate(allocations):
        # A variant with nothing to merge on this application set *is*
        # the plain candidate: canonicalize so it shares that cache
        # entry (and row) instead of recompiling identical feedback.
        variant = canonical_variant(allocation.merge_variant, operations)
        if variant != allocation.merge_variant:
            allocation = replace(allocation, merge_variant=variant)
        key = fingerprint("explore", app_key, allocation.astuple(),
                          budget, opt_level, options_fp)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[index] = cached
            obs.count("explore.cache_hits")
            report(allocation, cached, cached=True)
        elif key in pending_keys:
            aliases.append((index, key))
        else:
            pending_keys[key] = index
            pending.append((index, allocation, key))

    evaluated: list[ExplorationPoint] = []
    if jobs is not None and jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(
                max_workers=jobs, initializer=_worker_init,
                initargs=(optimized, options)) as pool:
            # Iterate the (ordered) map so progress streams as results
            # land instead of arriving in one burst at pool shutdown.
            for (_, alloc, _), point in zip(pending, pool.map(
                    _worker_evaluate, [a for _, a, _ in pending])):
                evaluated.append(point)
                obs.count("explore.candidates")
                report(alloc, point, cached=False)
    else:
        for _, alloc, _ in pending:
            point = _evaluate_candidate(optimized, alloc, options)
            evaluated.append(point)
            obs.count("explore.candidates")
            report(alloc, point, cached=False)
    by_key: dict[str, ExplorationPoint] = {}
    for (index, _, key), point in zip(pending, evaluated):
        results[index] = point
        by_key[key] = point
        if cache is not None:
            cache.put(key, point)
    for index, key in aliases:
        results[index] = ExploreCache._copy(by_key[key])
        report(allocations[index], results[index], cached=True)
    return [results[index] for index in range(len(allocations))]


@dataclass
class RefinedSweep:
    """The result of a coarse-to-fine sweep: every evaluated point (in
    coarse-then-fine order), the Pareto front over all of them, and the
    pruning bookkeeping a designer (and the bench) reads."""

    spec: SweepSpec
    points: list[ExplorationPoint]
    front: list[ExplorationPoint]
    axes: tuple[str, ...]
    n_grid: int
    n_coarse: int
    n_refined: int

    @property
    def n_evaluated(self) -> int:
        """Unique candidates actually compiled (coarse + refinement)."""
        return self.n_coarse + self.n_refined


def explore_refined(
    dfgs: list[Dfg],
    spec: SweepSpec,
    budget: int | None = None,
    opt_level: int = 1,
    jobs: int | None = None,
    cache: ExploreCache | None = None,
    cache_dir: str | None = None,
    axes: tuple[str, ...] | None = None,
    options: "CompileOptions | None" = None,
    progress=None,
) -> RefinedSweep:
    """Two-phase coarse-to-fine sweep over a multi-dimensional grid.

    Phase 1 evaluates the thinned grid (:meth:`SweepSpec.coarse` —
    every other value per numeric axis) and takes its Pareto front.
    Phase 2 evaluates only the fine-grid neighborhoods of the front
    points (:meth:`SweepSpec.neighborhood`), pruning the combinatorial
    blowup of the full cross-product: schedule length is monotone in
    every resource axis, so fine-grid optima cluster around the coarse
    front.  Both phases share one :class:`ExploreCache`, so nothing is
    evaluated twice and a later full sweep pays only for the points the
    refinement skipped.  ``options`` supplies the base
    :class:`~repro.options.CompileOptions` (budget, opt level, cover,
    scheduler restarts/seed), exactly as in :func:`explore`.
    ``progress`` is forwarded to both phases' :func:`explore` calls
    (each phase reports its own ``done``/``total``).
    """
    from ..pipeline.backend import open_backend

    options = _sweep_options(options, budget, opt_level)
    budget, opt_level = options.budget, options.opt
    if cache is None:
        cache = ExploreCache(disk=open_backend(cache_dir)) \
            if cache_dir is not None else ExploreCache()
    if axes is None:
        axes = pareto_axes(spec)

    # Optimize once, up front: both phases sweep the same graphs (and
    # the candidate-cache keys stay identical to a plain explore()).
    optimized = [
        optimize_machine_independent(dfg, level=opt_level)[0] for dfg in dfgs
    ]

    coarse_allocations = spec.coarse().allocations()
    coarse_points = explore(optimized, coarse_allocations, options=options,
                            jobs=jobs, cache=cache, preoptimized=True,
                            progress=progress)
    coarse_front = pareto_front(coarse_points, axes=axes)

    # Dedup on *canonical* tuples: explore() collapses degenerate merge
    # variants onto "none", and front points carry that canonical
    # allocation — keying `seen` on the raw grid tuples would re-add
    # already-evaluated coarse points as "fine" ones.
    operations = required_operations(optimized)

    def canonical(allocation: Allocation) -> tuple:
        variant = canonical_variant(allocation.merge_variant, operations)
        if variant != allocation.merge_variant:
            allocation = replace(allocation, merge_variant=variant)
        return allocation.astuple()

    seen = {canonical(allocation) for allocation in coarse_allocations}
    fine_allocations: list[Allocation] = []
    for point in coarse_front:
        for allocation in spec.neighborhood(point.allocation):
            key = canonical(allocation)
            if key not in seen:
                seen.add(key)
                fine_allocations.append(allocation)
    fine_points = explore(optimized, fine_allocations, options=options,
                          jobs=jobs, cache=cache, preoptimized=True,
                          progress=progress)

    points = coarse_points + fine_points
    return RefinedSweep(
        spec=spec, points=points,
        front=pareto_front(points, axes=axes), axes=axes,
        n_grid=spec.size, n_coarse=len(coarse_allocations),
        n_refined=len(fine_allocations),
    )


@dataclass
class CandidateSimulation:
    """The simulation of one exploration point: the compiled binary's
    output streams for every stimulus lane, or why it could not run."""

    point: ExplorationPoint
    #: One output-stream dict per stimulus lane (empty on failure).
    outputs: list[dict[str, list[int]]] = field(default_factory=list)
    failure: str | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def simulate_points(
    dfg: Dfg,
    points: list[ExplorationPoint],
    stimuli: list[dict[str, list[int]]] | dict[str, list[int]],
    *,
    options: "CompileOptions | None" = None,
    n_frames: int | None = None,
    engine: str = "auto",
) -> list[CandidateSimulation]:
    """Simulate exploration candidates on real stimulus, batched.

    Exploration scores candidates by schedule length alone (evaluation
    stops at register allocation); this closes the loop — each feasible
    point's core is re-synthesized, ``dfg`` is compiled *end to end* on
    it, and every binary runs the stimulus batch through
    :mod:`repro.sim.batch`.  Candidates whose binaries share a control
    path are stacked into one numpy batch by
    :func:`~repro.sim.batch.run_programs` when ``stimuli`` is a single
    shared dict; with a per-lane stimulus list each binary steps the
    whole batch at once instead.  Outputs are bit-identical to the
    scalar oracle, so they are directly comparable across candidates
    and against :func:`repro.lang.reference.run_reference`.

    Returns one :class:`CandidateSimulation` per point, in order;
    infeasible points (and points whose compile or simulation fails)
    carry ``failure`` instead of outputs.
    """
    from ..options import CompileOptions as Options
    from ..sim.batch import run_batch, run_programs
    from ..toolchain import Toolchain

    if options is None:
        options = Options()
    results: list[CandidateSimulation] = []
    compiled: list[tuple[int, object]] = []   # (result index, binary)
    for point in points:
        result = CandidateSimulation(point=point)
        results.append(result)
        if point.failures:
            result.failure = "; ".join(
                f"{name}: {reason}"
                for name, reason in sorted(point.failures.items())
            )
            continue
        try:
            core = intermediate_architecture([dfg], point.allocation)
            merges = merge_spec_for(point.allocation.merge_variant, core)
            toolchain = Toolchain(core, options.replace(opt=0), cache=None)
            specialized, _ = specialize_for_core(dfg, core, options.opt)
            state = toolchain.run_pipeline(specialized, merges=merges)
            compiled.append((len(results) - 1, state.artifacts["binary"]))
        except ReproError as exc:
            result.failure = f"{type(exc).__name__}: {exc}"

    if not compiled:
        return results
    try:
        if isinstance(stimuli, dict):
            outputs = run_programs(
                [binary for _, binary in compiled], stimuli,
                n_frames=n_frames, engine=engine)
            for (index, _), lane_out in zip(compiled, outputs):
                results[index].outputs = [lane_out]
        else:
            for index, binary in compiled:
                results[index].outputs = run_batch(
                    binary, stimuli, n_frames=n_frames, engine=engine)
    except ReproError as exc:
        # A per-candidate failure mid-batch: fall back to one-at-a-time
        # so a single diverging binary cannot sink the whole sweep.
        for index, binary in compiled:
            if results[index].outputs:
                continue
            lanes = [stimuli] if isinstance(stimuli, dict) else stimuli
            try:
                results[index].outputs = run_batch(
                    binary, lanes, n_frames=n_frames, engine=engine)
            except ReproError as lane_exc:
                results[index].failure = \
                    f"{type(lane_exc).__name__}: {lane_exc}"
        del exc
    return results
