"""Phase-1 support: intermediate architectures and design-space
exploration (paper, sections 1 and 4).

"During phase 1 a representative set of applications within the target
application domain is implemented using existing ASIC synthesis tools
for the design space exploration.  Based on this quantitative feedback
a core architecture including the instruction set is defined."

and, on the compiler side (section 4): "The generated RTs can be
executed on an intermediate datapath which is equivalent to the
Piramid/Cathedral2 architecture."

:func:`intermediate_architecture` synthesises that starting point for a
set of applications: one or more OPUs per operation kind, one register
file per OPU input port, one bus per OPU and full fan-out (every bus
reaches every compatible operand file).  :func:`explore` sweeps OPU
allocations and reports the schedule length of each candidate — the
quantitative feedback a core designer iterates on before freezing the
instruction set.

The explorer is *optimizer-aware* and built on the staged pipeline:

* each application is machine-independently optimized **once per opt
  level** (the candidate cores are sized from the optimized graphs,
  not the source as written); only the core-aware specialization
  (``-O2`` strength reduction) re-runs per candidate;
* candidates fan out over a ``concurrent.futures`` worker pool
  (``jobs=``) and each evaluation runs the staged pipeline only
  through register allocation — encoding is not needed for schedule
  lengths;
* infeasible candidates are not dropped: every
  :class:`ExplorationPoint` records per-application failure reasons;
* :func:`pareto_front` extracts the candidates worth a designer's
  attention (no other candidate is both smaller and faster);
* repeated sweeps reuse an :class:`ExploreCache` — a designer
  narrowing the allocation ranges pays only for the new candidates.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields

from ..errors import ArchitectureError, ReproError
from ..lang.dfg import Dfg, NodeKind
from ..opt import optimize_machine_independent, specialize_for_core
from .controller import ControllerSpec
from .datapath import Datapath
from .library import ClassDef, CoreSpec
from .opu import Operation, OpuKind

#: Operation sets per functional-unit kind the allocator can instantiate.
_ALU_OPS = ("add", "sub", "add_clip", "pass", "pass_clip")
_KNOWN_ALU = set(_ALU_OPS)

#: Pseudo-application key for failures of core synthesis itself.
ARCHITECTURE_FAILURE = "(architecture)"


@dataclass(frozen=True)
class Allocation:
    """How many units of each kind an intermediate architecture gets."""

    n_mult: int = 1
    n_alu: int = 1
    n_ram: int = 1
    rf_size: int = 16
    ram_size: int = 256
    rom_size: int = 128

    def __post_init__(self) -> None:
        if min(self.n_mult, self.n_alu, self.n_ram) < 1:
            raise ArchitectureError("allocation needs at least one unit of each kind")

    def astuple(self) -> tuple[int, ...]:
        return tuple(getattr(self, f.name) for f in fields(self))


def required_operations(dfgs: list[Dfg]) -> set[str]:
    """All dataflow operations the applications use."""
    operations: set[str] = set()
    for dfg in dfgs:
        for node in dfg.nodes:
            if node.kind is NodeKind.OP:
                operations.add(node.name)
    return operations


def intermediate_architecture(
    dfgs: list[Dfg],
    allocation: Allocation | None = None,
    name: str = "intermediate",
) -> CoreSpec:
    """Synthesize the Cathedral-2-like intermediate core for ``dfgs``.

    The result has distributed per-port register files, one bus per
    OPU, full fan-out, and a *fully parallel* instruction set (one
    maximal type containing every class): no instruction-set
    restrictions, which is exactly what step 1 of the compiler assumes.
    """
    allocation = allocation or Allocation()
    operations = required_operations(dfgs)
    unknown_alu = {
        op for op in operations if op not in _KNOWN_ALU and op != "mult"
    }
    if unknown_alu:
        raise ArchitectureError(
            f"no functional-unit template supports operations "
            f"{sorted(unknown_alu)}; extend the allocator with an ASU"
        )
    needs_mult = "mult" in operations
    needs_state = any(dfg.states for dfg in dfgs)
    needs_params = needs_mult or any(dfg.params for dfg in dfgs)
    n_inputs = max((len(dfg.inputs) for dfg in dfgs), default=0)
    n_outputs = max((len(dfg.outputs) for dfg in dfgs), default=1)

    dp = Datapath(name)
    alus = [
        dp.add_opu(f"alu_{i}" if allocation.n_alu > 1 else "alu", OpuKind.ALU, [
            Operation("add", arity=2, commutative=True),
            Operation("sub", arity=2),
            Operation("add_clip", arity=2, commutative=True),
            Operation("pass", arity=1),
            Operation("pass_clip", arity=1),
        ])
        for i in range(allocation.n_alu)
    ]
    mults = []
    if needs_mult:
        mults = [
            dp.add_opu(f"mult_{i}" if allocation.n_mult > 1 else "mult",
                       OpuKind.MULT,
                       [Operation("mult", arity=2, commutative=True)])
            for i in range(allocation.n_mult)
        ]
    rams = []
    acus = []
    if needs_state:
        rams = [
            dp.add_opu(f"ram_{i}" if allocation.n_ram > 1 else "ram",
                       OpuKind.RAM, [
                           Operation("read", arity=1, reads_memory=True),
                           Operation("write", arity=2, writes_memory=True),
                       ], memory_size=allocation.ram_size)
            for i in range(allocation.n_ram)
        ]
        # One address unit per data memory (X/Y dual-memory style).
        acus = [
            dp.add_opu(f"acu_{i}" if allocation.n_ram > 1 else "acu",
                       OpuKind.ACU, [Operation("addmod", arity=2)])
            for i in range(allocation.n_ram)
        ]
    rom = None
    if needs_params:
        rom = dp.add_opu("rom", OpuKind.ROM,
                         [Operation("const", arity=1, reads_memory=True)],
                         memory_size=allocation.rom_size)
    # The program-constant unit is unconditional: it drives ROM
    # addresses and supplies immediate constants, and the Cathedral-2
    # template always carries one.
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)]) \
        if n_inputs else None
    opbs = [
        dp.add_opu(f"opb_{i}" if n_outputs > 1 else "opb", OpuKind.OUTPUT,
                   [Operation("write", arity=1)])
        for i in range(max(n_outputs, 1))
    ]

    # One register file per register-fed input port.
    def feed(opu, index):
        rf = dp.add_register_file(f"rf_{opu.name}_p{index}", allocation.rf_size)
        dp.connect_port(opu, index, rf)
        return rf

    operand_files = []   # files that receive routed data values
    for alu in alus:
        operand_files.append(feed(alu, 0))
        operand_files.append(feed(alu, 1))
    mult_data_files = []
    mult_coef_files = []
    for mult in mults:
        mult_data_files.append(feed(mult, 0))
        mult_coef_files.append(feed(mult, 1))
    ram_addr_files = []
    ram_data_files = []
    for ram in rams:
        ram_addr_files.append(feed(ram, 0))
        ram_data_files.append(feed(ram, 1))
    for acu in acus:
        feed(acu, 0)
        dp.make_immediate_port(acu, 1)
    rom_addr_file = feed(rom, 0) if rom is not None else None
    dp.make_immediate_port(prg, 0)
    opb_files = [feed(opb, 0) for opb in opbs]

    producers = [*alus, *mults, *rams]
    if ipb is not None:
        producers.append(ipb)
    buses = {opu.name: dp.attach_bus(opu) for opu in producers}
    for acu in acus:
        buses[acu.name] = dp.attach_bus(acu)
    if rom is not None:
        buses[rom.name] = dp.attach_bus(rom)
    buses[prg.name] = dp.attach_bus(prg)

    # Full fan-out: every data producer reaches every operand file.
    data_targets = (operand_files + mult_data_files + ram_data_files
                    + opb_files)
    for opu in producers:
        for rf in data_targets:
            dp.route_bus(buses[opu.name], rf)
    # Dedicated paths: coefficients, addresses, the frame pointer.
    if rom is not None:
        for rf in mult_coef_files:
            dp.route_bus(buses[rom.name], rf)
        dp.route_bus(buses[prg.name], rom_addr_file)
    elif mult_coef_files:
        for rf in mult_coef_files:
            dp.route_bus(buses[prg.name], rf)
    for acu, addr_file in zip(acus, ram_addr_files):
        dp.route_bus(buses[acu.name], addr_file)
        dp.route_bus(buses[acu.name], dp.port_register_file(acu, 0))

    class_defs = [
        ClassDef(opu.name, opu.name, tuple(sorted(opu.operations)))
        for opu in dp.opus.values()
    ]
    # Fully parallel: one maximal instruction type with every class.
    instruction_types = [frozenset(cd.name for cd in class_defs)]
    return CoreSpec(
        name=name,
        datapath=dp,
        controller=ControllerSpec(stack_depth=4, program_size=1024),
        class_defs=class_defs,
        instruction_types=instruction_types,
    )


@dataclass
class ExplorationPoint:
    """One design-space candidate and its quantitative feedback.

    ``schedule_lengths`` holds one entry per application that compiled;
    ``failures`` maps the applications that did not (or the
    :data:`ARCHITECTURE_FAILURE` pseudo-key when core synthesis itself
    failed) to a human-readable reason.
    """

    allocation: Allocation
    schedule_lengths: dict[str, int]
    n_opus: int
    failures: dict[str, str] = field(default_factory=dict)
    opt_level: int = 1

    @property
    def feasible(self) -> bool:
        """True when every application compiled on this candidate."""
        return not self.failures and bool(self.schedule_lengths)

    @property
    def worst_length(self) -> int:
        """The binding schedule length across the application set."""
        if not self.schedule_lengths:
            reasons = "; ".join(
                f"{app}: {reason}" for app, reason in self.failures.items()
            ) or "no applications were compiled"
            raise ArchitectureError(
                f"candidate {self.allocation} has no schedule lengths "
                f"({reasons})"
            )
        return max(self.schedule_lengths.values())


def pareto_front(points: list[ExplorationPoint]) -> list[ExplorationPoint]:
    """The non-dominated feasible candidates.

    A point dominates another when it is no worse on both axes the
    designer trades off — worst schedule length and OPU count — and
    strictly better on at least one.
    """
    feasible = [p for p in points if p.feasible]
    front = []
    for p in feasible:
        dominated = any(
            (q.worst_length <= p.worst_length and q.n_opus <= p.n_opus)
            and (q.worst_length < p.worst_length or q.n_opus < p.n_opus)
            for q in feasible
        )
        if not dominated:
            front.append(p)
    return front


#: Serialization version of :class:`ExplorationPoint` in the disk
#: cache; bump when the dataclass shape changes.
EXPLORATION_POINT_VERSION = 1

_POINT_SCHEMA = {"exploration_point": EXPLORATION_POINT_VERSION}


class ExploreCache:
    """Memo of evaluated candidates, keyed by (applications, allocation,
    budget, opt level).  Share one across sweeps to pay only for new
    candidates when iterating on the allocation ranges.

    ``disk`` layers a persistent
    :class:`~repro.pipeline.diskcache.DiskCache` underneath: a memory
    miss falls through to the store, and evaluated candidates are
    written through — so the morning's warm re-sweep in a *new process*
    reads yesterday's feedback from disk instead of recompiling it.
    """

    def __init__(self, disk=None):
        self._points: dict[str, ExplorationPoint] = {}
        self.disk = disk
        self.hits = 0
        self.misses = 0
        #: subset of ``hits`` served by the on-disk layer
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._points)

    @staticmethod
    def _copy(point: ExplorationPoint) -> ExplorationPoint:
        return ExplorationPoint(
            allocation=point.allocation,
            schedule_lengths=dict(point.schedule_lengths),
            n_opus=point.n_opus,
            failures=dict(point.failures),
            opt_level=point.opt_level,
        )

    def get(self, key: str) -> ExplorationPoint | None:
        point = self._points.get(key)
        if point is not None:
            self.hits += 1
            return self._copy(point)
        if self.disk is not None:
            point = self.disk.get(key, schema=_POINT_SCHEMA)
            if point is not None:
                self._points[key] = self._copy(point)
                self.hits += 1
                self.disk_hits += 1
                return point
        self.misses += 1
        return None

    def put(self, key: str, point: ExplorationPoint) -> None:
        # Store a copy, symmetric with get(): callers may mutate the
        # points a sweep hands back without poisoning later sweeps.
        self._points[key] = self._copy(point)
        if self.disk is not None:
            self.disk.put(key, self._points[key], schema=_POINT_SCHEMA)


@dataclass
class _CandidateTask:
    """Everything one worker needs to evaluate one allocation."""

    allocation: Allocation
    dfgs: list[Dfg]          # machine-independently optimized
    budget: int | None
    opt_level: int


def _evaluate_candidate(task: _CandidateTask) -> ExplorationPoint:
    """Evaluate one allocation: synthesize the core, compile every
    application through register allocation, record lengths/failures.

    Top-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; only compiler/architecture errors are treated as
    infeasibility — anything else is a bug and propagates.
    """
    from ..pipeline import CompileSession

    try:
        core = intermediate_architecture(task.dfgs, task.allocation)
    except ReproError as exc:
        return ExplorationPoint(
            allocation=task.allocation, schedule_lengths={}, n_opus=0,
            failures={ARCHITECTURE_FAILURE: f"{type(exc).__name__}: {exc}"},
            opt_level=task.opt_level,
        )
    lengths: dict[str, int] = {}
    failures: dict[str, str] = {}
    session = CompileSession(cache=None)
    for dfg in task.dfgs:
        try:
            # Core-aware specialization (a no-op below -O2), then the
            # staged pipeline through regalloc: schedule length is the
            # feedback, so encoding is skipped.
            specialized, _ = specialize_for_core(dfg, core, task.opt_level)
            state = session.run(specialized, core, budget=task.budget,
                                opt_level=0, stop_after="regalloc")
            lengths[dfg.name] = state.artifacts["schedule"].length
        except ReproError as exc:
            failures[dfg.name] = f"{type(exc).__name__}: {exc}"
    return ExplorationPoint(
        allocation=task.allocation, schedule_lengths=lengths,
        n_opus=len(core.datapath.opus), failures=failures,
        opt_level=task.opt_level,
    )


def explore(
    dfgs: list[Dfg],
    allocations: list[Allocation],
    budget: int | None = None,
    opt_level: int = 1,
    jobs: int | None = None,
    cache: ExploreCache | None = None,
    cache_dir: str | None = None,
) -> list[ExplorationPoint]:
    """Compile every application on every candidate architecture.

    Returns one :class:`ExplorationPoint` per allocation, in input
    order, with the schedule length of each application — the feedback
    loop of phase 1.  Candidates that cannot run an application
    (budget, routing or register pressure) are *kept*, with the reason
    on :attr:`ExplorationPoint.failures`; filter on
    :attr:`ExplorationPoint.feasible` or use :func:`pareto_front`.

    Each application is machine-independently optimized exactly once
    (per opt level) before the sweep, and the candidate cores are sized
    from the optimized graphs.  ``jobs`` > 1 fans candidates out over a
    process pool; ``cache`` memoizes evaluated candidates across
    sweeps.  ``cache_dir`` (when no ``cache`` is handed in) builds a
    disk-backed :class:`ExploreCache` on that directory, so repeated
    sweeps hit disk across processes.
    """
    from ..pipeline import DiskCache, dfg_fingerprint, fingerprint

    if cache is None and cache_dir is not None:
        cache = ExploreCache(disk=DiskCache(cache_dir))

    optimized = [
        optimize_machine_independent(dfg, level=opt_level)[0] for dfg in dfgs
    ]
    app_key = [dfg_fingerprint(dfg) for dfg in optimized]

    results: dict[int, ExplorationPoint] = {}
    pending: list[tuple[int, _CandidateTask, str]] = []
    for index, allocation in enumerate(allocations):
        key = fingerprint("explore", app_key, allocation.astuple(),
                          budget, opt_level)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            task = _CandidateTask(allocation=allocation, dfgs=optimized,
                                  budget=budget, opt_level=opt_level)
            pending.append((index, task, key))

    if jobs is not None and jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            evaluated = list(pool.map(_evaluate_candidate,
                                      [task for _, task, _ in pending]))
    else:
        evaluated = [_evaluate_candidate(task) for _, task, _ in pending]
    for (index, _, key), point in zip(pending, evaluated):
        results[index] = point
        if cache is not None:
            cache.put(key, point)
    return [results[index] for index in range(len(allocations))]
