"""Phase-1 support: intermediate architectures and design-space
exploration (paper, sections 1 and 4).

"During phase 1 a representative set of applications within the target
application domain is implemented using existing ASIC synthesis tools
for the design space exploration.  Based on this quantitative feedback
a core architecture including the instruction set is defined."

and, on the compiler side (section 4): "The generated RTs can be
executed on an intermediate datapath which is equivalent to the
Piramid/Cathedral2 architecture."

:func:`intermediate_architecture` synthesises that starting point for a
set of applications: one or more OPUs per operation kind, one register
file per OPU input port, one bus per OPU and full fan-out (every bus
reaches every compatible operand file).  :func:`explore` sweeps OPU
allocations and reports the schedule length of each candidate — the
quantitative feedback a core designer iterates on before freezing the
instruction set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ArchitectureError
from ..lang.dfg import Dfg, NodeKind
from .controller import ControllerSpec
from .datapath import Datapath
from .library import ClassDef, CoreSpec
from .opu import Operation, OpuKind

#: Operation sets per functional-unit kind the allocator can instantiate.
_ALU_OPS = ("add", "sub", "add_clip", "pass", "pass_clip")
_KNOWN_ALU = set(_ALU_OPS)


@dataclass(frozen=True)
class Allocation:
    """How many units of each kind an intermediate architecture gets."""

    n_mult: int = 1
    n_alu: int = 1
    n_ram: int = 1
    rf_size: int = 16
    ram_size: int = 256
    rom_size: int = 128

    def __post_init__(self) -> None:
        if min(self.n_mult, self.n_alu, self.n_ram) < 1:
            raise ArchitectureError("allocation needs at least one unit of each kind")


def required_operations(dfgs: list[Dfg]) -> set[str]:
    """All dataflow operations the applications use."""
    operations: set[str] = set()
    for dfg in dfgs:
        for node in dfg.nodes:
            if node.kind is NodeKind.OP:
                operations.add(node.name)
    return operations


def intermediate_architecture(
    dfgs: list[Dfg],
    allocation: Allocation | None = None,
    name: str = "intermediate",
) -> CoreSpec:
    """Synthesize the Cathedral-2-like intermediate core for ``dfgs``.

    The result has distributed per-port register files, one bus per
    OPU, full fan-out, and a *fully parallel* instruction set (one
    maximal type containing every class): no instruction-set
    restrictions, which is exactly what step 1 of the compiler assumes.
    """
    allocation = allocation or Allocation()
    operations = required_operations(dfgs)
    unknown_alu = {
        op for op in operations if op not in _KNOWN_ALU and op != "mult"
    }
    if unknown_alu:
        raise ArchitectureError(
            f"no functional-unit template supports operations "
            f"{sorted(unknown_alu)}; extend the allocator with an ASU"
        )
    needs_mult = "mult" in operations
    needs_state = any(dfg.states for dfg in dfgs)
    needs_params = needs_mult or any(dfg.params for dfg in dfgs)
    n_inputs = max((len(dfg.inputs) for dfg in dfgs), default=0)
    n_outputs = max((len(dfg.outputs) for dfg in dfgs), default=1)

    dp = Datapath(name)
    alus = [
        dp.add_opu(f"alu_{i}" if allocation.n_alu > 1 else "alu", OpuKind.ALU, [
            Operation("add", arity=2, commutative=True),
            Operation("sub", arity=2),
            Operation("add_clip", arity=2, commutative=True),
            Operation("pass", arity=1),
            Operation("pass_clip", arity=1),
        ])
        for i in range(allocation.n_alu)
    ]
    mults = []
    if needs_mult:
        mults = [
            dp.add_opu(f"mult_{i}" if allocation.n_mult > 1 else "mult",
                       OpuKind.MULT,
                       [Operation("mult", arity=2, commutative=True)])
            for i in range(allocation.n_mult)
        ]
    rams = []
    acus = []
    if needs_state:
        rams = [
            dp.add_opu(f"ram_{i}" if allocation.n_ram > 1 else "ram",
                       OpuKind.RAM, [
                           Operation("read", arity=1, reads_memory=True),
                           Operation("write", arity=2, writes_memory=True),
                       ], memory_size=allocation.ram_size)
            for i in range(allocation.n_ram)
        ]
        # One address unit per data memory (X/Y dual-memory style).
        acus = [
            dp.add_opu(f"acu_{i}" if allocation.n_ram > 1 else "acu",
                       OpuKind.ACU, [Operation("addmod", arity=2)])
            for i in range(allocation.n_ram)
        ]
    rom = None
    prg = None
    if needs_params:
        rom = dp.add_opu("rom", OpuKind.ROM,
                         [Operation("const", arity=1, reads_memory=True)],
                         memory_size=allocation.rom_size)
    if needs_params or True:
        prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)]) \
        if n_inputs else None
    opbs = [
        dp.add_opu(f"opb_{i}" if n_outputs > 1 else "opb", OpuKind.OUTPUT,
                   [Operation("write", arity=1)])
        for i in range(max(n_outputs, 1))
    ]

    # One register file per register-fed input port.
    def feed(opu, index):
        rf = dp.add_register_file(f"rf_{opu.name}_p{index}", allocation.rf_size)
        dp.connect_port(opu, index, rf)
        return rf

    operand_files = []   # files that receive routed data values
    for alu in alus:
        operand_files.append(feed(alu, 0))
        operand_files.append(feed(alu, 1))
    mult_data_files = []
    mult_coef_files = []
    for mult in mults:
        mult_data_files.append(feed(mult, 0))
        mult_coef_files.append(feed(mult, 1))
    ram_addr_files = []
    ram_data_files = []
    for ram in rams:
        ram_addr_files.append(feed(ram, 0))
        ram_data_files.append(feed(ram, 1))
    for acu in acus:
        feed(acu, 0)
        dp.make_immediate_port(acu, 1)
    rom_addr_file = feed(rom, 0) if rom is not None else None
    if prg is not None:
        dp.make_immediate_port(prg, 0)
    opb_files = [feed(opb, 0) for opb in opbs]

    producers = [*alus, *mults, *rams]
    if ipb is not None:
        producers.append(ipb)
    buses = {opu.name: dp.attach_bus(opu) for opu in producers}
    for acu in acus:
        buses[acu.name] = dp.attach_bus(acu)
    if rom is not None:
        buses[rom.name] = dp.attach_bus(rom)
    if prg is not None:
        buses[prg.name] = dp.attach_bus(prg)

    # Full fan-out: every data producer reaches every operand file.
    data_targets = (operand_files + mult_data_files + ram_data_files
                    + opb_files)
    for opu in producers:
        for rf in data_targets:
            dp.route_bus(buses[opu.name], rf)
    # Dedicated paths: coefficients, addresses, the frame pointer.
    if rom is not None:
        for rf in mult_coef_files:
            dp.route_bus(buses[rom.name], rf)
        dp.route_bus(buses[prg.name], rom_addr_file)
    elif prg is not None and mult_coef_files:
        for rf in mult_coef_files:
            dp.route_bus(buses[prg.name], rf)
    for acu, addr_file in zip(acus, ram_addr_files):
        dp.route_bus(buses[acu.name], addr_file)
        dp.route_bus(buses[acu.name], dp.port_register_file(acu, 0))

    class_defs = [
        ClassDef(opu.name, opu.name, tuple(sorted(opu.operations)))
        for opu in dp.opus.values()
    ]
    # Fully parallel: one maximal instruction type with every class.
    instruction_types = [frozenset(cd.name for cd in class_defs)]
    return CoreSpec(
        name=name,
        datapath=dp,
        controller=ControllerSpec(stack_depth=4, program_size=1024),
        class_defs=class_defs,
        instruction_types=instruction_types,
    )


@dataclass
class ExplorationPoint:
    """One design-space candidate and its quantitative feedback."""

    allocation: Allocation
    schedule_lengths: dict[str, int]
    n_opus: int

    @property
    def worst_length(self) -> int:
        return max(self.schedule_lengths.values())


def explore(
    dfgs: list[Dfg],
    allocations: list[Allocation],
    budget: int | None = None,
) -> list[ExplorationPoint]:
    """Compile every application on every candidate architecture.

    Returns one :class:`ExplorationPoint` per allocation with the
    schedule length of each application — the feedback loop of phase 1.
    Candidates that cannot run an application (routing or register
    pressure) are skipped.
    """
    from ..pipeline import compile_application

    points: list[ExplorationPoint] = []
    for allocation in allocations:
        core = intermediate_architecture(dfgs, allocation)
        lengths: dict[str, int] = {}
        feasible = True
        for dfg in dfgs:
            try:
                compiled = compile_application(dfg, core, budget=budget)
            except Exception:
                feasible = False
                break
            lengths[dfg.name] = compiled.n_cycles
        if feasible:
            points.append(ExplorationPoint(
                allocation=allocation,
                schedule_lengths=lengths,
                n_opus=len(core.datapath.opus),
            ))
    return points
