"""Target architecture model for in-house DSP cores (paper, section 5).

The class of architectures for which code generation is possible:
a datapath of operation units with distributed register files, buses
and multiplexers (figure 3), plus a small pipelined controller with a
loop stack (figure 4).  A :class:`CoreSpec` bundles a datapath, a
controller and the instruction-set data that :mod:`repro.core`
interprets.
"""

from .controller import ControllerSpec, CtrlOp
from .datapath import Datapath, Route
from .explore import (
    ARCHITECTURE_FAILURE,
    MERGE_VARIANTS,
    PARETO_AXES,
    STORAGE_AXES,
    Allocation,
    CandidateSimulation,
    ExplorationPoint,
    ExploreCache,
    RefinedSweep,
    SweepSpec,
    explore,
    explore_refined,
    intermediate_architecture,
    merge_spec_for,
    pareto_axes,
    pareto_front,
    required_operations,
    simulate_points,
)
from .interconnect import Bus, BusSink, Mux
from .library import (
    AUDIO_CLASS_TABLE_9,
    AUDIO_CLASS_TABLE_13,
    AUDIO_INSTRUCTION_TYPES,
    FIR_CLASS_TABLE,
    FIR_INSTRUCTION_TYPES,
    TINY_CLASS_TABLE,
    TINY_INSTRUCTION_TYPES,
    ClassDef,
    CoreSpec,
    audio_core,
    audio_datapath,
    fir_core,
    fir_datapath,
    tiny_core,
    tiny_datapath,
)
from .merge import BusMerge, MergeSpec, RegisterFileMerge
from .opu import InputPort, Operation, Opu, OpuKind
from .registry import (
    get_core,
    list_cores,
    register_core,
    resolve_core,
    unregister_core,
)
from .serialize import (
    core_from_dict,
    core_to_dict,
    datapath_from_dict,
    datapath_to_dict,
    dump_core,
    load_core,
)
from .storage import RegisterFile
from .validate import datapath_findings, validate_datapath

__all__ = [
    "ARCHITECTURE_FAILURE",
    "AUDIO_CLASS_TABLE_13",
    "AUDIO_CLASS_TABLE_9",
    "AUDIO_INSTRUCTION_TYPES",
    "Allocation",
    "Bus",
    "CandidateSimulation",
    "ExplorationPoint",
    "ExploreCache",
    "MERGE_VARIANTS",
    "PARETO_AXES",
    "RefinedSweep",
    "STORAGE_AXES",
    "SweepSpec",
    "explore",
    "explore_refined",
    "intermediate_architecture",
    "merge_spec_for",
    "pareto_axes",
    "pareto_front",
    "required_operations",
    "simulate_points",
    "BusMerge",
    "BusSink",
    "ClassDef",
    "ControllerSpec",
    "CoreSpec",
    "CtrlOp",
    "Datapath",
    "FIR_CLASS_TABLE",
    "FIR_INSTRUCTION_TYPES",
    "InputPort",
    "MergeSpec",
    "Mux",
    "Operation",
    "Opu",
    "OpuKind",
    "RegisterFile",
    "RegisterFileMerge",
    "Route",
    "TINY_CLASS_TABLE",
    "TINY_INSTRUCTION_TYPES",
    "audio_core",
    "audio_datapath",
    "core_from_dict",
    "core_to_dict",
    "datapath_from_dict",
    "datapath_to_dict",
    "dump_core",
    "fir_core",
    "fir_datapath",
    "get_core",
    "list_cores",
    "load_core",
    "register_core",
    "resolve_core",
    "tiny_core",
    "unregister_core",
    "tiny_datapath",
    "datapath_findings",
    "validate_datapath",
]
