"""JSON (de)serialization of core definitions.

The paper's cores are specified by the in-house design team and handed
to the code generator; persisting the full :class:`CoreSpec` — the
datapath, the controller and the instruction set — lets a core travel
as one artifact.  The format is a plain JSON document, stable across
library versions and diffable in code review.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ArchitectureError
from .controller import ControllerSpec
from .datapath import Datapath
from .library import ClassDef, CoreSpec
from .opu import Operation, OpuKind

FORMAT_VERSION = 1


def datapath_to_dict(dp: Datapath) -> dict[str, Any]:
    opus = []
    for opu in dp.opus.values():
        ports = []
        for port in opu.ports:
            ports.append({
                "register_file": port.register_file.name if port.register_file else None,
                "immediate": port.accepts_immediate,
            })
        opus.append({
            "name": opu.name,
            "kind": opu.kind.value,
            "memory_size": opu.memory_size,
            "operations": [
                {
                    "name": op.name,
                    "arity": op.arity,
                    "latency": op.latency,
                    "initiation_interval": op.initiation_interval,
                    "commutative": op.commutative,
                    "flags": list(op.flags),
                    "writes_memory": op.writes_memory,
                    "reads_memory": op.reads_memory,
                }
                for op in opu.operations.values()
            ],
            "ports": ports,
            "bus": opu.bus.name if opu.bus is not None else None,
        })
    register_files = [
        {
            "name": rf.name,
            "size": rf.size,
            "dedicated_read_ports": rf.dedicated_read_ports,
        }
        for rf in dp.register_files.values()
    ]
    # Record fan-out per register file in multiplexer-input order, so
    # replaying the routes reproduces every mux selection index exactly.
    routes = []
    for rf in dp.register_files.values():
        writers = [w for w in rf.writers]
        if not writers:
            continue
        mux = dp.muxes.get(f"mux_{rf.name}")
        if mux is None:
            for writer in writers:
                routes.append({
                    "bus": _bus_of_sink(dp, writer).name,
                    "register_file": rf.name,
                })
        else:
            for bus in mux.inputs:
                routes.append({"bus": bus.name, "register_file": rf.name})
    return {
        "name": dp.name,
        "opus": opus,
        "register_files": register_files,
        "routes": routes,
    }


def _bus_of_sink(dp: Datapath, sink) -> Any:
    for bus in dp.buses.values():
        if sink in bus.sinks:
            return bus
    raise ArchitectureError("sink without a driving bus")


def datapath_from_dict(data: dict[str, Any]) -> Datapath:
    dp = Datapath(data["name"])
    for rf in data["register_files"]:
        dp.add_register_file(rf["name"], rf["size"], rf["dedicated_read_ports"])
    for entry in data["opus"]:
        operations = [
            Operation(
                name=op["name"],
                arity=op["arity"],
                latency=op["latency"],
                initiation_interval=op["initiation_interval"],
                commutative=op["commutative"],
                flags=tuple(op["flags"]),
                writes_memory=op["writes_memory"],
                reads_memory=op["reads_memory"],
            )
            for op in entry["operations"]
        ]
        opu = dp.add_opu(
            entry["name"],
            OpuKind(entry["kind"]),
            operations,
            memory_size=entry["memory_size"],
        )
        for index, port in enumerate(entry["ports"]):
            if port["immediate"]:
                dp.make_immediate_port(opu, index)
            elif port["register_file"] is not None:
                dp.connect_port(opu, index, port["register_file"])
        if entry["bus"] is not None:
            dp.attach_bus(opu, entry["bus"])
    for route in data["routes"]:
        dp.route_bus(route["bus"], route["register_file"])
    return dp


def core_to_dict(core: CoreSpec) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": core.name,
        "data_width": core.data_width,
        "frac_bits": core.frac_bits,
        "datapath": datapath_to_dict(core.datapath),
        "controller": {
            "stack_depth": core.controller.stack_depth,
            "n_flags": core.controller.n_flags,
            "supports_conditionals": core.controller.supports_conditionals,
            "supports_loops": core.controller.supports_loops,
            "program_size": core.controller.program_size,
        },
        "class_defs": [
            {"name": cd.name, "opu": cd.opu, "usages": list(cd.usages)}
            for cd in core.class_defs
        ],
        "instruction_types": [sorted(t) for t in core.instruction_types],
    }


def core_from_dict(data: dict[str, Any]) -> CoreSpec:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ArchitectureError(
            f"unsupported core format version {version!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    controller = data["controller"]
    return CoreSpec(
        name=data["name"],
        datapath=datapath_from_dict(data["datapath"]),
        controller=ControllerSpec(
            stack_depth=controller["stack_depth"],
            n_flags=controller["n_flags"],
            supports_conditionals=controller["supports_conditionals"],
            supports_loops=controller["supports_loops"],
            program_size=controller["program_size"],
        ),
        class_defs=[
            ClassDef(cd["name"], cd["opu"], tuple(cd["usages"]))
            for cd in data["class_defs"]
        ],
        instruction_types=[frozenset(t) for t in data["instruction_types"]],
        data_width=data["data_width"],
        frac_bits=data["frac_bits"],
    )


def dump_core(core: CoreSpec) -> str:
    """Serialize a core to a JSON string."""
    return json.dumps(core_to_dict(core), indent=2, sort_keys=False)


def load_core(text: str) -> CoreSpec:
    """Load a core from a JSON string produced by :func:`dump_core`."""
    return core_from_dict(json.loads(text))
