"""Register files of the target datapath (paper, section 5/7).

Distributed register files are "characteristic for these kind of signal
processors" (section 7).  Every OPU input port is fed by one register
file; results arrive through a bus and an optional multiplexer.  The
paper's register files "support single cycle random read and random
write": one write per cycle, and reads that the conflict model resolves
per port.

Port modelling
--------------
Writes always share one write port: two RTs writing different values
into the same register file in the same cycle conflict.

Reads are configurable:

* ``dedicated_read_ports=True`` (default) — every consuming OPU port
  has its own read port, so reads through different consumers never
  conflict.  This matches the unmerged, fully distributed style where
  each register file feeds exactly one port anyway.
* ``dedicated_read_ports=False`` — a single shared read port: two RTs
  reading *different registers* of the file in the same cycle conflict
  (reading the same register is free — same usage).  Merged register
  files use this mode, reproducing "shared at the cost of reduction of
  parallelism".
"""

from __future__ import annotations

from ..errors import ArchitectureError


class RegisterFile:
    """A small random-access register file feeding OPU input ports."""

    def __init__(self, name: str, size: int, dedicated_read_ports: bool = True):
        if size < 1:
            raise ArchitectureError(f"register file {name!r}: size must be >= 1")
        self.name = name
        self.size = size
        self.dedicated_read_ports = dedicated_read_ports
        self.readers: list[object] = []  # InputPort instances (wired by Datapath)
        self.writers: list[object] = []  # Mux / Bus sinks (wired by Datapath)

    # Resource names used in RT usage maps -------------------------------

    @property
    def write_resource(self) -> str:
        """Resource name of the (single) write port."""
        return f"{self.name}:wr"

    def read_resource(self, port: object | None = None) -> str:
        """Resource name of the read port used by ``port``.

        With dedicated read ports the resource is per consumer; with a
        shared port every consumer uses the same resource and the usage
        (the register read) decides sharing.
        """
        if self.dedicated_read_ports and port is not None:
            return f"{self.name}:rd:{getattr(port, 'name', port)}"
        return f"{self.name}:rd"

    def address_bits(self) -> int:
        """Instruction-word bits needed to address one register."""
        return max(1, (self.size - 1).bit_length())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.name}, size={self.size})"
