"""A library of in-house core definitions.

A :class:`CoreSpec` bundles everything the paper calls "the core":
the datapath, the controller and the instruction set (section 7:
"At this point the core is defined by the presented datapath, the
controller and the instruction set").

The instruction set is carried as *plain data* — named RT-class
definitions (OPU + usage set, section 6.1) and the desired instruction
types (sets of class names, section 6.2).  The :mod:`repro.core`
package interprets this data: it classifies RTs, validates/closes the
instruction set and generates the artificial conflict resources.

Cores provided
--------------
``audio_core``
    The digital-audio processor of figure 8, with the 13 RT classes of
    the paper's table reduced to the 9 classes {A,B,C,D,X,G,Y,L,M} and
    the three maximal instruction types of section 7.
``fir_core``
    A smaller filter core (no separate coefficient ROM: coefficients
    come from the program constant unit) used by the FIR/LMS examples.
``tiny_core``
    A register-only teaching core for quickstarts and unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .controller import ControllerSpec
from .datapath import Datapath
from .opu import Operation, OpuKind
from .validate import validate_datapath


@dataclass(frozen=True)
class ClassDef:
    """One RT class: a name for an (OPU, usage set) pair (section 6.1)."""

    name: str
    opu: str
    usages: tuple[str, ...]


@dataclass
class CoreSpec:
    """A complete in-house core: datapath + controller + instruction set."""

    name: str
    datapath: Datapath
    controller: ControllerSpec
    class_defs: list[ClassDef] = field(default_factory=list)
    instruction_types: list[frozenset[str]] = field(default_factory=list)
    data_width: int = 16
    frac_bits: int = 15

    def __post_init__(self) -> None:
        validate_datapath(self.datapath)

    def class_def(self, name: str) -> ClassDef:
        for cd in self.class_defs:
            if cd.name == name:
                return cd
        raise KeyError(f"core {self.name!r} has no RT class {name!r}")


# ---------------------------------------------------------------------------
# The audio core of figure 8
# ---------------------------------------------------------------------------

#: The unreduced class identification of the paper's figure 8 table:
#: 13 classes A..M, one per (OPU, usage) pair.
AUDIO_CLASS_TABLE_13: list[ClassDef] = [
    ClassDef("A", "ipb", ("read",)),
    ClassDef("B", "opb_1", ("write",)),
    ClassDef("C", "opb_2", ("write",)),
    ClassDef("D", "acu", ("addmod",)),
    ClassDef("E", "ram", ("read",)),
    ClassDef("F", "ram", ("write",)),
    ClassDef("G", "mult", ("mult",)),
    ClassDef("H", "alu", ("add",)),
    ClassDef("I", "alu", ("add_clip",)),
    ClassDef("J", "alu", ("pass",)),
    ClassDef("K", "alu", ("pass_clip",)),
    ClassDef("L", "rom", ("const",)),
    ClassDef("M", "prg_c", ("const",)),
]

#: The reduced table of section 7: "Classes E and F can be combined in a
#: single class X and classes H, I, J and K can be combined to class Y
#: so the number of classes is reduced to 9."
AUDIO_CLASS_TABLE_9: list[ClassDef] = [
    ClassDef("A", "ipb", ("read",)),
    ClassDef("B", "opb_1", ("write",)),
    ClassDef("C", "opb_2", ("write",)),
    ClassDef("D", "acu", ("addmod",)),
    ClassDef("X", "ram", ("read", "write")),
    ClassDef("G", "mult", ("mult",)),
    ClassDef("Y", "alu", ("add", "add_clip", "pass", "pass_clip")),
    ClassDef("L", "rom", ("const",)),
    ClassDef("M", "prg_c", ("const",)),
]

#: Section 7: "The instructions which are required are
#: {A,D,X,G,Y,L,M}, {B,D,X,G,Y,L,M}, {C,D,X,G,Y,L,M} together with all
#: their sub-instructions."  (Sub-instructions follow from construction
#: rule 3; the closure is computed by repro.core.)
AUDIO_INSTRUCTION_TYPES: list[frozenset[str]] = [
    frozenset({"A", "D", "X", "G", "Y", "L", "M"}),
    frozenset({"B", "D", "X", "G", "Y", "L", "M"}),
    frozenset({"C", "D", "X", "G", "Y", "L", "M"}),
]


def audio_datapath(ram_size: int = 128, rom_size: int = 64,
                   rf_scale: int = 1) -> Datapath:
    """Build the datapath of figure 8.

    OPUs: RAM (delay-line state), MULT, ALU with clip, coefficient ROM,
    ACU with modulo addressing, program constant unit PRG_C, the input
    port block IPB and two output port blocks OPB_1/OPB_2.  All operand
    register files are distributed, single-cycle, per-port.

    ``rf_scale`` multiplies every register-file size — used by the
    scaling benches that compile far bigger applications than the
    audio workload the default sizes were chosen for.
    """
    dp = Datapath("audio")

    ram = dp.add_opu("ram", OpuKind.RAM, [
        Operation("read", arity=1, reads_memory=True),
        Operation("write", arity=2, writes_memory=True),
    ], memory_size=ram_size)
    mult = dp.add_opu("mult", OpuKind.MULT, [
        Operation("mult", arity=2, commutative=True),
    ])
    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("add_clip", arity=2, commutative=True),
        Operation("pass", arity=1),
        Operation("pass_clip", arity=1),
    ])
    rom = dp.add_opu("rom", OpuKind.ROM, [
        Operation("const", arity=1, reads_memory=True),
    ], memory_size=rom_size)
    acu = dp.add_opu("acu", OpuKind.ACU, [
        Operation("addmod", arity=2),
    ])
    prg = dp.add_opu("prg_c", OpuKind.CONST, [
        Operation("const", arity=1),
    ])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb_1", OpuKind.OUTPUT, [Operation("write", arity=1)])
    dp.add_opu("opb_2", OpuKind.OUTPUT, [Operation("write", arity=1)])

    # Distributed register files, one per OPU input port (figure 8).
    # The paper does not publish file sizes; these accommodate the
    # 92%-occupation audio schedule (nine interleaved filter sections
    # keep up to 9 accumulators and 8 routed values alive at once).
    rf_ram_addr = dp.add_register_file("rf_ram_addr", 4 * rf_scale)
    rf_ram_data = dp.add_register_file("rf_ram_data", 8 * rf_scale)
    rf_mult_data = dp.add_register_file("rf_mult_data", 8 * rf_scale)
    rf_mult_coef = dp.add_register_file("rf_mult_coef", 4 * rf_scale)
    rf_rom_addr = dp.add_register_file("rf_rom_addr", 4 * rf_scale)
    rf_alu_p0 = dp.add_register_file("rf_alu_p0", 6 * rf_scale)
    rf_alu_p1 = dp.add_register_file("rf_alu_p1", 10 * rf_scale)
    rf_acu = dp.add_register_file("rf_acu", 2)
    rf_opb1 = dp.add_register_file("rf_opb1", 2 * rf_scale)
    rf_opb2 = dp.add_register_file("rf_opb2", 2 * rf_scale)

    dp.connect_port(ram, 0, rf_ram_addr)
    dp.connect_port(ram, 1, rf_ram_data)
    dp.connect_port(mult, 0, rf_mult_data)
    dp.connect_port(mult, 1, rf_mult_coef)
    dp.connect_port(alu, 0, rf_alu_p0)
    dp.connect_port(alu, 1, rf_alu_p1)
    dp.connect_port(rom, 0, rf_rom_addr)
    dp.connect_port(acu, 0, rf_acu)
    dp.make_immediate_port(acu, 1)       # modulo offset from the instruction word
    dp.make_immediate_port(prg, 0)       # the program constant itself
    dp.connect_port("opb_1", 0, rf_opb1)
    dp.connect_port("opb_2", 0, rf_opb2)

    bus_ram = dp.attach_bus(ram)
    bus_mult = dp.attach_bus(mult)
    bus_alu = dp.attach_bus(alu)
    bus_rom = dp.attach_bus(rom)
    bus_acu = dp.attach_bus(acu)
    bus_prg = dp.attach_bus(prg)
    bus_ipb = dp.attach_bus(ipb)

    # Fan-out.  Register files with several writers get a multiplexer
    # (inserted automatically), matching the optional mux of figure 3.
    dp.route_bus(bus_acu, rf_ram_addr)
    dp.route_bus(bus_acu, rf_acu)            # frame-pointer feedback
    dp.route_bus(bus_ipb, rf_ram_data)       # store input sample
    dp.route_bus(bus_alu, rf_ram_data)       # store computed state
    dp.route_bus(bus_mult, rf_ram_data)      # store scaled state
    dp.route_bus(bus_ram, rf_mult_data)      # delayed signal into MULT
    dp.route_bus(bus_alu, rf_mult_data)      # chained section into MULT
    dp.route_bus(bus_ipb, rf_mult_data)      # input sample into MULT
    dp.route_bus(bus_rom, rf_mult_coef)      # coefficient fetch
    dp.route_bus(bus_prg, rf_rom_addr)       # coefficient address
    dp.route_bus(bus_mult, rf_alu_p0)        # product into ALU
    dp.route_bus(bus_ram, rf_alu_p0)         # delayed signal into ALU
    dp.route_bus(bus_ipb, rf_alu_p0)         # input sample into ALU
    dp.route_bus(bus_alu, rf_alu_p0)         # chained ALU op (unary port)
    dp.route_bus(bus_alu, rf_alu_p1)         # accumulator feedback
    dp.route_bus(bus_ram, rf_alu_p1)         # delayed signal into ALU
    dp.route_bus(bus_alu, rf_opb1)
    dp.route_bus(bus_alu, rf_opb2)
    return dp


def audio_core(ram_size: int = 128, rom_size: int = 64,
               rf_scale: int = 1, program_size: int = 128) -> CoreSpec:
    """The complete audio core of section 7 (figure 8).

    The controller is "a stripped version of the controller presented
    in figure 4 as there are no conditional instructions at all".
    """
    return CoreSpec(
        name="audio",
        datapath=audio_datapath(ram_size=ram_size, rom_size=rom_size,
                                rf_scale=rf_scale),
        controller=ControllerSpec(
            stack_depth=2,
            n_flags=0,
            supports_conditionals=False,
            supports_loops=True,
            program_size=program_size,
        ),
        class_defs=list(AUDIO_CLASS_TABLE_9),
        instruction_types=list(AUDIO_INSTRUCTION_TYPES),
    )


# ---------------------------------------------------------------------------
# A smaller filter core (FIR / LMS examples)
# ---------------------------------------------------------------------------

def fir_datapath(ram_size: int = 256) -> Datapath:
    """A filter core without a coefficient ROM.

    Coefficients are program constants routed straight into the
    multiplier; the ACU additionally supports ``inca`` (post-increment
    addressing) for walking delay lines inside hardware loops.
    """
    dp = Datapath("fir")

    ram = dp.add_opu("ram", OpuKind.RAM, [
        Operation("read", arity=1, reads_memory=True),
        Operation("write", arity=2, writes_memory=True),
    ], memory_size=ram_size)
    mult = dp.add_opu("mult", OpuKind.MULT, [
        Operation("mult", arity=2, commutative=True),
    ])
    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("sub", arity=2),
        Operation("add_clip", arity=2, commutative=True),
        Operation("pass", arity=1),
        Operation("pass_clip", arity=1),
    ])
    acu = dp.add_opu("acu", OpuKind.ACU, [
        Operation("addmod", arity=2),
        Operation("inca", arity=1),
    ])
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])

    rf_ram_addr = dp.add_register_file("rf_ram_addr", 4)
    rf_ram_data = dp.add_register_file("rf_ram_data", 4)
    rf_mult_data = dp.add_register_file("rf_mult_data", 4)
    rf_mult_coef = dp.add_register_file("rf_mult_coef", 4)
    rf_alu_p0 = dp.add_register_file("rf_alu_p0", 6)
    rf_alu_p1 = dp.add_register_file("rf_alu_p1", 6)
    rf_acu = dp.add_register_file("rf_acu", 4)
    rf_opb = dp.add_register_file("rf_opb", 2)

    dp.connect_port(ram, 0, rf_ram_addr)
    dp.connect_port(ram, 1, rf_ram_data)
    dp.connect_port(mult, 0, rf_mult_data)
    dp.connect_port(mult, 1, rf_mult_coef)
    dp.connect_port(alu, 0, rf_alu_p0)
    dp.connect_port(alu, 1, rf_alu_p1)
    dp.connect_port(acu, 0, rf_acu)
    dp.make_immediate_port(acu, 1)
    dp.make_immediate_port(prg, 0)
    dp.connect_port("opb", 0, rf_opb)

    bus_ram = dp.attach_bus(ram)
    bus_mult = dp.attach_bus(mult)
    bus_alu = dp.attach_bus(alu)
    bus_acu = dp.attach_bus(acu)
    bus_prg = dp.attach_bus(prg)
    bus_ipb = dp.attach_bus(ipb)

    dp.route_bus(bus_acu, rf_ram_addr)
    dp.route_bus(bus_acu, rf_acu)
    dp.route_bus(bus_ipb, rf_ram_data)
    dp.route_bus(bus_alu, rf_ram_data)
    dp.route_bus(bus_mult, rf_ram_data)
    dp.route_bus(bus_ram, rf_mult_data)
    dp.route_bus(bus_alu, rf_mult_data)
    dp.route_bus(bus_ipb, rf_mult_data)
    dp.route_bus(bus_prg, rf_mult_coef)
    dp.route_bus(bus_mult, rf_alu_p0)
    dp.route_bus(bus_ram, rf_alu_p0)
    dp.route_bus(bus_ipb, rf_alu_p0)
    dp.route_bus(bus_alu, rf_alu_p0)
    dp.route_bus(bus_alu, rf_alu_p1)
    dp.route_bus(bus_ram, rf_alu_p1)
    dp.route_bus(bus_prg, rf_alu_p1)
    dp.route_bus(bus_alu, rf_opb)
    return dp


FIR_CLASS_TABLE: list[ClassDef] = [
    ClassDef("A", "ipb", ("read",)),
    ClassDef("B", "opb", ("write",)),
    ClassDef("D", "acu", ("addmod", "inca")),
    ClassDef("X", "ram", ("read", "write")),
    ClassDef("G", "mult", ("mult",)),
    ClassDef("Y", "alu", ("add", "sub", "add_clip", "pass", "pass_clip")),
    ClassDef("M", "prg_c", ("const",)),
]

#: IO is exclusive on the FIR core too (one IO field in the word), and
#: the program-constant field is shared between the coefficient path
#: and the ALU path, so M appears in every type.
FIR_INSTRUCTION_TYPES: list[frozenset[str]] = [
    frozenset({"A", "D", "X", "G", "Y", "M"}),
    frozenset({"B", "D", "X", "G", "Y", "M"}),
]


def fir_core(ram_size: int = 256) -> CoreSpec:
    return CoreSpec(
        name="fir",
        datapath=fir_datapath(ram_size=ram_size),
        controller=ControllerSpec(
            stack_depth=4,
            n_flags=0,
            supports_conditionals=False,
            supports_loops=True,
            program_size=256,
        ),
        class_defs=list(FIR_CLASS_TABLE),
        instruction_types=list(FIR_INSTRUCTION_TYPES),
    )


# ---------------------------------------------------------------------------
# A register-only teaching core
# ---------------------------------------------------------------------------

def tiny_datapath() -> Datapath:
    """The smallest style-conforming datapath: ALU + constants + IO."""
    dp = Datapath("tiny")

    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("sub", arity=2),
        Operation("pass", arity=1),
    ])
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])

    rf_p0 = dp.add_register_file("rf_alu_p0", 4)
    rf_p1 = dp.add_register_file("rf_alu_p1", 4)
    rf_opb = dp.add_register_file("rf_opb", 2)

    dp.connect_port(alu, 0, rf_p0)
    dp.connect_port(alu, 1, rf_p1)
    dp.make_immediate_port(prg, 0)
    dp.connect_port("opb", 0, rf_opb)

    bus_alu = dp.attach_bus(alu)
    bus_prg = dp.attach_bus(prg)
    bus_ipb = dp.attach_bus(ipb)

    dp.route_bus(bus_ipb, rf_p0)
    dp.route_bus(bus_alu, rf_p0)
    dp.route_bus(bus_prg, rf_p1)
    dp.route_bus(bus_alu, rf_p1)
    dp.route_bus(bus_alu, rf_opb)
    dp.route_bus(bus_ipb, rf_opb)
    return dp


TINY_CLASS_TABLE: list[ClassDef] = [
    ClassDef("A", "ipb", ("read",)),
    ClassDef("B", "opb", ("write",)),
    ClassDef("Y", "alu", ("add", "sub", "pass")),
    ClassDef("M", "prg_c", ("const",)),
]

TINY_INSTRUCTION_TYPES: list[frozenset[str]] = [
    frozenset({"A", "Y", "M"}),
    frozenset({"B", "Y", "M"}),
]


def tiny_core() -> CoreSpec:
    return CoreSpec(
        name="tiny",
        datapath=tiny_datapath(),
        controller=ControllerSpec(
            stack_depth=2,
            n_flags=0,
            supports_conditionals=False,
            supports_loops=True,
            program_size=64,
        ),
        class_defs=list(TINY_CLASS_TABLE),
        instruction_types=list(TINY_INSTRUCTION_TYPES),
    )
