"""Architectural style-rule checking (paper, sections 2 and 5).

"We define a target architectural style such that retargetable code
generation becomes possible.  This means that we define a set of rules
for the datapath, the controller and the instruction set."

The datapath rules encoded here are the ones the RT model relies on
(figure 2): every RT starts with operands from register files, runs one
operation on one OPU and ends in a destination register reached through
a buffer, a bus and an optional multiplexer.  A datapath violating them
cannot express its transfers as RTs, so we reject it before RT
generation instead of failing obscurely later.
"""

from __future__ import annotations

from ..errors import ArchitectureError
from .datapath import Datapath
from .opu import OpuKind


def validate_datapath(dp: Datapath) -> list[str]:
    """Check the style rules; raise on violation, return warnings.

    Raises
    ------
    ArchitectureError
        If a rule is violated (message lists every violation).

    Returns
    -------
    list of str
        Non-fatal warnings, e.g. register files nothing can write.
    """
    errors: list[str] = []
    warnings: list[str] = []

    if not dp.opus:
        errors.append("datapath has no OPUs")

    for opu in dp.opus.values():
        arity = max(op.arity for op in opu.operations.values())
        for port in opu.ports[:arity]:
            if port.register_file is None and not port.accepts_immediate:
                errors.append(
                    f"port {port.name} is neither fed by a register file nor "
                    f"an immediate field (rule: all operands originate from "
                    f"register files)"
                )
        if opu.produces_result and opu.bus is None:
            errors.append(
                f"OPU {opu.name!r} produces results but drives no bus "
                f"(rule: results leave through a buffer onto a bus)"
            )
        if opu.produces_result and opu.bus is not None and not opu.bus.sinks:
            warnings.append(
                f"bus {opu.bus.name!r} of OPU {opu.name!r} reaches no "
                f"register file; its results are unusable"
            )
        if opu.kind is OpuKind.OUTPUT and opu.bus is not None:
            errors.append(f"output port block {opu.name!r} must not drive a bus")
        if opu.kind is OpuKind.INPUT and any(
            p.register_file is not None for p in opu.ports
        ):
            errors.append(f"input port block {opu.name!r} must not read register files")

    for rf in dp.register_files.values():
        if not rf.readers:
            warnings.append(f"register file {rf.name!r} feeds no OPU port")
        if not rf.writers:
            warnings.append(f"register file {rf.name!r} is never written")

    for mux in dp.muxes.values():
        if len(mux.inputs) < 2:
            warnings.append(
                f"mux {mux.name!r} has {len(mux.inputs)} input(s); a mux in "
                f"front of a single writer is redundant"
            )
        if len(set(b.name for b in mux.inputs)) != len(mux.inputs):
            errors.append(f"mux {mux.name!r} has duplicate bus inputs")

    for bus in dp.buses.values():
        if bus.driver is None:
            errors.append(f"bus {bus.name!r} has no driving OPU")

    if errors:
        raise ArchitectureError(
            "datapath style violations:\n  - " + "\n  - ".join(errors)
        )
    return warnings
