"""Architectural style-rule checking (paper, sections 2 and 5).

"We define a target architectural style such that retargetable code
generation becomes possible.  This means that we define a set of rules
for the datapath, the controller and the instruction set."

The datapath rules are the ones the RT model relies on (figure 2):
every RT starts with operands from register files, runs one operation
on one OPU and ends in a destination register reached through a buffer,
a bus and an optional multiplexer.  A datapath violating them cannot
express its transfers as RTs, so we reject it before RT generation
instead of failing obscurely later.

The rules themselves live in :func:`repro.analyze.verify_datapath`
and report through the shared :class:`repro.analyze.Finding` schema
(severity, ``arch.*`` code, location) — the same schema ``repro
check`` uses.  :func:`validate_datapath` remains as the historical
entry point: it raises on error findings and returns the warnings as
bare strings.  New code should prefer :func:`datapath_findings`.
"""

from __future__ import annotations

from ..errors import ArchitectureError
from .datapath import Datapath


def datapath_findings(dp: Datapath) -> list:
    """Check the style rules, returning structured findings.

    Returns
    -------
    list of :class:`repro.analyze.Finding`
        Error findings mark datapaths that cannot express RTs; warning
        findings mark dead structure (e.g. a register file nothing
        writes).
    """
    # Imported lazily: repro.analyze's verifiers import the arch
    # package, which imports this module while initializing.
    from ..analyze.verifiers import verify_datapath

    return verify_datapath(dp)


def validate_datapath(dp: Datapath) -> list[str]:
    """Legacy wrapper over :func:`datapath_findings`; raise on errors,
    return warnings as bare strings.

    Deprecated spelling (kept working, no warning emitted: core
    construction calls it on every ``CoreSpec``): new code should use
    :func:`datapath_findings` and get severities, codes and locations
    instead of parsing message strings.

    Raises
    ------
    ArchitectureError
        If a rule is violated (message lists every violation).

    Returns
    -------
    list of str
        Non-fatal warnings, e.g. register files nothing can write.
    """
    findings = datapath_findings(dp)
    errors = [f.message for f in findings if f.is_error]
    if errors:
        raise ArchitectureError(
            "datapath style violations:\n  - " + "\n  - ".join(errors)
        )
    return [f.message for f in findings if not f.is_error]
