"""Content-addressed on-disk artifact store (the persistent cache layer).

The in-memory :class:`~repro.pipeline.session.StageCache` makes
re-compiles inside one process nearly free, but a compiler that is
re-run constantly while a core design is iterated pays the full cold
path on every new process.  :class:`DiskCache` closes that gap: a
SHA-256 content fingerprint maps to one file holding a *versioned
serialization* of the cached object, so a second process (or a second
machine sharing the directory) restores stage artifacts instead of
recomputing them.

Design constraints, in order:

* **A bad entry is a miss, never a crash.**  Truncated files, foreign
  bytes, stale pickles, concurrent half-writes — every read failure is
  absorbed, counted on :attr:`DiskCacheStats.corrupt`, and the entry is
  dropped so it cannot fail twice.
* **Versioned.**  Every entry carries the envelope format version, the
  pipeline version (:data:`~repro.pipeline.artifacts.PIPELINE_VERSION`)
  and a per-artifact-type schema (``artifact name -> version`` from
  :data:`~repro.pipeline.artifacts.ARTIFACT_VERSIONS`).  Any skew is a
  miss (:attr:`DiskCacheStats.version_skips`), so a cache written by an
  older checkout can never serve artifacts a newer pipeline would
  misread.
* **Atomic.**  Entries are written to a temporary file in the target
  directory and published with :func:`os.replace`; concurrent writers
  on one cache directory race benignly (last write wins, readers see
  either a complete entry or none).
* **Bounded.**  ``max_bytes`` caps the store; eviction removes the
  least-recently-used entries (reads refresh an entry's mtime).

Entry layout on disk (``<dir>/objects/<aa>/<fingerprint>.rpdc``)::

    MAGIC 'RPDC' | header length (4 bytes LE) | header JSON | payload

where the header records the versions above plus the payload's SHA-256,
and the payload is a pickle of the cached object.  Pickle is safe here
because the cache directory is the user's own (the same trust domain as
the source being compiled); the digest guards against corruption, not
against an adversary.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..obs import current_telemetry
from .artifacts import PIPELINE_VERSION

#: Bump when the on-disk envelope itself changes shape.
FORMAT_VERSION = 1

_MAGIC = b"RPDC"
_SUFFIX = ".rpdc"
_HEADER_LIMIT = 1 << 20  # a sane bound; a bigger claim means corruption


class CacheEntryError(Exception):
    """Internal: an entry cannot be used (corrupt or truncated)."""


class CacheVersionError(CacheEntryError):
    """Internal: an entry is intact but was written by a different
    pipeline/format/schema version."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def serialize(obj: Any, schema: dict[str, int] | None = None) -> bytes:
    """Wrap ``obj`` in the versioned envelope described above."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "format": FORMAT_VERSION,
            "pipeline": PIPELINE_VERSION,
            "schema": schema or {},
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return _MAGIC + len(header).to_bytes(4, "little") + header + payload


def deserialize(blob: bytes, expected_schema: dict[str, int] | None = None,
                any_schema: bool = False) -> Any:
    """Unwrap an envelope; raise :class:`CacheEntryError` on any defect.

    ``expected_schema`` maps artifact-type name to the version the
    *current* code writes; the entry is usable when every type it
    actually contains matches (an entry never has to contain every
    known type — a partial compile stores a prefix).  ``any_schema``
    skips that per-artifact comparison (format/pipeline skew still
    raises) — the integrity pass of :meth:`DiskCache.verify` asks
    "can this entry ever be served", not "by my artifact versions".
    """
    if blob[:4] != _MAGIC:
        raise CacheEntryError("bad magic")
    if len(blob) < 8:
        raise CacheEntryError("truncated header length")
    header_len = int.from_bytes(blob[4:8], "little")
    if header_len > _HEADER_LIMIT or len(blob) < 8 + header_len:
        raise CacheEntryError("truncated header")
    try:
        header = json.loads(blob[8:8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CacheEntryError(f"unreadable header: {exc}") from None
    if not isinstance(header, dict):
        raise CacheEntryError(f"header is {type(header).__name__}, not object")
    if header.get("format") != FORMAT_VERSION:
        raise CacheVersionError(f"format {header.get('format')!r}")
    if header.get("pipeline") != PIPELINE_VERSION:
        raise CacheVersionError(f"pipeline {header.get('pipeline')!r}")
    stored_schema = header.get("schema") or {}
    if not isinstance(stored_schema, dict):
        raise CacheEntryError("schema is not an object")
    if not any_schema:
        expected = expected_schema or {}
        for name, version in stored_schema.items():
            if expected.get(name) != version:
                raise CacheVersionError(f"artifact {name!r} v{version}")
    payload = blob[8 + header_len:]
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise CacheEntryError("payload digest mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickling defect is a miss
        raise CacheEntryError(f"unpicklable payload: {exc}") from None


def deserialize_envelope_only(blob: bytes) -> None:
    """Integrity-check an envelope without pinning an artifact schema.

    Raises :class:`CacheEntryError` on corruption (bad magic, truncated
    header, digest mismatch, unpicklable payload) and
    :class:`CacheVersionError` on format/pipeline skew — exactly the
    split a backend's :meth:`~DiskCache.verify` reports.
    """
    deserialize(blob, expected_schema=None, any_schema=True)


@dataclass
class VerifyReport:
    """The outcome of a backend integrity pass (``repro cache verify``).

    ``ok`` entries deserialized cleanly; ``corrupt`` ones could not be
    read back (and were dropped); ``version_skew`` entries are intact
    but written by a different pipeline/format version (dropped too —
    the current code can never serve them).
    """

    checked: int = 0
    ok: int = 0
    corrupt: int = 0
    version_skew: int = 0
    #: fingerprints of the dropped entries, for the admin report
    dropped: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every entry read back."""
        return self.checked == self.ok

    def to_dict(self) -> dict[str, Any]:
        return {
            "checked": self.checked,
            "ok": self.ok,
            "clean": self.clean,
            "corrupt": self.corrupt,
            "version_skew": self.version_skew,
            "dropped": list(self.dropped),
        }


@dataclass
class DiskCacheStats:
    """Counters of one :class:`DiskCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: entries dropped because they could not be read back
    corrupt: int = 0
    #: intact entries skipped because of format/pipeline/schema skew
    version_skips: int = 0
    #: stores abandoned because the directory was unwritable/full
    write_errors: int = 0


class DiskCache:
    """SHA-256 fingerprint → versioned serialized object, on disk.

    The generic persistence layer: :class:`.session.StageCache` stores
    cumulative artifact snapshots under stage keys, and
    :class:`repro.arch.explore.ExploreCache` stores evaluated sweep
    candidates — both through this one store, distinguished by their
    fingerprint namespaces and their schemas.

    Safe to share one directory between concurrent processes; see the
    module docstring for the guarantees.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_bytes: int = 256 * 1024 * 1024):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        self.objects = self.root / "objects"
        self.max_bytes = max_bytes
        self.stats = DiskCacheStats()
        self._lock = threading.Lock()
        #: One structured warning per cache instance: the first
        #: abandoned store emits a ``diskcache.write_error`` telemetry
        #: event; later ones only bump the counters (a persistently
        #: unwritable directory would otherwise flood the event log).
        self._write_error_reported = False
        #: running size guess; None until the first put scans the store.
        #: Only gates *when* the real (scanning) eviction runs — drift
        #: from concurrent processes cannot over- or under-delete.
        self._size_estimate: int | None = None

    # -- paths ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The entry file a fingerprint maps to (existing or not)."""
        return self.objects / key[:2] / f"{key}{_SUFFIX}"

    def _entries(self) -> list[Path]:
        if not self.objects.is_dir():
            return []
        return [p for p in self.objects.glob(f"*/*{_SUFFIX}") if p.is_file()]

    def __len__(self) -> int:
        return len(self._entries())

    def __bool__(self) -> bool:
        """Always ``True``: an *empty* cache is still a cache.

        Without this, ``__len__`` makes a fresh cache falsy, and code
        like ``cache or DiskCache()`` silently replaces a configured
        empty cache — the PR-4 ``--refine`` bug class.  Explicit
        ``is None`` tests are still the idiom; this makes the
        truthiness shortcut safe too.
        """
        return True

    def keys(self) -> list[str]:
        """Every fingerprint currently stored (sorted)."""
        return sorted(path.stem for path in self._entries())

    def size_bytes(self) -> int:
        """Total bytes currently stored (best effort under concurrency)."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    # -- get / put -----------------------------------------------------

    def get(self, key: str, schema: dict[str, int] | None = None) -> Any:
        """The object stored under ``key``, or ``None`` on any miss."""
        path = self.path_for(key)
        obs = current_telemetry()
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            obs.count("diskcache.miss")
            return None
        try:
            obj = deserialize(blob, schema)
        except CacheVersionError:
            with self._lock:
                self.stats.version_skips += 1
                self.stats.misses += 1
            obs.count("diskcache.version_skip")
            obs.count("diskcache.miss")
            self._drop(path)
            return None
        except CacheEntryError:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            obs.count("diskcache.corrupt")
            obs.count("diskcache.miss")
            self._drop(path)
            return None
        try:
            os.utime(path)  # LRU recency for eviction
        except OSError:
            pass
        with self._lock:
            self.stats.hits += 1
        obs.count("diskcache.hit")
        return obj

    def put(self, key: str, obj: Any,
            schema: dict[str, int] | None = None) -> None:
        """Atomically publish ``obj`` under ``key`` and enforce the
        size bound.

        Write failures (unwritable directory, full disk) degrade to an
        uncached compile — counted on ``stats.write_errors``, never
        raised: a broken cache must not break the compiler.  The first
        failure per cache additionally emits a structured
        ``diskcache.write_error`` telemetry event naming the path and
        the error, so a silently-degraded cache is visible in
        ``--timings``/``--trace`` output.
        """
        path = self.path_for(key)
        tmp = None
        try:
            blob = serialize(obj, schema)
            path.parent.mkdir(parents=True, exist_ok=True)
            # A same-key overwrite replaces the old entry's bytes: the
            # running estimate must only grow by the *delta*, or
            # repeated re-stores of the same keys inflate it past the
            # bound and trigger needless full-scan eviction passes.
            try:
                old_size = path.stat().st_size
            except OSError:
                old_size = 0
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except Exception as exc:  # noqa: BLE001 — OSError *or* pickling failure
            if tmp is not None:
                self._drop(Path(tmp))
            with self._lock:
                self.stats.write_errors += 1
                first = not self._write_error_reported
                self._write_error_reported = True
            obs = current_telemetry()
            obs.count("diskcache.write_error")
            if first:
                obs.event("diskcache.write_error",
                          level="warning",
                          path=str(path),
                          error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self.stats.stores += 1
            if self._size_estimate is None:
                self._size_estimate = self.size_bytes()
            else:
                self._size_estimate += len(blob) - old_size
            over_bound = self._size_estimate > self.max_bytes
        current_telemetry().count("diskcache.store")
        if over_bound:
            self._evict()

    def clear(self) -> int:
        """Delete every entry (the directory itself is kept); returns
        the number of entries removed."""
        removed = 0
        for path in self._entries():
            self._drop(path)
            removed += 1
        with self._lock:
            self._size_estimate = 0
        return removed

    # -- admin (the ``repro cache`` verb and the serve endpoints) ------

    def delete(self, key: str) -> bool:
        """Remove one entry; True when it existed."""
        path = self.path_for(key)
        existed = path.is_file()
        self._drop(path)
        return existed

    def gc(self, max_bytes: int | None = None, *,
           min_age: float = 0.0, pinned: Iterable[str] = ()) -> int:
        """Bound the store to ``max_bytes`` (default: the configured
        bound), least-recently-used first; returns entries removed.

        ``min_age`` protects entries younger than that many seconds —
        the in-flight guard: a compile currently writing its stage
        snapshots keeps them until it finishes, so an admin ``gc``
        racing live traffic cannot evict artifacts a running job is
        about to read back.  ``pinned`` names fingerprints that are
        never removed regardless of age (a server pins the stage keys
        of queued/running jobs).
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        keep = set(pinned)
        now = time.time()
        stamped = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        removed = 0
        obs = current_telemetry()
        for mtime, size, path in sorted(stamped):
            if total <= bound:
                break
            if path.stem in keep or now - mtime < min_age:
                continue
            self._drop(path)
            with self._lock:
                self.stats.evictions += 1
            obs.count("diskcache.eviction")
            removed += 1
            total -= size
        with self._lock:
            self._size_estimate = total
        if removed:
            obs.count("cache.gc_removed", removed)
        return removed

    def verify(self) -> VerifyReport:
        """Read back every entry; drop (and report) the unusable ones.

        Corrupt entries can never be served; version-skewed ones can
        never be served *by this checkout* — both are removed so the
        store holds only entries a compile could actually restore.
        """
        report = VerifyReport()
        obs = current_telemetry()
        for path in sorted(self._entries()):
            report.checked += 1
            try:
                deserialize_envelope_only(path.read_bytes())
            except CacheVersionError:
                report.version_skew += 1
                report.dropped.append(path.stem)
                self._drop(path)
                obs.count("cache.verify_failures")
                continue
            except (CacheEntryError, OSError):
                report.corrupt += 1
                report.dropped.append(path.stem)
                self._drop(path)
                obs.count("cache.verify_failures")
                continue
            report.ok += 1
        return report

    # -- eviction ------------------------------------------------------

    def _drop(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        This is the scanning pass — :meth:`put` only triggers it when
        the running size estimate crosses the bound, so steady-state
        fills stay O(1) per store.  Competing evictors racing on the
        same directory simply find some files already gone; that is
        fine.
        """
        stamped = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        for _, size, path in sorted(stamped):
            if total <= self.max_bytes:
                break
            self._drop(path)
            with self._lock:
                self.stats.evictions += 1
            current_telemetry().count("diskcache.eviction")
            total -= size
        with self._lock:
            self._size_estimate = total
