"""The compiled-program artifact bundle (the classic result object)."""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.library import CoreSpec
from ..core.artificial import ConflictModel
from ..encode.assembler import EncodedProgram
from ..lang.dfg import Dfg
from ..opt import OptReport
from ..rtgen.program import RTProgram
from ..sched.dependence import DependenceGraph
from ..sched.regalloc import Allocation
from ..sched.schedule import Schedule
from ..sim.machine import run_program


@dataclass
class CompiledProgram:
    """Every artifact of one compilation, ready for inspection.

    ``dfg`` is the graph actually lowered (post-optimizer);
    ``source_dfg`` preserves the application as written and
    ``opt_report`` records what the optimizer did between the two.
    """

    core: CoreSpec
    dfg: Dfg
    rt_program: RTProgram
    conflict_model: ConflictModel
    dependence_graph: DependenceGraph
    schedule: Schedule
    allocation: Allocation
    binary: EncodedProgram
    source_dfg: Dfg | None = None
    opt_report: OptReport | None = None

    @property
    def n_cycles(self) -> int:
        """Time-loop length in instructions (the paper's figure of merit)."""
        return self.schedule.length

    def run(self, inputs: dict[str, list[int]],
            n_frames: int | None = None) -> dict[str, list[int]]:
        """Execute the binary on the cycle-accurate core simulator."""
        return run_program(self.binary, inputs, n_frames)
