"""The compiled-program artifact bundle (the classic result object)."""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.library import CoreSpec
from ..core.artificial import ConflictModel
from ..encode.assembler import EncodedProgram
from ..lang.dfg import Dfg
from ..opt import OptReport
from ..rtgen.program import RTProgram
from ..sched.dependence import DependenceGraph
from ..sched.regalloc import Allocation
from ..sched.schedule import Schedule
from ..sim.batch import run_batch
from ..sim.machine import run_program


@dataclass
class CompiledProgram:
    """Every artifact of one compilation, ready for inspection.

    ``dfg`` is the graph actually lowered (post-optimizer);
    ``source_dfg`` preserves the application as written and
    ``opt_report`` records what the optimizer did between the two.
    """

    core: CoreSpec
    dfg: Dfg
    rt_program: RTProgram
    conflict_model: ConflictModel
    dependence_graph: DependenceGraph
    schedule: Schedule
    allocation: Allocation
    binary: EncodedProgram
    source_dfg: Dfg | None = None
    opt_report: OptReport | None = None

    @property
    def n_cycles(self) -> int:
        """Time-loop length in instructions (the paper's figure of merit)."""
        return self.schedule.length

    def run(self, inputs: dict[str, list[int]],
            n_frames: int | None = None,
            engine: str = "auto") -> dict[str, list[int]]:
        """Execute the binary on the cycle-accurate core simulator.

        ``engine`` picks the execution tier (see
        :func:`repro.sim.batch.resolve_engine`): ``"scalar"`` is the
        per-word oracle loop, everything else goes through the
        decoded-plan engines — bit-identical, much faster.
        """
        if engine == "scalar":
            return run_program(self.binary, inputs, n_frames)
        return run_batch(self.binary, [inputs], n_frames, engine=engine)[0]

    def run_batch(self, inputs: list[dict[str, list[int]]],
                  n_frames: int | None = None,
                  engine: str = "auto") -> list[dict[str, list[int]]]:
        """Execute the binary over a batch of stimulus lanes (one input
        dict per lane, one output dict per lane, see
        :func:`repro.sim.batch.run_batch`)."""
        return run_batch(self.binary, inputs, n_frames, engine=engine)
