"""Pluggable artifact-store backends behind the stage cache.

PR 3 hard-wired persistence to one implementation: a content-addressed
directory of versioned envelopes (:class:`~.diskcache.DiskCache`).
The compile *keys* were machine-independent from the start — SHA-256
content fingerprints of source, core and options — so nothing about
the cache's contract actually requires a local directory.  This module
names that contract (:class:`CacheBackend`) so the persistent tier is
a slot, not a class:

* :class:`~.diskcache.DiskCache` — the local-directory backend, still
  the default;
* :class:`MemoryBackend` — an in-process store holding the *serialized
  envelopes*, byte-for-byte what the disk backend would write.  Tests
  (and a server run with ``cache="memory:name"``) get the full
  store/restore/corruption/version semantics without touching disk;
* remote backends (object store, a peer ``repro serve`` instance)
  implement the same five methods and slot in unchanged — the keys
  already travel.

:func:`open_backend` maps a *backend spec* string to an instance:
``None`` or a path open a :class:`DiskCache` (honoring the usual
``$REPRO_CACHE_DIR`` default), ``memory:`` / ``memory:<name>`` open a
process-shared named :class:`MemoryBackend` — two toolchains naming
the same memory backend share artifacts exactly like two processes
sharing a cache directory.  Every surface that accepted a cache
directory (``CompileOptions.cache_dir``, ``--cache-dir``, the explore
memo, the serve subsystem, the ``repro cache`` admin verb) accepts a
backend spec through this one function.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Protocol, runtime_checkable

from ..obs import current_telemetry
from .diskcache import (
    CacheEntryError,
    CacheVersionError,
    DiskCache,
    DiskCacheStats,
    VerifyReport,
    deserialize,
    deserialize_envelope_only,
    serialize,
)


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`~.session.StageCache` (and the explore memo, and
    the cache admin verb) require of a persistent tier.

    ``get``/``put`` move whole objects under content-fingerprint keys;
    a backend owns its serialization and must treat every unreadable
    entry as a miss, never an error.  The admin surface (``keys``,
    ``stats``, ``gc``, ``verify``, ``clear``) is what ``repro cache``
    drives; see :class:`DiskCache` for the reference semantics.
    """

    def get(self, key: str, schema: dict[str, int] | None = None) -> Any:
        """The object stored under ``key``, or ``None`` on any miss."""
        ...

    def put(self, key: str, obj: Any,
            schema: dict[str, int] | None = None) -> None:
        """Publish ``obj`` under ``key`` (best effort, never raises)."""
        ...

    def keys(self) -> list[str]:
        """Every fingerprint currently stored."""
        ...

    def size_bytes(self) -> int:
        """Total serialized bytes currently stored."""
        ...

    def gc(self, max_bytes: int | None = None, *,
           min_age: float = 0.0, pinned: Iterable[str] = ()) -> int:
        """Bound the store; return the number of entries removed."""
        ...

    def verify(self) -> "VerifyReport":
        """Read back every entry; report (and drop) the unusable ones."""
        ...

    def clear(self) -> int:
        """Delete every entry; return how many were removed."""
        ...


class MemoryBackend:
    """An in-process :class:`CacheBackend` holding serialized envelopes.

    Entries round-trip through the exact
    :func:`~.diskcache.serialize`/:func:`~.diskcache.deserialize`
    envelope the disk backend writes, so version skew, payload-digest
    checks and corruption handling behave identically — only the bytes
    live in a dict instead of files.  Thread-safe; share one instance
    (or one ``memory:<name>`` spec) to share artifacts the way
    processes share a cache directory.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024,
                 name: str | None = None):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self.name = name
        #: key -> (envelope bytes, monotonic last-use stamp)
        self._entries: dict[str, tuple[bytes, float]] = {}
        self._lock = threading.Lock()
        self.stats = DiskCacheStats()

    def __bool__(self) -> bool:
        # An *empty* backend is still a backend (see StageCache.__bool__).
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"MemoryBackend({label} {len(self)} entries)"

    # -- get / put -----------------------------------------------------

    def get(self, key: str, schema: dict[str, int] | None = None) -> Any:
        obs = current_telemetry()
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            with self._lock:
                self.stats.misses += 1
            obs.count("diskcache.miss")
            return None
        blob, _ = entry
        try:
            obj = deserialize(blob, schema)
        except CacheVersionError:
            with self._lock:
                self.stats.version_skips += 1
                self.stats.misses += 1
                self._entries.pop(key, None)
            obs.count("diskcache.version_skip")
            obs.count("diskcache.miss")
            return None
        except CacheEntryError:
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
                self._entries.pop(key, None)
            obs.count("diskcache.corrupt")
            obs.count("diskcache.miss")
            return None
        with self._lock:
            self._entries[key] = (blob, time.monotonic())
            self.stats.hits += 1
        obs.count("diskcache.hit")
        return obj

    def put(self, key: str, obj: Any,
            schema: dict[str, int] | None = None) -> None:
        try:
            blob = serialize(obj, schema)
        except Exception:  # noqa: BLE001 — unpicklable object: degrade
            with self._lock:
                self.stats.write_errors += 1
            current_telemetry().count("diskcache.write_error")
            return
        with self._lock:
            self._entries[key] = (blob, time.monotonic())
            self.stats.stores += 1
            over = self._size_locked() > self.max_bytes
        current_telemetry().count("diskcache.store")
        if over:
            self.gc(self.max_bytes)

    # -- admin ---------------------------------------------------------

    def _size_locked(self) -> int:
        return sum(len(blob) for blob, _ in self._entries.values())

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def delete(self, key: str) -> bool:
        """Remove one entry; True when it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def size_bytes(self) -> int:
        with self._lock:
            return self._size_locked()

    def gc(self, max_bytes: int | None = None, *,
           min_age: float = 0.0, pinned: Iterable[str] = ()) -> int:
        bound = self.max_bytes if max_bytes is None else max_bytes
        keep = set(pinned)
        cutoff = time.monotonic() - min_age
        removed = 0
        obs = current_telemetry()
        with self._lock:
            total = self._size_locked()
            by_age = sorted(self._entries.items(), key=lambda kv: kv[1][1])
            for key, (blob, stamp) in by_age:
                if total <= bound:
                    break
                if key in keep or stamp > cutoff:
                    continue
                del self._entries[key]
                self.stats.evictions += 1
                removed += 1
                total -= len(blob)
        for _ in range(removed):
            obs.count("diskcache.eviction")
        if removed:
            obs.count("cache.gc_removed", removed)
        return removed

    def verify(self) -> VerifyReport:
        report = VerifyReport()
        obs = current_telemetry()
        with self._lock:
            snapshot = list(self._entries.items())
        for key, (blob, _) in snapshot:
            report.checked += 1
            try:
                # Version skew is *expected* across checkouts, so probe
                # the envelope without pinning a schema: verify asks
                # "can this entry ever be served", not "by my version".
                deserialize_envelope_only(blob)
            except CacheVersionError:
                report.version_skew += 1
                report.dropped.append(key)
                with self._lock:
                    self._entries.pop(key, None)
                obs.count("cache.verify_failures")
                continue
            except CacheEntryError:
                report.corrupt += 1
                report.dropped.append(key)
                with self._lock:
                    self._entries.pop(key, None)
                obs.count("cache.verify_failures")
                continue
            report.ok += 1
        return report

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
        return removed


# ----------------------------------------------------------------------
# Backend specs

#: Process-wide named memory backends (``memory:<name>`` specs).  Two
#: toolchains opening the same name share one store, the way two
#: processes share one cache directory.
_MEMORY_BACKENDS: dict[str, MemoryBackend] = {}
_MEMORY_LOCK = threading.Lock()

MEMORY_SCHEME = "memory:"


def open_backend(spec: str | None,
                 max_bytes: int | None = None) -> CacheBackend:
    """Open the backend a spec string names.

    ``None`` or a directory path → :class:`DiskCache` (the path
    defaulting per :func:`~.diskcache.default_cache_dir`);
    ``memory:`` / ``memory:<name>`` → the process-shared named
    :class:`MemoryBackend` (the bare scheme names ``"default"``).
    """
    if spec is not None and spec.startswith(MEMORY_SCHEME):
        name = spec[len(MEMORY_SCHEME):] or "default"
        with _MEMORY_LOCK:
            backend = _MEMORY_BACKENDS.get(name)
            if backend is None:
                backend = MemoryBackend(name=name, **(
                    {"max_bytes": max_bytes} if max_bytes else {}))
                _MEMORY_BACKENDS[name] = backend
        return backend
    if max_bytes:
        return DiskCache(spec, max_bytes=max_bytes)
    return DiskCache(spec)


def backend_stats(backend: CacheBackend) -> dict[str, Any]:
    """The admin-facing stats dict of any backend (``repro cache
    stats``, the server's ``/v1/cache/stats``)."""
    stats = getattr(backend, "stats", None)
    payload: dict[str, Any] = {
        "backend": type(backend).__name__,
        "entries": len(backend.keys()),
        "bytes": backend.size_bytes(),
        "max_bytes": getattr(backend, "max_bytes", None),
    }
    location = getattr(backend, "root", None) or getattr(
        backend, "name", None)
    if location is not None:
        payload["location"] = str(location)
    if stats is not None:
        payload["session"] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "evictions": stats.evictions,
            "corrupt": stats.corrupt,
            "version_skips": stats.version_skips,
            "write_errors": stats.write_errors,
        }
    return payload
