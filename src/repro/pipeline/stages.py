"""First-class compilation stages.

The monolithic ``compile_application`` body, split along the paper's
phase boundaries (figure 1b) into eight composable stages::

    parse -> optimize -> rtgen -> merge -> impose -> schedule
          -> regalloc -> assemble

Each stage declares the artifacts it produces and a :meth:`Stage.key`
— the content fingerprint of everything that determines its output.
The :class:`~repro.pipeline.session.CompileSession` driver runs the
chain, consults the cache keyed on these fingerprints, and can stop
after any stage (partial compilation) or resume from a cached prefix.

Keys are chained: every stage's key folds in the key of the stage
before it, so a hit at stage *k* certifies the entire prefix.  Option
sensitivity is expressed through
:meth:`repro.options.CompileOptions.fingerprint` *subsets* — each
stage folds in the digest of exactly the option fields it reads, so a
changed budget invalidates scheduling but not the lowered prefix.
Where a stage's output is insensitive to part of the request, the key
omits it — e.g. the optimize stage keys on the core only at ``-O2``
(the sole level with a core-aware pass), so one optimized DFG is
shared across candidate cores during design-space exploration.
"""

from __future__ import annotations

from collections import Counter

from ..core.artificial import impose_instruction_set
from ..core.instruction_set import InstructionSet
from ..core.merge import apply_merges, merged_register_file_sizes
from ..core.rtclass import ClassTable
from ..encode.assembler import assemble
from ..lang.parser import parse_source
from ..obs import current_telemetry
from ..opt import optimize
from ..rtgen.generator import generate_rts
from ..sched.dependence import build_dependence_graph
from ..sched.list_scheduler import list_schedule
from ..sched.regalloc import allocate_registers
from ..sched.schedule import Schedule
from .artifacts import (
    PIPELINE_VERSION,
    CompileState,
    dfg_fingerprint,
    fingerprint,
    merges_key,
)


#: Process-wide tally of actual stage-body executions (cache restores
#: do not count).  The cross-process cache tests assert a warm compile
#: leaves every counter untouched.
STAGE_EXECUTIONS: Counter[str] = Counter()


class Stage:
    """One pipeline phase: a name, the artifacts it provides, a content
    key and a body operating on the shared :class:`CompileState`."""

    name: str = "?"
    provides: tuple[str, ...] = ()

    def key(self, state: CompileState) -> str:
        """Content fingerprint of everything that determines this
        stage's output on ``state`` (chained onto the upstream key)."""
        raise NotImplementedError

    def run(self, state: CompileState) -> None:
        """Produce this stage's artifacts into ``state.artifacts``."""
        raise NotImplementedError

    def execute(self, state: CompileState) -> None:
        """Run the stage body, counting the execution.

        The session driver calls this (never :meth:`run` directly) so
        :data:`STAGE_EXECUTIONS` stays an exact record of work done.
        When telemetry is live, the body runs inside a
        ``stage:<name>`` span tagged ``cache_source="executed"``.  A
        caching driver already has that span open (it covers the cache
        lookup too); execute then joins it — tagging instead of
        nesting a duplicate — while the uncached path opens its own.
        """
        STAGE_EXECUTIONS[self.name] += 1
        obs = current_telemetry()
        if not obs.enabled:
            self.run(state)
            return
        current = obs.current_span
        if current is not None and current.name == f"stage:{self.name}":
            current.tag(cache_source="executed")
            self.run(state)
            return
        key = state.fingerprints.get(self.name)
        with obs.span(f"stage:{self.name}", stage=self.name,
                      fingerprint=key[:16] if key else None,
                      cache_source="executed"):
            self.run(state)

    def _chain(self, state: CompileState, *parts) -> str:
        """Fingerprint ``parts`` chained onto the previous stage's key."""
        upstream = state.fingerprints.get(state.completed[-1], "") \
            if state.completed else ""
        return fingerprint(self.name, PIPELINE_VERSION, upstream, *parts)


class ParseStage(Stage):
    """Source text → DFG (pass-through when handed a DFG directly)."""

    name = "parse"
    provides = ("source_dfg",)

    def key(self, state: CompileState) -> str:
        application = state.request.application
        if isinstance(application, str):
            return fingerprint(self.name, PIPELINE_VERSION, "text", application)
        return fingerprint(self.name, PIPELINE_VERSION, "dfg",
                           dfg_fingerprint(application))

    def run(self, state: CompileState) -> None:
        application = state.request.application
        state.artifacts["source_dfg"] = (
            parse_source(application) if isinstance(application, str)
            else application
        )


class OptimizeStage(Stage):
    """Machine-independent DFG optimization (:mod:`repro.opt`).

    Content-keyed on the *parsed graph*, not on the source text, so
    equivalent sources converge here.  The core enters the key only at
    ``-O2`` — the one level with a core-aware pass (strength reduction);
    below that, only the core's fixed-point format matters.
    """

    name = "optimize"
    provides = ("dfg", "opt_report")

    def key(self, state: CompileState) -> str:
        request = state.request
        core = request.core
        core_part = (state.core_fp() if request.options.opt >= 2
                     else ("fmt", core.data_width, core.frac_bits))
        return fingerprint(
            self.name, PIPELINE_VERSION,
            dfg_fingerprint(state.artifacts["source_dfg"]),
            request.options.fingerprint("opt"), core_part,
        )

    def run(self, state: CompileState) -> None:
        request = state.request
        dfg, report = optimize(state.artifacts["source_dfg"],
                               core=request.core, level=request.options.opt)
        state.artifacts["dfg"] = dfg
        state.artifacts["opt_report"] = report


class RtGenStage(Stage):
    """Lower the (optimized) DFG onto the core's datapath (step 1)."""

    name = "rtgen"
    provides = ("base_program",)

    def key(self, state: CompileState) -> str:
        binding = state.request.io_binding
        return fingerprint(
            self.name, PIPELINE_VERSION,
            dfg_fingerprint(state.artifacts["dfg"]),
            state.core_fp(),
            sorted(binding.items()) if binding else None,
        )

    def run(self, state: CompileState) -> None:
        request = state.request
        state.artifacts["base_program"] = generate_rts(
            state.artifacts["dfg"], request.core, request.io_binding
        )


class MergeStage(Stage):
    """Apply register-file/bus merges as RT modifications (step 2a).

    ``base_program`` (the unmerged lowering) is kept for binary
    generation on the physical core; ``program`` is what the scheduler
    sees.  Without merges the two are the same object.
    """

    name = "merge"
    provides = ("program", "base_rts", "capacities", "merged")

    def key(self, state: CompileState) -> str:
        return self._chain(state, merges_key(state.request.merges))

    def run(self, state: CompileState) -> None:
        merges = state.request.merges
        base = state.artifacts["base_program"]
        state.artifacts["base_rts"] = list(base.rts)
        merged = merges is not None and not merges.is_empty
        state.artifacts["merged"] = merged
        if merged:
            state.artifacts["capacities"] = \
                merged_register_file_sizes(base, merges)
            state.artifacts["program"] = apply_merges(base, merges)
        else:
            state.artifacts["capacities"] = None
            state.artifacts["program"] = base


class ImposeStage(Stage):
    """Impose the instruction set via artificial resources (step 2b)."""

    name = "impose"
    provides = ("conflict_model",)

    def key(self, state: CompileState) -> str:
        return self._chain(state, state.request.options.fingerprint("cover"))

    def run(self, state: CompileState) -> None:
        request = state.request
        core = request.core
        program = state.artifacts["program"]
        table = ClassTable.from_core(core)
        instruction_set = InstructionSet.from_desired(
            table.names, core.instruction_types
        )
        model = impose_instruction_set(
            program.rts, table, instruction_set,
            cover_algorithm=request.options.cover,
        )
        program.rts = model.rts
        state.artifacts["conflict_model"] = model


class ScheduleStage(Stage):
    """Pack RTs into VLIW instructions within the cycle budget."""

    name = "schedule"
    provides = ("dependence_graph", "schedule")

    def key(self, state: CompileState) -> str:
        options = state.request.options
        return self._chain(state,
                           options.fingerprint("budget", "restarts", "seed"))

    def run(self, state: CompileState) -> None:
        options = state.request.options
        graph = build_dependence_graph(state.artifacts["program"])
        schedule = list_schedule(graph, budget=options.budget,
                                 restarts=options.restarts,
                                 seed=options.seed)
        schedule.validate(graph)
        state.artifacts["dependence_graph"] = graph
        state.artifacts["schedule"] = schedule


class RegallocStage(Stage):
    """Bind virtual values to physical registers along the schedule."""

    name = "regalloc"
    provides = ("allocation",)

    def key(self, state: CompileState) -> str:
        return self._chain(state)

    def run(self, state: CompileState) -> None:
        state.artifacts["allocation"] = allocate_registers(
            state.artifacts["program"], state.artifacts["schedule"],
            state.artifacts["capacities"],
        )


class AssembleStage(Stage):
    """Emit binary microcode.

    For a merged core the schedule was computed against the *merged*
    resources; merging only restricts parallelism, so the cycles are
    transplanted onto the original RTs and encoding targets the
    physical (unmerged) datapath — exactly the monolith's behavior.
    """

    name = "assemble"
    provides = ("binary",)

    def key(self, state: CompileState) -> str:
        return self._chain(
            state, state.request.options.fingerprint("mode", "repeat"))

    def run(self, state: CompileState) -> None:
        options = state.request.options
        a = state.artifacts
        schedule = a["schedule"]
        if a["merged"]:
            base_program = a["base_program"]
            encode_cycles = {
                base: schedule.cycle_of[scheduled]
                for base, scheduled in zip(a["base_rts"], a["program"].rts)
            }
            encode_schedule = Schedule(
                cycle_of=encode_cycles, length=schedule.length,
                budget=schedule.budget,
            )
            encode_allocation = allocate_registers(base_program,
                                                   encode_schedule)
            a["binary"] = assemble(base_program, encode_schedule,
                                   encode_allocation, mode=options.mode,
                                   repeat_count=options.repeat)
        else:
            a["binary"] = assemble(a["program"], schedule, a["allocation"],
                                   mode=options.mode,
                                   repeat_count=options.repeat)


#: The canonical stage chain, in execution order.
PIPELINE_STAGES: tuple[Stage, ...] = (
    ParseStage(),
    OptimizeStage(),
    RtGenStage(),
    MergeStage(),
    ImposeStage(),
    ScheduleStage(),
    RegallocStage(),
    AssembleStage(),
)

STAGE_NAMES: tuple[str, ...] = tuple(s.name for s in PIPELINE_STAGES)
