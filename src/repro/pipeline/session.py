"""The stage driver: sessions, caching, partial compiles, resumption.

A :class:`CompileSession` runs the stage chain of
:mod:`repro.pipeline.stages` over a :class:`CompileState`.  With a
:class:`StageCache` attached, the session snapshots the cumulative
artifact state after every stage under that stage's content key; a
later compile whose chain reaches the same key restores the snapshot
and skips straight past it — so an identical re-compile costs eight
cache lookups, and a compile that differs only late in the chain
(say a new cycle budget) reuses everything up to the schedule stage.

Snapshots are deep copies taken at store *and* restore time, so
downstream stages (which mutate RT programs in place, exactly like the
old monolith) can never poison a cached prefix.  The immutable request
inputs — the core above all — are shared across snapshots rather than
copied.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..arch.library import CoreSpec
from ..arch.merge import MergeSpec
from ..lang.dfg import Dfg
from .artifacts import CompileRequest, CompileState
from .stages import PIPELINE_STAGES, STAGE_NAMES


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`StageCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


class StageCache:
    """LRU cache of per-stage artifact snapshots, keyed by fingerprint.

    Thread-safe: explore workers running in threads may share one
    cache.  Entries are cumulative artifact dicts; both :meth:`put` and
    :meth:`get` deep-copy so cached state is immutable from the
    outside.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, shared: dict[int, Any]) -> dict[str, Any] | None:
        """Return a private copy of the snapshot under ``key``, or None.

        ``shared`` is a deepcopy memo pre-seeded with the objects the
        copy must alias rather than duplicate (the core spec).
        """
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return copy.deepcopy(snapshot, dict(shared))

    def put(self, key: str, artifacts: dict[str, Any],
            shared: dict[int, Any]) -> None:
        snapshot = copy.deepcopy(artifacts, dict(shared))
        with self._lock:
            self._entries[key] = snapshot
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Sentinel: "create a private cache for this session".
_DEFAULT_CACHE = object()


class CompileSession:
    """Drives the stage chain; the composable face of the compiler.

    ``CompileSession()`` owns a private :class:`StageCache`; pass
    ``cache=None`` to disable caching (the classic
    :func:`compile_application` path — no snapshot cost), or share one
    :class:`StageCache` between sessions to reuse artifacts across
    them.
    """

    def __init__(self, cache: StageCache | None | object = _DEFAULT_CACHE):
        self.cache: StageCache | None = (
            StageCache() if cache is _DEFAULT_CACHE else cache  # type: ignore[assignment]
        )
        self.stages = PIPELINE_STAGES

    # ------------------------------------------------------------------

    def run(
        self,
        application: Dfg | str,
        core: CoreSpec,
        budget: int | None = None,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
        cover_algorithm: str = "greedy",
        restarts: int = 0,
        seed: int = 0,
        mode: str = "loop",
        repeat_count: int = 1,
        opt_level: int = 1,
        stop_after: str | None = None,
    ) -> CompileState:
        """Run the pipeline, optionally stopping after ``stop_after``.

        Returns the :class:`CompileState` with every artifact produced
        so far.  A later :meth:`run` with the same session resumes from
        the cached prefix (each already-computed stage is a cache hit).
        """
        if stop_after is not None and stop_after not in STAGE_NAMES:
            raise ValueError(
                f"unknown stage {stop_after!r}: expected one of "
                f"{', '.join(STAGE_NAMES)}"
            )
        request = CompileRequest(
            application=application, core=core, budget=budget,
            io_binding=io_binding, merges=merges,
            cover_algorithm=cover_algorithm, restarts=restarts, seed=seed,
            mode=mode, repeat_count=repeat_count, opt_level=opt_level,
        )
        state = CompileState(request=request)
        shared = {id(core): core}
        for stage in self.stages:
            if self.cache is None:
                stage.run(state)
                state.completed.append(stage.name)
            else:
                key = stage.key(state)
                restored = self.cache.get(key, shared)
                if restored is not None:
                    state.artifacts = restored
                    state.cache_hits[stage.name] = True
                else:
                    stage.run(state)
                    state.cache_hits[stage.name] = False
                state.fingerprints[stage.name] = key
                state.completed.append(stage.name)
                if restored is None:
                    self.cache.put(key, state.artifacts, shared)
            if stage.name == stop_after:
                break
        return state

    def compile(self, application: Dfg | str, core: CoreSpec, **options):
        """Run the full pipeline and return a :class:`CompiledProgram`."""
        return self.run(application, core, **options).as_compiled()
