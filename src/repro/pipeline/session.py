"""Stage caching plus the legacy session wrappers.

The stage-chain *driver* lives on :class:`repro.toolchain.Toolchain`
(the typed facade binding a core + options + cache); this module keeps
the cache machinery it drives — :class:`StageCache`, its statistics,
the batch result types — and the pre-Toolchain session classes
(:class:`CompileSession`, :class:`BatchSession`) as thin deprecated
wrappers that funnel their untyped keyword options through
:class:`~repro.options.CompileOptions`.

With a :class:`StageCache` attached, the driver snapshots the
cumulative artifact state after every stage under that stage's content
key; a later compile whose chain reaches the same key restores the
snapshot and skips straight past it — so an identical re-compile costs
eight cache lookups, and a compile that differs only late in the chain
(say a new cycle budget) reuses everything up to the schedule stage.

The memory cache can be layered over a
:class:`~repro.pipeline.diskcache.DiskCache`: misses fall through to
the on-disk store, hydrate the memory tier, and stores are written
through — which is what makes a *second process* (or a warm design
sweep the next morning) start from the artifacts instead of the source.
:class:`BatchSession` compiles a whole application set through one
shared cache so identical prefixes are computed once across the batch.

Snapshots are deep copies taken at store *and* restore time, so
downstream stages (which mutate RT programs in place, exactly like the
old monolith) can never poison a cached prefix.  The immutable request
inputs — the core above all — are shared across snapshots rather than
copied.
"""

from __future__ import annotations

import copy
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from ..arch.library import CoreSpec
from ..arch.merge import MergeSpec
from ..lang.dfg import Dfg
from ..obs import current_telemetry
from ..options import CompileOptions
from .artifacts import CompileState, artifact_schema
from .backend import CacheBackend
from .diskcache import DiskCache
from .stages import PIPELINE_STAGES


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`StageCache`.

    ``hits`` counts restores from either tier; ``disk_hits`` the subset
    served by the on-disk layer (and hydrated into memory).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0


class StageCache:
    """LRU cache of per-stage artifact snapshots, keyed by fingerprint.

    Thread-safe: explore workers running in threads may share one
    cache.  Entries are cumulative artifact dicts; both :meth:`put` and
    :meth:`get` deep-copy so cached state is immutable from the
    outside.

    ``disk`` layers a persistent backend underneath — any
    :class:`~repro.pipeline.backend.CacheBackend` (the local-directory
    :class:`DiskCache`, the in-process
    :class:`~repro.pipeline.backend.MemoryBackend`, a remote store): a
    memory miss consults the store (a backend hit hydrates the memory
    tier), and every store is written through, so the artifacts survive
    the process.

    Entries are deliberately *cumulative* (each stage's snapshot holds
    the whole prefix), so any prefix restores with exactly one read —
    the price is that a cold compile writes each upstream artifact into
    every downstream entry.  Reads dominate writes in the workloads
    this serves (re-compile loops, warm sweeps), so the trade goes to
    read speed; store-one-delta-per-stage is the alternative if write
    volume ever matters.
    """

    def __init__(self, max_entries: int = 256,
                 disk: "CacheBackend | None" = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.disk = disk
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        """Always ``True``: an *empty* cache is still a cache.

        ``__len__`` alone makes a fresh cache falsy, so shortcuts like
        ``cache or StageCache()`` silently dropped a configured empty
        cache (the PR-4 ``--refine`` bug).  Pinned by regression test;
        ``is None`` remains the way to ask "is caching disabled".
        """
        return True

    def get(self, key: str, shared: dict[int, Any]) -> dict[str, Any] | None:
        """Return a private copy of the snapshot under ``key``, or None.

        ``shared`` is a deepcopy memo pre-seeded with the objects the
        copy must alias rather than duplicate (the core spec).
        """
        snapshot, _ = self.get_entry(key, shared)
        return snapshot

    def get_entry(
        self, key: str, shared: dict[int, Any],
    ) -> tuple[dict[str, Any] | None, str | None]:
        """Like :meth:`get`, also naming the serving tier.

        Returns ``(snapshot, "memory" | "disk")`` on a hit and
        ``(None, None)`` on a miss.
        """
        with self._lock:
            snapshot = self._entries.get(key)
            if snapshot is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if snapshot is not None:
            current_telemetry().count("stagecache.hit")
            # Deep-copy outside the lock: snapshots are never mutated
            # once stored, and the copy is the expensive part.
            return copy.deepcopy(snapshot, dict(shared)), "memory"
        if self.disk is not None:
            from .artifacts import ARTIFACT_VERSIONS

            snapshot = self.disk.get(key, schema=ARTIFACT_VERSIONS)
            if snapshot is not None:
                snapshot = _realias_core(snapshot, shared)
                with self._lock:
                    self._insert(key, snapshot)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                obs = current_telemetry()
                obs.count("stagecache.hit")
                obs.count("stagecache.disk_hit")
                return copy.deepcopy(snapshot, dict(shared)), "disk"
        with self._lock:
            self.stats.misses += 1
        current_telemetry().count("stagecache.miss")
        return None, None

    def put(self, key: str, artifacts: dict[str, Any],
            shared: dict[int, Any]) -> None:
        """Snapshot ``artifacts`` under ``key`` (and write through to
        disk when layered).  ``shared`` as in :meth:`get`."""
        snapshot = copy.deepcopy(artifacts, dict(shared))
        with self._lock:
            self._insert(key, snapshot)
            self.stats.stores += 1
        current_telemetry().count("stagecache.store")
        if self.disk is not None:
            self.disk.put(key, snapshot, schema=artifact_schema(snapshot))

    def _insert(self, key: str, snapshot: dict[str, Any]) -> None:
        """Install an entry and enforce the LRU bound (lock held)."""
        self._entries[key] = snapshot
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            current_telemetry().count("stagecache.eviction")

    def clear(self) -> None:
        """Drop the memory tier (the disk store is untouched)."""
        with self._lock:
            self._entries.clear()


def _realias_core(snapshot: dict[str, Any],
                  shared: dict[int, Any]) -> dict[str, Any]:
    """Swap the core unpickled inside a disk-loaded snapshot for the
    session's canonical core object.

    Content equality is guaranteed (core-dependent stage keys include
    the core fingerprint); restoring *identity* makes the shared-core
    deepcopy memo apply to every later memory-tier hit and keeps
    restored artifacts referencing ``request.core`` itself.  Snapshots
    from the core-independent prefix embed no core and pass through.
    """
    program = snapshot.get("base_program")
    if program is None or len(shared) != 1:
        return snapshot
    [canonical] = shared.values()
    embedded = getattr(program, "core", None)
    if embedded is None or embedded is canonical:
        return snapshot
    return copy.deepcopy(snapshot, {id(embedded): canonical})


class _DefaultCache:
    """Sentinel *type* for "create a private cache for this session".

    A real class (not a bare ``object()``) so the ``cache`` parameters
    of :class:`repro.toolchain.Toolchain` and the session wrappers can
    be annotated ``StageCache | None | _DefaultCache`` — type checkers
    then see honest signatures instead of an ``object`` escape hatch.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<default cache>"


#: The one sentinel instance: "create a private cache for this session".
_DEFAULT_CACHE = _DefaultCache()


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=3,
    )


class CompileSession:
    """Deprecated pre-``Toolchain`` driver (one session, many cores).

    .. deprecated::
        Bind the core once with :class:`repro.toolchain.Toolchain`
        instead; a session is now a thin wrapper that builds a
        toolchain per call around its shared cache.  The untyped
        ``**options`` keywords (``opt_level=``, ``cover_algorithm=``,
        ...) are funneled through
        :class:`~repro.options.CompileOptions`; new code should pass
        ``options=CompileOptions(...)`` — or better, a toolchain.

    ``CompileSession()`` owns a private :class:`StageCache`; pass
    ``cache=None`` to disable caching, or share one :class:`StageCache`
    between sessions to reuse artifacts across them.
    """

    def __init__(
        self, cache: StageCache | None | _DefaultCache = _DEFAULT_CACHE,
    ):
        _warn_deprecated("CompileSession", "repro.Toolchain")
        self.cache: StageCache | None = (
            StageCache() if isinstance(cache, _DefaultCache) else cache
        )
        self.stages = PIPELINE_STAGES

    # ------------------------------------------------------------------

    def run(
        self,
        application: Dfg | str,
        core: CoreSpec,
        budget: int | None = None,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
        cover_algorithm: str = "greedy",
        restarts: int = 0,
        seed: int = 0,
        mode: str = "loop",
        repeat_count: int = 1,
        opt_level: int = 1,
        stop_after: str | None = None,
        *,
        options: CompileOptions | None = None,
    ) -> CompileState:
        """Run the pipeline, optionally stopping after ``stop_after``.

        Returns the :class:`CompileState` with every artifact produced
        so far.  A later :meth:`run` with the same session resumes from
        the cached prefix (each already-computed stage is a cache hit).
        """
        from ..toolchain import Toolchain

        options = CompileOptions.merge_legacy(
            options, budget=budget, cover_algorithm=cover_algorithm,
            restarts=restarts, seed=seed, mode=mode,
            repeat_count=repeat_count, opt_level=opt_level,
            stop_after=stop_after,
        )
        return Toolchain(core, options, cache=self.cache).run_pipeline(
            application, io_binding=io_binding, merges=merges,
        )

    def compile(self, application: Dfg | str, core: CoreSpec, **options):
        """Run the full pipeline and return a :class:`CompiledProgram`."""
        return self.run(application, core, **options).as_compiled()


# ----------------------------------------------------------------------
# Batched multi-application sessions


@dataclass
class BatchEntry:
    """One application's outcome within a :class:`BatchResult`.

    Exactly one of ``state`` / ``error`` is set; ``seconds`` is the
    wall-clock cost of this application inside the batch.
    """

    name: str
    state: CompileState | None = None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when this application compiled."""
        return self.state is not None


@dataclass
class BatchResult:
    """The outcome of one batched compile
    (:meth:`repro.toolchain.Toolchain.compile_many`)."""

    entries: list[BatchEntry] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every application in the batch compiled."""
        return all(entry.ok for entry in self.entries)

    @property
    def states(self) -> list[CompileState]:
        """The states of the applications that compiled, batch order."""
        return [e.state for e in self.entries if e.state is not None]

    def stage_counts(self) -> dict[str, int]:
        """``{"executed": n, "memory": n, "disk": n}`` over the batch."""
        counts = {"executed": 0, "memory": 0, "disk": 0}
        for entry in self.entries:
            if entry.state is None:
                continue
            for tier, n in entry.state.cache_counts().items():
                counts[tier] += n
        return counts


class BatchSession:
    """Deprecated pre-``Toolchain`` batch driver.

    .. deprecated::
        Use :meth:`repro.toolchain.Toolchain.compile_many` — the
        toolchain already binds the core and the shared (optionally
        disk-backed) cache this class existed to carry.
    """

    def __init__(self, cache: StageCache | None | _DefaultCache = _DEFAULT_CACHE,
                 disk: DiskCache | None = None):
        _warn_deprecated("BatchSession", "repro.Toolchain.compile_many")
        if isinstance(cache, _DefaultCache):
            cache = StageCache(disk=disk)
        elif disk is not None:
            raise ValueError("pass either a prebuilt cache or disk=, not both")
        self.cache: StageCache | None = cache

    def compile_many(
        self,
        applications: list[Dfg | str],
        core: CoreSpec,
        names: list[str] | None = None,
        stop_after: str | None = None,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
        **options,
    ) -> BatchResult:
        """Run every application through one shared cache.

        ``names`` labels the batch entries (defaults to the DFG names /
        ``app[i]`` for text sources); ``options`` are the usual legacy
        keywords, applied to every application — as are ``io_binding``
        and ``merges``, which this wrapper always accepted.
        """
        from ..toolchain import Toolchain

        compile_options = CompileOptions.from_legacy_kwargs(
            stop_after=stop_after, **options)
        toolchain = Toolchain(core, compile_options, cache=self.cache)
        return toolchain.compile_many(applications, names=names,
                                      io_binding=io_binding, merges=merges)
