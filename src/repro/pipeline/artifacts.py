"""Typed artifacts of the staged pipeline and their content fingerprints.

Every stage of :mod:`repro.pipeline` consumes and produces named
artifacts held in a :class:`CompileState`.  Each stage is keyed by a
*content fingerprint* — a SHA-256 digest over a canonical rendering of
the inputs that determine its output: the DFG as parsed/optimized, the
core description, and the request options the stage actually reads.
Two compilations that reach a stage with identical fingerprints are
guaranteed to produce identical artifacts, which is what makes the
stage cache (:class:`repro.pipeline.session.StageCache`) sound.

Fingerprints are deliberately *content*-keyed rather than
identity-keyed: a source text and the DFG it parses to converge on the
same optimize-stage key, and two cores that serialize identically share
every core-dependent stage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..arch.library import CoreSpec
from ..arch.merge import MergeSpec
from ..arch.serialize import core_to_dict
from ..lang.dfg import Dfg
from ..options import CompileOptions

#: Bump when a stage's semantics change, so stale caches cannot serve
#: artifacts computed by an older pipeline.
#: v2: stage keys chain CompileOptions subset fingerprints instead of
#: raw request attributes.
PIPELINE_VERSION = 2

#: Serialization version of every artifact type the stages produce.
#: Bump an entry whenever the artifact's Python shape changes (fields
#: added/renamed, invariants altered) so on-disk entries written by an
#: older checkout invalidate instead of deserializing into nonsense.
#: :mod:`repro.pipeline.diskcache` embeds these in every entry.
ARTIFACT_VERSIONS: dict[str, int] = {
    "source_dfg": 1,        # parse: repro.lang.dfg.Dfg
    "dfg": 1,               # optimize: repro.lang.dfg.Dfg
    "opt_report": 1,        # optimize: repro.opt.OptReport
    "base_program": 1,      # rtgen: repro.rtgen.program.RTProgram
    "program": 1,           # merge: repro.rtgen.program.RTProgram
    "base_rts": 1,          # merge: list[repro.rtgen.rt.RT]
    "capacities": 1,        # merge: dict[str, int] | None
    "merged": 1,            # merge: bool
    "conflict_model": 1,    # impose: repro.core.artificial.ConflictModel
    "dependence_graph": 1,  # schedule: repro.sched.dependence.DependenceGraph
    "schedule": 1,          # schedule: repro.sched.schedule.Schedule
    "allocation": 1,        # regalloc: repro.sched.regalloc.Allocation
    "binary": 1,            # assemble: repro.encode.assembler.EncodedProgram
}


def artifact_schema(artifacts: dict[str, Any]) -> dict[str, int]:
    """The ``name -> version`` schema of one artifact snapshot.

    Unknown names (a stage added without a version entry) are pinned at
    version 0 so they can never silently round-trip across checkouts
    that disagree about them.
    """
    return {name: ARTIFACT_VERSIONS.get(name, 0) for name in artifacts}


def fingerprint(*parts: Any) -> str:
    """SHA-256 digest of a canonical JSON rendering of ``parts``."""
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dfg_fingerprint(dfg: Dfg) -> str:
    """Content key of a data-flow graph.

    Covers everything downstream stages can observe: node structure,
    parameter values, port lists, state windows and source labels.
    """
    return fingerprint(
        "dfg",
        dfg.name,
        [
            (n.id, n.kind.value, n.name, list(n.args), n.delay, n.label)
            for n in dfg.nodes
        ],
        sorted((k, repr(v)) for k, v in dfg.params.items()),
        list(dfg.inputs),
        list(dfg.outputs),
        sorted((s.name, s.depth) for s in dfg.states.values()),
    )


def core_fingerprint(core: CoreSpec) -> str:
    """Content key of a core: its full serialized description."""
    return fingerprint("core", core_to_dict(core))


def merges_key(merges: MergeSpec | None) -> list:
    """Canonical, fingerprintable rendering of a merge spec."""
    if merges is None or merges.is_empty:
        return []
    return [
        [(m.name, list(m.parts)) for m in merges.register_file_merges],
        [(m.name, list(m.parts)) for m in merges.bus_merges],
    ]


@dataclass(frozen=True)
class CompileRequest:
    """One compilation's full set of inputs, as handed to the driver.

    The application, the target core, the per-application wiring
    (``io_binding``, ``merges``) and one validated
    :class:`~repro.options.CompileOptions` — the request is what stages
    read their options from, and what the per-stage fingerprints are
    derived from.  The legacy flat attributes (``budget``,
    ``opt_level``, ...) are preserved as read-only views onto
    ``options``.
    """

    application: Dfg | str
    core: CoreSpec
    options: CompileOptions = field(default_factory=CompileOptions)
    io_binding: dict[str, str] | None = None
    merges: MergeSpec | None = None

    # Legacy views (the pre-CompileOptions attribute spelling).
    @property
    def budget(self) -> int | None:
        return self.options.budget

    @property
    def cover_algorithm(self) -> str:
        return self.options.cover

    @property
    def restarts(self) -> int:
        return self.options.restarts

    @property
    def seed(self) -> int:
        return self.options.seed

    @property
    def mode(self) -> str:
        return self.options.mode

    @property
    def repeat_count(self) -> int:
        return self.options.repeat

    @property
    def opt_level(self) -> int:
        return self.options.opt


@dataclass
class CompileState:
    """The artifacts and fingerprints of one (possibly partial) compile.

    ``artifacts`` maps artifact name → object; ``fingerprints`` maps
    stage name → the content key the stage ran (or was restored) under;
    ``completed`` lists stage names in execution order.  Artifact
    attribute access is provided for convenience::

        state = session.run(source, core, stop_after="schedule")
        state.schedule.length
    """

    request: CompileRequest
    artifacts: dict[str, Any] = field(default_factory=dict)
    fingerprints: dict[str, str] = field(default_factory=dict)
    completed: list[str] = field(default_factory=list)
    #: stage name -> True when the stage was restored from cache
    cache_hits: dict[str, bool] = field(default_factory=dict)
    #: stage name -> "memory" | "disk", for stages restored from cache
    cache_sources: dict[str, str] = field(default_factory=dict)
    _core_fp: str | None = field(default=None, repr=False)

    def __getattr__(self, name: str) -> Any:
        artifacts = self.__dict__.get("artifacts", {})
        if name in artifacts:
            return artifacts[name]
        raise AttributeError(
            f"compile state has no artifact {name!r} "
            f"(available: {sorted(artifacts)})"
        )

    def cache_counts(self) -> dict[str, int]:
        """``{"executed": n, "memory": n, "disk": n}`` over the stages
        this compile ran — the one tally the CLI summary line, the
        batch table and the batch JSON all derive from."""
        counts = {"executed": 0, "memory": 0, "disk": 0}
        for name, hit in self.cache_hits.items():
            if hit:
                counts[self.cache_sources[name]] += 1
            else:
                counts["executed"] += 1
        return counts

    def core_fp(self) -> str:
        """Memoized core fingerprint (several stages key on it)."""
        if self._core_fp is None:
            self._core_fp = core_fingerprint(self.request.core)
        return self._core_fp

    @property
    def is_complete(self) -> bool:
        """True when the chain ran to the end (a binary exists)."""
        return "binary" in self.artifacts

    def as_compiled(self):
        """Package the artifacts as the classic :class:`CompiledProgram`."""
        from .program import CompiledProgram

        if not self.is_complete:
            raise ValueError(
                f"compilation stopped after {self.completed[-1]!r}; "
                f"run the remaining stages before as_compiled()"
            )
        a = self.artifacts
        return CompiledProgram(
            core=self.request.core,
            dfg=a["dfg"],
            rt_program=a["program"],
            conflict_model=a["conflict_model"],
            dependence_graph=a["dependence_graph"],
            schedule=a["schedule"],
            allocation=a["allocation"],
            binary=a["binary"],
            source_dfg=a["source_dfg"],
            opt_report=a["opt_report"],
        )
