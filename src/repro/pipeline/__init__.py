"""The staged code generator: source → running microcode.

This is figure 1b end to end, with a machine-independent optimizer
layered in front, built as a *staged pipeline*:

0. **DFG optimization** (:mod:`repro.opt`) — constant folding, common
   subexpressions, algebraic identities, strength reduction and dead
   code removed from the data-flow graph (``-O0``/``-O1``/``-O2``,
   default ``-O1``).
1. **RT generation** (:mod:`repro.rtgen`) — lower the application's
   data-flow graph onto the core's datapath.
2. **RT modification** (:mod:`repro.core`) — merge register files and
   buses, then impose the instruction set by adding artificial conflict
   resources (sections 6.1-6.3).
3. **Scheduling & instruction encoding** (:mod:`repro.sched`,
   :mod:`repro.encode`) — pack RTs into VLIW instructions within the
   cycle budget, allocate registers, emit binary microcode.

Each phase is a first-class :class:`~repro.pipeline.stages.Stage`
consuming and producing typed artifacts with content fingerprints.
:class:`repro.toolchain.Toolchain` (the typed public facade) drives
the chain with per-stage caching, partial compilation
(``options.stop_after``) and resumption from a cached prefix.  The
pre-Toolchain entry points are kept as thin deprecated wrappers:
:func:`compile_application` (the classic one-shot call, still
byte-for-byte the classic behavior) plus :class:`CompileSession` and
:class:`BatchSession`.

Caching is two-tiered: the in-process LRU :class:`StageCache` can be
layered over a persistent, content-addressed
:class:`~repro.pipeline.diskcache.DiskCache`, so a second process (or
a warm design-space sweep) restores stage artifacts from disk instead
of recomputing them.  :class:`BatchSession` compiles a whole
application set through one shared cache.  See ``docs/architecture.md``
for the full walk-through.
"""

from __future__ import annotations

import warnings

from ..arch.library import CoreSpec
from ..arch.merge import MergeSpec
from ..lang.dfg import Dfg
from ..options import CompileOptions
from .artifacts import (
    ARTIFACT_VERSIONS,
    PIPELINE_VERSION,
    CompileRequest,
    CompileState,
    artifact_schema,
    core_fingerprint,
    dfg_fingerprint,
    fingerprint,
)
from .backend import (
    CacheBackend,
    MemoryBackend,
    backend_stats,
    open_backend,
)
from .diskcache import (
    DiskCache,
    DiskCacheStats,
    VerifyReport,
    default_cache_dir,
)
from .program import CompiledProgram
from .session import (
    BatchEntry,
    BatchResult,
    BatchSession,
    CacheStats,
    CompileSession,
    StageCache,
)
from .stages import PIPELINE_STAGES, STAGE_EXECUTIONS, STAGE_NAMES, Stage

__all__ = [
    "ARTIFACT_VERSIONS",
    "BatchEntry",
    "BatchResult",
    "BatchSession",
    "CacheBackend",
    "CacheStats",
    "CompileRequest",
    "CompileSession",
    "CompileState",
    "CompiledProgram",
    "DiskCache",
    "DiskCacheStats",
    "MemoryBackend",
    "VerifyReport",
    "backend_stats",
    "open_backend",
    "PIPELINE_STAGES",
    "PIPELINE_VERSION",
    "STAGE_EXECUTIONS",
    "STAGE_NAMES",
    "Stage",
    "StageCache",
    "artifact_schema",
    "compile_application",
    "core_fingerprint",
    "default_cache_dir",
    "dfg_fingerprint",
    "fingerprint",
]


def compile_application(
    application: Dfg | str,
    core: CoreSpec | str,
    budget: int | None = None,
    io_binding: dict[str, str] | None = None,
    merges: MergeSpec | None = None,
    cover_algorithm: str = "greedy",
    restarts: int = 0,
    seed: int = 0,
    mode: str = "loop",
    repeat_count: int = 1,
    opt_level: int = 1,
) -> CompiledProgram:
    """Compile an application (source text or DFG) onto a core.

    .. deprecated::
        Use ``repro.Toolchain(core, options).compile(application)`` —
        this wrapper funnels its keywords through
        :class:`~repro.options.CompileOptions` and compiles with
        caching disabled (one cold run of the stage chain, byte-for-
        byte the classic behavior).

    Parameters
    ----------
    budget:
        The user-specified time-loop cycle budget (section 2: "the
        cycle budget is specified by the user").  ``None`` compiles for
        minimum length.
    merges:
        Register-file/bus merges of the final core (applied as RT
        modifications, step 2a).
    cover_algorithm:
        Edge-clique-cover algorithm for the artificial resources.
    restarts:
        Extra list-scheduler attempts with jittered priorities.
    opt_level:
        Machine-independent optimization level (0, 1 or 2, see
        :mod:`repro.opt`).  ``0`` lowers the graph exactly as written.
    """
    from ..toolchain import Toolchain

    warnings.warn(
        "compile_application() is deprecated; use "
        "repro.Toolchain(core, options).compile(application) instead",
        DeprecationWarning, stacklevel=2,
    )
    options = CompileOptions.from_legacy_kwargs(
        budget=budget, cover_algorithm=cover_algorithm, restarts=restarts,
        seed=seed, mode=mode, repeat_count=repeat_count, opt_level=opt_level,
    )
    return Toolchain(core, options, cache=None).compile(
        application, io_binding=io_binding, merges=merges,
    )
