"""Observability: structured tracing, metrics and profiling hooks.

``repro.obs`` is the zero-dependency telemetry spine of the toolchain.
Every layer — the :class:`~repro.toolchain.Toolchain` driver, the
pipeline stages, both cache tiers, the scheduler/register-allocator/RT
generator and the design-space explorer — reports through one
process-wide :class:`Telemetry` registry:

* **Spans** are hierarchical wall-clock intervals with tags
  (:meth:`Telemetry.span` is a context manager; nesting follows the
  call stack, per thread).  A compile produces one ``compile`` root
  span with one ``stage:<name>`` child per pipeline stage, tagged with
  the stage name, its content fingerprint and the cache source that
  served it (``executed`` / ``memory`` / ``disk``).
* **Counters** are monotonically increasing named tallies
  (:meth:`Telemetry.count`); the canonical names live in
  :data:`COUNTERS` and are documented in ``docs/observability.md``
  (the doc-link checker keeps the two in sync).
* **Events** are timestamped structured records
  (:meth:`Telemetry.event`), delivered to registered callbacks as they
  happen — the explorer's per-candidate progress stream and the disk
  cache's one-shot write-error warning both travel this way.

The default registry is a *null* telemetry: disabled, it records
nothing, allocates nothing, and costs the instrumented hot paths one
attribute check.  Enable observability by installing a live registry::

    from repro.obs import Telemetry, use_telemetry

    obs = Telemetry()
    with use_telemetry(obs):
        toolchain.compile(source)
    print(obs.to_dict()["counters"])

or bind one to a toolchain — ``Toolchain("audio", telemetry=obs)`` —
which scopes it around every verb automatically.  Export with
:meth:`Telemetry.to_dict`, the human-readable
:func:`repro.report.timeline` renderer, or
:func:`chrome_trace`/:func:`write_chrome_trace` (the Chrome
``trace_event`` format, viewable in ``chrome://tracing`` or Perfetto).
:func:`profile_compile` drives repeated cold/warm compiles and reports
per-stage p50/p95 — the engine of the ``repro profile`` subcommand.
"""

from .core import (
    COUNTERS,
    NULL_SPAN,
    Span,
    Telemetry,
    current_telemetry,
    set_telemetry,
    use_telemetry,
)
from .profile import profile_compile, render_profile, write_profile
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "COUNTERS",
    "NULL_SPAN",
    "Span",
    "Telemetry",
    "chrome_trace",
    "current_telemetry",
    "profile_compile",
    "render_profile",
    "set_telemetry",
    "use_telemetry",
    "write_chrome_trace",
    "write_profile",
]
