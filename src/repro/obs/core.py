"""The tracing/metrics core: spans, counters, events, the registry.

Design constraints, in order:

* **Zero dependencies.**  Standard library only; importable everywhere
  (the disk cache and the scheduler both report through here).
* **Free when off.**  The process-wide default registry is disabled:
  :meth:`Telemetry.span` then returns one shared no-op span (no
  allocation), and :meth:`Telemetry.count`/:meth:`Telemetry.event`
  return after a single attribute check.  Instrumentation can stay in
  the hot paths permanently.
* **Thread-correct.**  The span stack is thread-local (spans nest
  along each thread's own call stack); counters and event lists are
  lock-guarded.  The *current registry* is process-global — scoping it
  with :func:`use_telemetry` from concurrent threads is the one thing
  this module does not arbitrate.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: Canonical counter names every instrumented layer emits, with their
#: meaning.  ``docs/observability.md`` documents this exact table and
#: ``tools/check_doc_links.py`` fails CI when the two drift apart.
COUNTERS: dict[str, str] = {
    "stagecache.hit": "stage snapshots restored from either memory tier "
                      "or disk",
    "stagecache.disk_hit": "subset of stagecache.hit served by the "
                           "persistent disk tier",
    "stagecache.miss": "stage lookups that fell through to execution",
    "stagecache.store": "stage snapshots written to the memory tier",
    "stagecache.eviction": "memory-tier LRU evictions",
    "diskcache.hit": "on-disk entries read back successfully",
    "diskcache.miss": "on-disk lookups that found no usable entry",
    "diskcache.store": "on-disk entries published atomically",
    "diskcache.eviction": "on-disk entries deleted by the LRU size bound",
    "diskcache.corrupt": "on-disk entries dropped because they could "
                         "not be read back",
    "diskcache.version_skip": "intact on-disk entries skipped for "
                              "format/pipeline/schema skew",
    "diskcache.write_error": "on-disk stores abandoned (unwritable "
                             "directory, full disk)",
    "sched.list.attempts": "list-scheduler passes over the attempt "
                           "ladder (margins, restarts)",
    "sched.list.tightenings": "budget-minimization re-runs after a "
                              "feasible schedule was found",
    "sched.regalloc.intervals": "value lifetime intervals bound to "
                                "physical registers",
    "sched.regalloc.overflows": "register-file overflows (allocation "
                                "failures reported to the caller)",
    "rtgen.values_routed": "DFG values route-planned onto the datapath",
    "rtgen.copies_inserted": "copy RTs inserted to relay values the "
                             "producer cannot reach directly",
    "merge.rts_rewritten": "RTs rewritten while applying register-file/"
                           "bus merges",
    "explore.candidates": "design-space candidates actually evaluated "
                          "(memo misses)",
    "explore.cache_hits": "candidates served from the ExploreCache memo",
    "sim.cycles": "machine cycles executed, summed over every simulated "
                  "lane",
    "sim.frames": "sample frames consumed, summed over every simulated "
                  "lane",
    "sim.batch_width": "stimulus/candidate lanes entering the simulator "
                       "(1 per scalar run)",
    "verify.checks": "stage-boundary verifier passes run by the pipeline "
                     "(verify=boundaries/strict)",
    "verify.findings": "diagnostics produced by the stage verifiers and "
                       "the machine-code lint",
    "fuzz.cases": "generated applications exercised by the fuzz harness",
    "fuzz.failures": "fuzz cases that mismatched, crashed or failed lint",
    "cache.gc_removed": "backend entries deleted by an admin gc pass "
                        "(repro cache gc, POST /v1/cache/gc)",
    "cache.verify_failures": "backend entries dropped by an integrity "
                             "pass (corrupt or version-skewed)",
    "serve.requests": "HTTP requests handled by the compile server",
    "serve.jobs": "compile jobs accepted (submit and batch)",
    "serve.jobs_completed": "jobs that finished with a compiled artifact",
    "serve.jobs_failed": "jobs that finished with a compile error",
    "serve.timeouts": "jobs cancelled by the per-job wall-clock timeout",
    "serve.rejections": "requests refused before queuing (queue full, "
                        "rate limited, malformed, unknown core)",
    "serve.claims": "queued jobs handed to pull-mode remote workers",
}


class _NullSpan:
    """The shared do-nothing span the disabled registry hands out.

    One process-wide instance — entering it allocates nothing, which is
    what keeps instrumented hot paths free when telemetry is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def tag(self, **tags: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<null span>"


#: The one disabled-path span instance.
NULL_SPAN = _NullSpan()


class Span:
    """One timed interval in the span tree.

    Use as a context manager (via :meth:`Telemetry.span`): entering
    stamps the monotonic start and links the span under the thread's
    current parent; exiting stamps the duration.  ``tags`` is a plain
    dict — add to it mid-flight with :meth:`tag` (e.g. the cache source
    a stage was served from, known only after the lookup).
    """

    __slots__ = ("name", "tags", "start", "duration", "children",
                 "thread_id", "_telemetry")

    def __init__(self, name: str, tags: dict[str, Any],
                 telemetry: "Telemetry"):
        self.name = name
        self.tags = tags
        self.start = 0.0
        self.duration = 0.0
        self.children: list[Span] = []
        self.thread_id = 0
        self._telemetry = telemetry

    def tag(self, **tags: Any) -> None:
        """Attach (or overwrite) tags on an open or closed span."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        self._telemetry._enter_span(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._telemetry._exit_span(self)
        return False

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able rendering (children recursive)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class Telemetry:
    """One observability registry: a span tree, counters, gauges and an
    event stream.

    ``Telemetry()`` is enabled; ``Telemetry(enabled=False)`` is the
    null registry — every recording method returns after one attribute
    check, and :meth:`span` returns the shared :data:`NULL_SPAN`
    (nothing is allocated).  The process-wide default is a null
    registry; install a live one with :func:`set_telemetry` /
    :func:`use_telemetry`, or hand it to
    ``Toolchain(..., telemetry=obs)``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: Completed + in-flight top-level spans, in start order.
        self.roots: list[Span] = []
        self.counters: Counter[str] = Counter()
        self.gauges: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self._callbacks: list[Callable[[dict[str, Any]], None]] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        #: Monotonic zero of this registry; span starts and event times
        #: are relative to it (what the Chrome trace uses as ts=0).
        self.epoch = time.perf_counter()

    @property
    def disabled(self) -> bool:
        """True for the null registry (nothing is recorded)."""
        return not self.enabled

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **tags: Any):
        """A new child span of the thread's current span (a context
        manager).  On the disabled registry this is the shared no-op
        span — the call allocates nothing."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tags, self)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter_span(self, span: Span) -> None:
        span.start = time.perf_counter() - self.epoch
        span.thread_id = threading.get_ident()
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _exit_span(self, span: Span) -> None:
        span.duration = time.perf_counter() - self.epoch - span.start
        stack = self._stack()
        # Exiting out of order (a span closed from a different frame)
        # unwinds to the matching entry rather than corrupting nesting.
        while stack and stack.pop() is not span:
            pass

    @property
    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def spans(self, name: str | None = None) -> list[Span]:
        """Every recorded span (depth-first over all roots), optionally
        filtered by exact name."""
        found: list[Span] = []
        for root in list(self.roots):
            for span in root.walk():
                if name is None or span.name == name:
                    found.append(span)
        return found

    # -- counters / gauges ---------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] += n

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value (no-op when
        disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    # -- events --------------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Record a structured event and deliver it to every registered
        callback (no-op when disabled).

        The record carries ``name``, a monotonic ``time`` relative to
        the registry epoch, and the given fields verbatim.  Callback
        exceptions propagate — a progress callback is caller code.
        """
        if not self.enabled:
            return
        record = {"name": name,
                  "time": time.perf_counter() - self.epoch, **fields}
        with self._lock:
            self.events.append(record)
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(record)

    def on_event(self, callback: Callable[[dict[str, Any]], None]):
        """Register a callback invoked with every event record (also a
        decorator).  Disabled registries accept but never call it."""
        with self._lock:
            self._callbacks.append(callback)
        return callback

    # -- export --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able rendering of everything recorded."""
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            events = [dict(e) for e in self.events]
        return {
            "spans": [root.to_dict() for root in list(self.roots)],
            "counters": counters,
            "gauges": gauges,
            "events": events,
        }

    def clear(self) -> None:
        """Drop everything recorded (the registry stays installed)."""
        with self._lock:
            self.roots.clear()
            self.counters.clear()
            self.gauges.clear()
            self.events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (f"Telemetry({state}, {len(self.roots)} roots, "
                f"{len(self.counters)} counters, "
                f"{len(self.events)} events)")


#: The null default: recording costs one attribute check, stores nothing.
_NULL = Telemetry(enabled=False)
_current: Telemetry = _NULL


def current_telemetry() -> Telemetry:
    """The process-wide registry instrumented code reports to."""
    return _current


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as the process-wide registry (``None``
    restores the null default).  Returns the previous registry."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else _NULL
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry | None):
    """Scope the process-wide registry to a ``with`` block.

    The previous registry is restored on exit, so nested scopes (a
    toolchain verb inside a CLI command) compose.
    """
    previous = set_telemetry(telemetry)
    try:
        yield current_telemetry()
    finally:
        set_telemetry(previous)
