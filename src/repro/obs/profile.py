"""Compile profiling: repeated cold/warm compiles, per-stage p50/p95.

The engine of the ``repro profile`` subcommand.  One profiled
application is compiled ``runs`` times **cold** (no cache — every stage
body executes) and ``runs`` times **warm** (one shared in-memory stage
cache, primed once — every stage restores from the memory tier), with
a live :class:`~repro.obs.core.Telemetry` collecting the per-stage
spans.  The result reports p50/p95/mean wall clock per stage and for
the whole compile, for both regimes — the compiler-side analog of the
paper's section-7 cycle-count tables, and the trajectory CI guards in
``BENCH_compile_profile.json`` (see
``tools/check_profile_regression.py``).

Imports of the toolchain are deferred to call time: ``repro.obs`` is
the bottom of the dependency stack (every layer reports through it),
so this module must not pull the pipeline in at import time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .core import Telemetry, use_telemetry


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def _summarize(samples: dict[str, list[float]]) -> dict[str, dict[str, Any]]:
    return {
        name: {
            "n": len(values),
            "p50": round(percentile(values, 50), 6),
            "p95": round(percentile(values, 95), 6),
            "mean": round(sum(values) / len(values), 6),
        }
        for name, values in samples.items()
    }


def _timed_compiles(toolchain, application, runs: int,
                    label: str) -> dict[str, list[float]]:
    """Run ``runs`` compiles, returning per-stage (and total) duration
    samples harvested from the telemetry spans."""
    samples: dict[str, list[float]] = {}
    for _ in range(runs):
        obs = Telemetry()
        with use_telemetry(obs):
            toolchain.compile(application)
        roots = obs.spans("compile")
        if not roots:  # pragma: no cover - compile always opens a root
            raise RuntimeError(f"no compile span recorded in {label} run")
        root = roots[0]
        samples.setdefault("total", []).append(root.duration)
        for span in root.children:
            if span.name.startswith("stage:"):
                stage = span.name[len("stage:"):]
                samples.setdefault(stage, []).append(span.duration)
    return samples


def profile_compile(
    application,
    core="audio",
    options=None,
    runs: int = 5,
) -> dict[str, Any]:
    """Profile one application's compile, cold and warm.

    ``application`` is source text or a :class:`~repro.lang.dfg.Dfg`;
    ``core``/``options`` as in :class:`~repro.toolchain.Toolchain`.
    Cold runs use no cache at all; warm runs share one in-memory
    :class:`~repro.pipeline.session.StageCache` primed by an uncounted
    compile, so they measure the restore path.  Returns a JSON-able
    dict with ``cold``/``warm`` maps of stage name (plus ``total``) to
    ``{n, p50, p95, mean}`` seconds.
    """
    from ..options import CompileOptions
    from ..pipeline.session import StageCache
    from ..toolchain import Toolchain

    if runs < 1:
        raise ValueError("runs must be >= 1")
    options = options if options is not None else CompileOptions()
    # The profile measures this process's compile work: the persistent
    # disk tier would make "cold" depend on yesterday's cache contents.
    options = options.replace(disk_cache=False)

    cold_toolchain = Toolchain(core, options, cache=None)
    cold = _timed_compiles(cold_toolchain, application, runs, "cold")

    warm_toolchain = Toolchain(core, options, cache=StageCache())
    warm_toolchain.compile(application)  # prime the cache, uncounted
    warm = _timed_compiles(warm_toolchain, application, runs, "warm")

    name = getattr(application, "name", None)
    return {
        "application": name or "<source>",
        "core": cold_toolchain.core.name,
        "options": options.to_dict(),
        "runs": runs,
        "stages": [s for s in cold if s != "total"],
        "cold": _summarize(cold),
        "warm": _summarize(warm),
    }


def render_profile(result: dict[str, Any]) -> str:
    """The per-stage p50/p95 table of one :func:`profile_compile`."""
    header = (f"compile profile: {result['application']} on "
              f"{result['core']} ({result['runs']} cold + "
              f"{result['runs']} warm runs)")
    rows = [header, "",
            f"{'stage':<10} {'cold p50':>10} {'cold p95':>10} "
            f"{'warm p50':>10} {'warm p95':>10}"]
    rows.append("-" * len(rows[-1]))

    def cell(regime: str, stage: str, key: str) -> str:
        stats = result[regime].get(stage)
        return f"{stats[key] * 1e3:.3f} ms" if stats else "-"

    for stage in [*result["stages"], "total"]:
        rows.append(
            f"{stage:<10} {cell('cold', stage, 'p50'):>10} "
            f"{cell('cold', stage, 'p95'):>10} "
            f"{cell('warm', stage, 'p50'):>10} "
            f"{cell('warm', stage, 'p95'):>10}"
        )
    cold_total = result["cold"]["total"]["p50"]
    warm_total = result["warm"]["total"]["p50"]
    if warm_total > 0:
        rows.append("")
        rows.append(f"warm speedup (p50): {cold_total / warm_total:.1f}x")
    return "\n".join(rows)


def write_profile(result: dict[str, Any], path: str | Path) -> Path:
    """Write the profile JSON (``BENCH_compile_profile.json``)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path
