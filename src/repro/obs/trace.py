"""Chrome ``trace_event`` export of a telemetry registry.

:func:`chrome_trace` renders a :class:`~repro.obs.core.Telemetry` as
the JSON object format of the Trace Event specification — open the
written file in ``chrome://tracing`` or https://ui.perfetto.dev to see
the compile as a flame chart.  Every span becomes one complete
("ph": "X") event with microsecond timestamps relative to the registry
epoch; tags travel in ``args``; counters and gauges are appended as a
final instant event so they survive into the viewer.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .core import Span, Telemetry


def _span_events(span: Span, pid: int, events: list[dict[str, Any]]) -> None:
    events.append({
        "name": span.name,
        "cat": "repro",
        "ph": "X",
        "ts": round(span.start * 1e6, 3),
        "dur": round(span.duration * 1e6, 3),
        "pid": pid,
        "tid": span.thread_id,
        "args": {k: v for k, v in span.tags.items() if v is not None},
    })
    for child in span.children:
        _span_events(child, pid, events)


def chrome_trace(telemetry: Telemetry) -> dict[str, Any]:
    """The registry as a Trace-Event-format JSON object."""
    pid = os.getpid()
    events: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": "repro toolchain"},
    }]
    for root in list(telemetry.roots):
        _span_events(root, pid, events)
    last = max(
        (span["ts"] + span["dur"] for span in events if span["ph"] == "X"),
        default=0.0,
    )
    summary: dict[str, Any] = dict(sorted(telemetry.counters.items()))
    summary.update(sorted(telemetry.gauges.items()))
    if summary:
        events.append({
            "name": "counters",
            "cat": "repro",
            "ph": "i",
            "s": "g",  # global-scope instant event
            "ts": round(last, 3),
            "pid": pid,
            "tid": 0,
            "args": summary,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(telemetry: Telemetry, path: str | Path) -> Path:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(telemetry), indent=2) + "\n")
    return path
