"""Workload library: the paper's audio application (tuned to the
published figure-9 profile) plus filter, adaptive and synthetic
workloads for the examples and benches."""

from .audio import (
    AudioAppSpec,
    audio_application,
    audio_io_binding,
    expected_opu_counts,
)
from .channel import channel_frontend_application
from .filters import biquad_cascade_application, fir_application, reference_fir
from .lms import (
    ADAPTIVE_CLASS_TABLE,
    ADAPTIVE_INSTRUCTION_TYPES,
    adaptive_core,
    adaptive_datapath,
    lms_application,
)
from .stress import stress_application

__all__ = [
    "ADAPTIVE_CLASS_TABLE",
    "ADAPTIVE_INSTRUCTION_TYPES",
    "AudioAppSpec",
    "adaptive_core",
    "adaptive_datapath",
    "audio_application",
    "audio_io_binding",
    "biquad_cascade_application",
    "channel_frontend_application",
    "expected_opu_counts",
    "fir_application",
    "lms_application",
    "reference_fir",
    "stress_application",
]
