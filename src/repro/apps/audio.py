"""The digital-audio application of the paper's section 7 (figure 7).

The paper prints only the treble section's source and the resource
profile of the whole application (figure 9).  The full source was never
published, but figure 9 pins the operation counts exactly: over the
63-cycle schedule, occupations of 92% (RAM, MULT, ALU, ROM, PRG_CNST),
93% (ACU), 3% (IPB) and 6% (OPB_1, OPB_2) mean

    58 RAM accesses, 58 multiplies, 58 ALU operations,
    58 coefficient fetches, 58 program constants, 59 ACU address
    computations, 2 input reads and 4 + 4 output writes

per time-loop iteration.  This module synthesises a stereo tone-control
/ crossover network with *exactly* that profile (29 RAM / 29 MULT /
29 ALU per channel), built from the published treble-section template:

========================  ====  ====  ===
per channel               RAM   MULT  ALU
========================  ====  ====  ===
volume premultiply + store  1     1    0
treble section (paper)      4     3    3
bass section                4     3    3
presence section            4     3    3
tone mix                    0     0    1
3-tap feedback echo         4     3    3
4 crossover band biquads   12    12   12
4 output gain taps          0     4    4
                           --    --   --
total                      29    29   29
========================  ====  ====  ===

Left and right channels use separate coefficient sets (the paper's ROM
count equals its MULT count, i.e. no coefficient sharing), delivering
58 distinct ROM words — within the audio core's 64-word ROM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.builder import DfgBuilder, Ref, StateRef
from ..lang.dfg import Dfg

#: Default coefficient values (floats, quantised to Q15 by the flow).
#: Slightly different per channel so every ROM word is distinct.
_SECTION_COEFS = {"treble": (0.40, -0.20, 0.30),
                  "bass": (0.15, 0.05, 0.55),
                  "presence": (0.22, -0.12, 0.41)}
_ECHO_COEFS = (0.31, -0.17, 0.09)
_BAND_COEFS = ((0.45, 0.21, -0.11), (0.38, 0.16, -0.07),
               (0.29, 0.12, -0.05), (0.24, 0.08, -0.03))
_GAINS = (0.9, 0.8, 0.7, 0.6)
_VOLUME = 0.77


@dataclass(frozen=True)
class AudioAppSpec:
    """Tunable structure of the synthesized application."""

    n_bands: int = 4
    echo_taps: int = 3
    stereo: bool = True

    @property
    def channels(self) -> tuple[str, ...]:
        return ("l", "r") if self.stereo else ("l",)


def _section(b: DfgBuilder, tag: str, x_state: StateRef, y_state: StateRef,
             coefs: tuple[float, float, float]) -> Ref:
    """The paper's treble-section template (printed source, section 7)::

        x0 := u@2;  m := mlt(d2, x0);  a := pass(m);
        x2 := v@1;  m := mlt(e1, x2);  a := add(m, a);
        x1 := u@1;  m := mlt(d1, x1);  rd := add_clip(m, a);
        v  = rd;

    4 RAM accesses, 3 multiplies, 3 ALU operations.
    """
    d1, d2, e1 = coefs
    x0 = b.delay(x_state, 2)
    m = b.op("mult", b.param(f"d2_{tag}", d2), x0)
    a = b.op("pass", m)
    x2 = b.delay(y_state, 1)
    m = b.op("mult", b.param(f"e1_{tag}", e1), x2)
    a = b.op("add", m, a)
    x1 = b.delay(x_state, 1)
    m = b.op("mult", b.param(f"d1_{tag}", d1), x1)
    rd = b.op("add_clip", m, a)
    b.write(y_state, rd)
    return rd


def _channel(b: DfgBuilder, channel: str, spec: AudioAppSpec) -> None:
    tag = channel
    # Volume premultiply straight into the delay-line store (1 RAM, 1 MULT).
    sample = b.input(f"IN_{channel.upper()}")
    xin = b.op("mult", b.param(f"vol_{tag}", _VOLUME), sample)
    u = b.state(f"u_{tag}", depth=2)
    b.write(u, xin)

    # Three tone sections sharing the input delay line u (paper template).
    v = b.state(f"v_{tag}", depth=1)
    w = b.state(f"w_{tag}", depth=1)
    p = b.state(f"p_{tag}", depth=1)
    treble = _section(b, f"tr_{tag}", u, v, _SECTION_COEFS["treble"])
    bass = _section(b, f"ba_{tag}", u, w, _SECTION_COEFS["bass"])
    presence = _section(b, f"pr_{tag}", u, p, _SECTION_COEFS["presence"])

    # Tone mix (1 ALU).
    t = b.op("add", treble, bass)

    # Feedback echo over `echo_taps` delayed copies (taps RAM reads +
    # 1 write, taps MULTs, taps ALU ops).
    e = b.state(f"e_{tag}", depth=spec.echo_taps)
    acc = t
    for k in range(1, spec.echo_taps + 1):
        m = b.op("mult", b.param(f"fb{k}_{tag}", _ECHO_COEFS[(k - 1) % 3]),
                 b.delay(e, k))
        operation = "add_clip" if k == spec.echo_taps else "add"
        acc = b.op(operation, m, acc)
    t2 = acc
    b.write(e, t2)

    # Crossover bands: biquad feedback sections on the mixed signal;
    # the last band taps the presence section instead (3 RAM, 3 MULT,
    # 3 ALU each).
    band_outputs = []
    for band in range(spec.n_bands):
        b0, a1, a2 = _BAND_COEFS[band % len(_BAND_COEFS)]
        source = presence if band == spec.n_bands - 1 else t2
        y = b.state(f"y{band}_{tag}", depth=2)
        m = b.op("mult", b.param(f"b0_{band}_{tag}", b0), source)
        acc = b.op("pass", m)
        m = b.op("mult", b.param(f"a1_{band}_{tag}", a1), b.delay(y, 1))
        acc = b.op("add", m, acc)
        m = b.op("mult", b.param(f"a2_{band}_{tag}", a2), b.delay(y, 2))
        rd = b.op("add_clip", m, acc)
        b.write(y, rd)
        band_outputs.append(rd)

    # Output gain taps (1 MULT + 1 ALU each).
    for band, rd in enumerate(band_outputs):
        m = b.op("mult", b.param(f"g{band}_{tag}", _GAINS[band % len(_GAINS)]), rd)
        b.output(f"out{band}_{channel}", b.op("pass_clip", m))


def audio_application(spec: AudioAppSpec | None = None) -> Dfg:
    """Build the figure-7 application with the figure-9 profile."""
    spec = spec or AudioAppSpec()
    b = DfgBuilder("audio_tone_control")
    for channel in spec.channels:
        _channel(b, channel, spec)
    return b.build()


def expected_opu_counts(spec: AudioAppSpec | None = None) -> dict[str, int]:
    """The figure-9 operation counts the default spec must produce."""
    spec = spec or AudioAppSpec()
    channels = len(spec.channels)
    ram = (1 + 4 * 3 + (spec.echo_taps + 1) + 3 * spec.n_bands) * channels
    mult = (1 + 3 * 3 + spec.echo_taps + 3 * spec.n_bands + spec.n_bands) * channels
    alu = (3 * 3 + 1 + spec.echo_taps + 3 * spec.n_bands + spec.n_bands) * channels
    return {
        "ram": ram,
        "mult": mult,
        "alu": alu,
        "acu": ram + 1,
        "rom": mult,
        "prg_c": mult,
        "ipb": channels,
        "opb_1": (spec.n_bands * channels + 1) // 2,
        "opb_2": (spec.n_bands * channels) // 2,
    }


def audio_io_binding(spec: AudioAppSpec | None = None) -> dict[str, str]:
    """Alternate the band outputs over OPB_1 and OPB_2 (4 + 4)."""
    spec = spec or AudioAppSpec()
    binding: dict[str, str] = {}
    index = 0
    for channel in spec.channels:
        for band in range(spec.n_bands):
            binding[f"out{band}_{channel}"] = (
                "opb_1" if index % 2 == 0 else "opb_2"
            )
            index += 1
    return binding
