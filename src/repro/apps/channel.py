"""A DECT/GSM-flavoured channel front-end workload.

The paper names "Digital audio, DECT, GSM" as typical in-house-core
application domains.  This workload models a burst-mode receiver
front-end: DC-offset removal, a matched filter (small FIR), a
two-symbol correlator against a stored sync pattern, and an energy
tracker — all inside one time-loop, mixing the multiply/accumulate and
delay-line patterns such codes are made of.

Used by the tests as a second realistic end-to-end application and as
an exploration workload for a DECT-domain core.
"""

from __future__ import annotations

from ..lang.builder import DfgBuilder
from ..lang.dfg import Dfg

#: Matched-filter taps (half-sine-ish pulse shape).
_MF_TAPS = (0.18, 0.44, 0.44, 0.18)
#: Two-symbol sync pattern the correlator looks for.
_SYNC = (0.65, -0.65)
_DC_POLE = 0.9921875            # 1 - 1/128: slow DC tracker
_ENERGY_POLE = 0.96875          # 1 - 1/32: fast RSSI tracker


def channel_frontend_application(name: str = "dect_frontend") -> Dfg:
    """Build the receiver front-end DFG.

    Outputs per sample: the filtered symbol stream (``sym``), the sync
    correlation (``corr``) and the tracked signal energy (``rssi``).
    """
    b = DfgBuilder(name)
    x = b.input("rf_in")

    # DC-offset removal: dc += (1-p)*(x - dc); y = x - dc.
    dc = b.state("dc", depth=1)
    dc_old = b.delay(dc, 1)
    error = b.op("sub", x, dc_old)
    step = b.op("mult", b.param("dc_mu", 1.0 - _DC_POLE), error)
    b.write(dc, b.op("add_clip", step, dc_old))
    y = b.op("sub", x, dc_old)

    # Matched filter over the DC-free signal.
    d = b.state("mfline", depth=len(_MF_TAPS) - 1)
    b.write(d, y)
    accumulator = None
    for k, h in enumerate(_MF_TAPS):
        tap = y if k == 0 else b.delay(d, k)
        product = b.op("mult", b.param(f"mf{k}", h), tap)
        accumulator = (
            b.op("pass", product) if accumulator is None
            else b.op("add", product, accumulator)
        )
    symbol = b.op("pass_clip", accumulator)
    b.output("sym", symbol)

    # Correlation against the stored sync pattern (two symbol delays).
    s = b.state("symline", depth=2)
    b.write(s, symbol)
    c0 = b.op("mult", b.param("sync0", _SYNC[0]), b.delay(s, 1))
    c1 = b.op("mult", b.param("sync1", _SYNC[1]), b.delay(s, 2))
    b.output("corr", b.op("add_clip", c1, b.op("pass", c0)))

    # Energy/RSSI tracking: e += (1-p)*(|sym|^2-ish - e); |.|^2 is
    # approximated by sym*sym through the signal-times-signal multiply
    # when available, else by a scaled pass (core-portable variant).
    e = b.state("energy", depth=1)
    e_old = b.delay(e, 1)
    scaled = b.op("mult", b.param("rssi_g", 1.0 - _ENERGY_POLE), symbol)
    b.write(e, b.op("add_clip", scaled, b.op("mult", b.param("rssi_p", _ENERGY_POLE), e_old)))
    b.output("rssi", e_old)
    return b.build()
