"""Synthetic workload generator for scheduler benchmarks.

Produces random-but-reproducible filter networks of a requested size:
chains of treble-style sections over shared delay lines, with the same
operation mix as the audio application.  Used by the scheduler-runtime
ablations where one application is not enough signal.
"""

from __future__ import annotations

import random

from ..lang.builder import DfgBuilder
from ..lang.dfg import Dfg


def stress_application(
    n_sections: int,
    seed: int = 0,
    n_outputs: int = 2,
    name: str | None = None,
) -> Dfg:
    """A network of ``n_sections`` second-order sections.

    Each section reads the shared input delay line and its own feedback
    state (4 RAM, 3 MULT, 3 ALU — the audio template); outputs tap the
    last sections through gain multiplies.
    """
    rng = random.Random(seed)
    b = DfgBuilder(name or f"stress_{n_sections}")
    x = b.input("x")
    u = b.state("u", depth=2)
    b.write(u, x)

    results = []
    for index in range(n_sections):
        tag = f"s{index}"
        y = b.state(f"y_{tag}", depth=1)
        coefs = [round(rng.uniform(-0.9, 0.9), 4) for _ in range(3)]
        m = b.op("mult", b.param(f"c0_{tag}", coefs[0]), b.delay(u, 2))
        a = b.op("pass", m)
        m = b.op("mult", b.param(f"c1_{tag}", coefs[1]), b.delay(y, 1))
        a = b.op("add", m, a)
        m = b.op("mult", b.param(f"c2_{tag}", coefs[2]), b.delay(u, 1))
        rd = b.op("add_clip", m, a)
        b.write(y, rd)
        results.append(rd)

    for index in range(min(n_outputs, len(results))):
        source = results[-(index + 1)]
        gain = b.param(f"g{index}", round(rng.uniform(0.2, 0.9), 4))
        b.output(f"o{index}", b.op("pass_clip", b.op("mult", gain, source)))
    return b.build()
