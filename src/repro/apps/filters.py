"""Classic filter workloads: FIR and IIR biquad cascades.

These are the bread-and-butter programs of the paper's application
domains (digital audio, DECT, GSM front-ends).  They are generated
through the builder so tap counts and coefficients are parameters;
the examples and benches sweep them.
"""

from __future__ import annotations

from ..errors import SemanticError
from ..lang.builder import DfgBuilder
from ..lang.dfg import Dfg


def fir_application(
    coefficients: list[float],
    name: str = "fir",
    clip_output: bool = True,
) -> Dfg:
    """An N-tap transversal FIR filter, fully unrolled.

    ``y[n] = sum(h[k] * x[n-k])`` — one multiply per tap, accumulated
    in the paper's chained style (``pass`` then ``add`` ... ``add_clip``).
    """
    if not coefficients:
        raise SemanticError("FIR needs at least one coefficient")
    b = DfgBuilder(name)
    x = b.input("x")
    taps = len(coefficients)
    delay = b.state("d", depth=max(taps - 1, 1)) if taps > 1 else None
    if delay is not None:
        b.write(delay, x)

    accumulator = None
    for k, h in enumerate(coefficients):
        coefficient = b.param(f"h{k}", h)
        source = x if k == 0 else b.delay(delay, k)
        product = b.op("mult", coefficient, source)
        if accumulator is None:
            accumulator = b.op("pass", product)
        elif k == taps - 1 and clip_output:
            accumulator = b.op("add_clip", product, accumulator)
        else:
            accumulator = b.op("add", product, accumulator)
    b.output("y", accumulator)
    return b.build()


def biquad_cascade_application(
    sections: list[tuple[float, float, float, float, float]],
    name: str = "iir_cascade",
) -> Dfg:
    """A cascade of direct-form-II-ish biquads.

    Each section is ``(b0, b1, b2, a1, a2)`` computing::

        w[n] = clip(b0*x + b1*x1 + b2*x2 + a1*y1 + a2*y2)

    with ``x1/x2`` the section input history and ``y1/y2`` its output
    history, both RAM-resident delay lines.
    """
    if not sections:
        raise SemanticError("cascade needs at least one section")
    b = DfgBuilder(name)
    signal = b.input("x")
    for index, (b0, b1, b2, a1, a2) in enumerate(sections):
        tag = f"s{index}"
        x_state = b.state(f"x_{tag}", depth=2)
        y_state = b.state(f"y_{tag}", depth=2)
        b.write(x_state, signal)
        product = b.op("mult", b.param(f"b0_{tag}", b0), signal)
        accumulator = b.op("pass", product)
        terms = [
            (f"b1_{tag}", b1, b.delay(x_state, 1)),
            (f"b2_{tag}", b2, b.delay(x_state, 2)),
            (f"a1_{tag}", a1, b.delay(y_state, 1)),
        ]
        for coef_name, coef_value, operand in terms:
            product = b.op("mult", b.param(coef_name, coef_value), operand)
            accumulator = b.op("add", product, accumulator)
        product = b.op("mult", b.param(f"a2_{tag}", a2), b.delay(y_state, 2))
        result = b.op("add_clip", product, accumulator)
        b.write(y_state, result)
        signal = result
    b.output("y", signal)
    return b.build()


def reference_fir(coefficients: list[float], fmt, xs: list[int]) -> list[int]:
    """Direct fixed-point FIR computation (oracle for tests/benches).

    Matches :func:`fir_application`'s chained accumulation exactly:
    taps accumulate with wrap-around adds, the last with saturation.
    """
    quantised = [fmt.from_float(h) for h in coefficients]
    history: list[int] = []
    outputs: list[int] = []
    for x in xs:
        history.insert(0, x)
        accumulator = 0
        for k, h in enumerate(quantised):
            sample = history[k] if k < len(history) else 0
            product = fmt.mult(h, sample)
            if k == len(quantised) - 1 and len(quantised) > 1:
                accumulator = fmt.add_clip(product, accumulator)
            else:
                accumulator = fmt.add(product, accumulator)
        outputs.append(accumulator)
    return outputs
