"""LMS adaptive filter — and the in-house core it motivates.

The audio and FIR cores cannot multiply two *signals*: their multiplier
coefficient port is fed only by the ROM / constant unit.  An adaptive
filter needs exactly that (``mu * e[n] * x[n-k]``), so following the
paper's methodology we define a new in-house core for the adaptive
domain — same datapath style, one extra interconnect route
(RAM and ALU results can reach the coefficient port) and a second RAM
port file sized for coefficient storage.

This demonstrates the retargetability claim: the *same* compiler, fed a
different :class:`~repro.arch.library.CoreSpec`, programs the new core
with zero code changes.
"""

from __future__ import annotations

from ..arch.controller import ControllerSpec
from ..arch.datapath import Datapath
from ..arch.library import ClassDef, CoreSpec
from ..arch.opu import Operation, OpuKind
from ..lang.builder import DfgBuilder
from ..lang.dfg import Dfg


def adaptive_datapath(ram_size: int = 256) -> Datapath:
    """The FIR core plus signal-to-coefficient-port routing."""
    dp = Datapath("adaptive")

    ram = dp.add_opu("ram", OpuKind.RAM, [
        Operation("read", arity=1, reads_memory=True),
        Operation("write", arity=2, writes_memory=True),
    ], memory_size=ram_size)
    mult = dp.add_opu("mult", OpuKind.MULT, [
        Operation("mult", arity=2, commutative=True),
    ])
    alu = dp.add_opu("alu", OpuKind.ALU, [
        Operation("add", arity=2, commutative=True),
        Operation("sub", arity=2),
        Operation("add_clip", arity=2, commutative=True),
        Operation("pass", arity=1),
        Operation("pass_clip", arity=1),
    ])
    acu = dp.add_opu("acu", OpuKind.ACU, [
        Operation("addmod", arity=2),
    ])
    prg = dp.add_opu("prg_c", OpuKind.CONST, [Operation("const", arity=1)])
    ipb = dp.add_opu("ipb", OpuKind.INPUT, [Operation("read", arity=0)])
    dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])

    rf_ram_addr = dp.add_register_file("rf_ram_addr", 4)
    rf_ram_data = dp.add_register_file("rf_ram_data", 8)
    rf_mult_data = dp.add_register_file("rf_mult_data", 8)
    rf_mult_coef = dp.add_register_file("rf_mult_coef", 8)
    rf_alu_p0 = dp.add_register_file("rf_alu_p0", 8)
    rf_alu_p1 = dp.add_register_file("rf_alu_p1", 8)
    rf_acu = dp.add_register_file("rf_acu", 2)
    rf_opb = dp.add_register_file("rf_opb", 2)

    dp.connect_port(ram, 0, rf_ram_addr)
    dp.connect_port(ram, 1, rf_ram_data)
    dp.connect_port(mult, 0, rf_mult_data)
    dp.connect_port(mult, 1, rf_mult_coef)
    dp.connect_port(alu, 0, rf_alu_p0)
    dp.connect_port(alu, 1, rf_alu_p1)
    dp.connect_port(acu, 0, rf_acu)
    dp.make_immediate_port(acu, 1)
    dp.make_immediate_port(prg, 0)
    dp.connect_port("opb", 0, rf_opb)

    bus_ram = dp.attach_bus(ram)
    bus_mult = dp.attach_bus(mult)
    bus_alu = dp.attach_bus(alu)
    bus_acu = dp.attach_bus(acu)
    bus_prg = dp.attach_bus(prg)
    bus_ipb = dp.attach_bus(ipb)

    dp.route_bus(bus_acu, rf_ram_addr)
    dp.route_bus(bus_acu, rf_acu)
    dp.route_bus(bus_ipb, rf_ram_data)
    dp.route_bus(bus_alu, rf_ram_data)
    dp.route_bus(bus_mult, rf_ram_data)
    dp.route_bus(bus_ram, rf_mult_data)
    dp.route_bus(bus_alu, rf_mult_data)
    dp.route_bus(bus_ipb, rf_mult_data)
    dp.route_bus(bus_mult, rf_mult_data)     # product re-multiplied (mu*e)*x
    dp.route_bus(bus_prg, rf_mult_coef)
    dp.route_bus(bus_ram, rf_mult_coef)      # adapted coefficient from RAM
    dp.route_bus(bus_alu, rf_mult_coef)      # freshly updated coefficient
    dp.route_bus(bus_mult, rf_alu_p0)
    dp.route_bus(bus_ram, rf_alu_p0)
    dp.route_bus(bus_ipb, rf_alu_p0)
    dp.route_bus(bus_alu, rf_alu_p0)
    dp.route_bus(bus_alu, rf_alu_p1)
    dp.route_bus(bus_ram, rf_alu_p1)
    dp.route_bus(bus_prg, rf_alu_p1)
    dp.route_bus(bus_alu, rf_opb)
    return dp


ADAPTIVE_CLASS_TABLE: list[ClassDef] = [
    ClassDef("A", "ipb", ("read",)),
    ClassDef("B", "opb", ("write",)),
    ClassDef("D", "acu", ("addmod",)),
    ClassDef("X", "ram", ("read", "write")),
    ClassDef("G", "mult", ("mult",)),
    ClassDef("Y", "alu", ("add", "sub", "add_clip", "pass", "pass_clip")),
    ClassDef("M", "prg_c", ("const",)),
]

ADAPTIVE_INSTRUCTION_TYPES: list[frozenset[str]] = [
    frozenset({"A", "D", "X", "G", "Y", "M"}),
    frozenset({"B", "D", "X", "G", "Y", "M"}),
]


def adaptive_core(ram_size: int = 256) -> CoreSpec:
    return CoreSpec(
        name="adaptive",
        datapath=adaptive_datapath(ram_size=ram_size),
        controller=ControllerSpec(
            stack_depth=4,
            n_flags=0,
            supports_conditionals=False,
            supports_loops=True,
            program_size=512,
        ),
        class_defs=list(ADAPTIVE_CLASS_TABLE),
        instruction_types=list(ADAPTIVE_INSTRUCTION_TYPES),
    )


def lms_application(n_taps: int = 4, mu: float = 0.05,
                    name: str = "lms") -> Dfg:
    """A normalised-step LMS echo canceller skeleton.

    Per iteration: filter the reference ``x`` with the adapted weights
    (held in delay-line states), subtract from the desired signal
    ``d``, emit the error, and update every weight with
    ``w_k += mu * e * x[n-k]``.
    """
    b = DfgBuilder(name)
    x = b.input("x")
    desired = b.input("d")
    x_state = b.state("xline", depth=max(n_taps - 1, 1))
    b.write(x_state, x)
    weights = [b.state(f"w{k}", depth=1) for k in range(n_taps)]

    # y[n] = sum w_k * x[n-k]
    accumulator = None
    x_taps = [x] + [b.delay(x_state, k) for k in range(1, n_taps)]
    for k in range(n_taps):
        product = b.op("mult", b.delay(weights[k], 1), x_taps[k])
        accumulator = (
            b.op("pass", product) if accumulator is None
            else b.op("add", product, accumulator)
        )
    y = accumulator

    # e[n] = d[n] - y[n]; output the error.
    error = b.op("sub", desired, y)
    b.output("e", error)

    # w_k += mu * e * x[n-k]
    step = b.op("mult", b.param("mu", mu), error)
    for k in range(n_taps):
        gradient = b.op("mult", step, x_taps[k])
        b.write(weights[k], b.op("add_clip", gradient, b.delay(weights[k], 1)))
    return b.build()
