"""Stage-boundary verifiers: pure invariant checks on pipeline artifacts.

Each pipeline stage (see ``repro.pipeline.stages``) hands its successor
an artifact it trusts to be legal; these functions re-derive that
legality independently, LLVM-verifier style, and report violations as
:class:`~repro.analyze.findings.Finding` lists instead of crashing
somewhere downstream.  They never mutate their inputs and never raise
on malformed artifacts — a corrupted schedule yields findings, not a
``KeyError`` — so they are safe to run over adversarial fixtures.

The ``verify=`` knob of :class:`repro.options.CompileOptions` wires
:func:`verify_stage` into ``Toolchain.run_pipeline`` after every stage
boundary (``boundaries``), with ``strict`` additionally linting the
encoded image (see :mod:`repro.analyze.lint`).
"""

from __future__ import annotations

from ..arch.opu import OpuKind
from ..errors import ConnectivityError
from .findings import Finding, error, warning

__all__ = [
    "verify_allocation",
    "verify_datapath",
    "verify_dfg",
    "verify_rt_program",
    "verify_schedule",
    "verify_stage",
    "verify_state",
]


# ----------------------------------------------------------------------
# DFG well-formedness


def verify_dfg(dfg) -> list[Finding]:
    """Well-formedness of a :class:`repro.lang.Dfg`.

    Mirrors ``Dfg.validate`` but collects *all* violations as findings:
    unique node ids, definition-before-use (which is exactly acyclicity
    of the within-frame dataflow — cross-iteration feedback must go
    through DELAY states), delay windows, declared names and the
    single-write-per-frame state discipline.
    """
    findings: list[Finding] = []
    all_ids = {n.id for n in dfg.nodes}
    defined: set[int] = set()
    state_writes: set[str] = set()
    for node in dfg.nodes:
        where = f"node n{node.id}"
        if node.id in defined:
            findings.append(error(
                "dfg.duplicate-id",
                f"node id {node.id} is defined twice", where))
        for arg in node.args:
            if arg not in all_ids:
                findings.append(error(
                    "dfg.dangling-edge",
                    f"{node.name} consumes n{arg}, which no node produces",
                    where, hint="remove the edge or add the producer"))
            elif arg not in defined and arg != node.id:
                findings.append(error(
                    "dfg.edge-cycle",
                    f"{node.name} consumes n{arg} before its definition — "
                    f"a cycle in the frame's dataflow",
                    where,
                    hint="route cross-iteration feedback through a state"))
            elif arg == node.id:
                findings.append(error(
                    "dfg.edge-cycle",
                    f"{node.name} consumes its own result", where))
        defined.add(node.id)
        if node.kind.name == "DELAY":
            spec = dfg.states.get(node.name)
            if spec is None:
                findings.append(error(
                    "dfg.unknown-state",
                    f"delay of unknown state {node.name!r}", where))
            elif not 1 <= node.delay <= spec.depth:
                findings.append(error(
                    "dfg.delay-window",
                    f"delay {node.name}@{node.delay} outside the state's "
                    f"window [1, {spec.depth}]", where))
        elif node.kind.name == "STATE_WRITE":
            if node.name not in dfg.states:
                findings.append(error(
                    "dfg.unknown-state",
                    f"write to unknown state {node.name!r}", where))
            elif node.name in state_writes:
                findings.append(error(
                    "dfg.state-rewrite",
                    f"state {node.name!r} written twice in one iteration",
                    where))
            state_writes.add(node.name)
        elif node.kind.name == "PARAM" and node.name not in dfg.params:
            findings.append(error(
                "dfg.unknown-name",
                f"unknown parameter {node.name!r}", where))
        elif node.kind.name == "INPUT" and node.name not in dfg.inputs:
            findings.append(error(
                "dfg.unknown-name",
                f"unknown input port {node.name!r}", where))
        elif node.kind.name == "OUTPUT" and node.name not in dfg.outputs:
            findings.append(error(
                "dfg.unknown-name",
                f"unknown output port {node.name!r}", where))
    read_states = {n.name for n in dfg.nodes if n.kind.name == "DELAY"}
    for name in sorted(read_states - state_writes):
        if name in dfg.states:
            findings.append(error(
                "dfg.state-unwritten",
                f"state {name!r} is read but never written",
                hint="add the state_write or drop the delay"))
    return findings


# ----------------------------------------------------------------------
# RT-program legality


def verify_rt_program(program) -> list[Finding]:
    """Bindability of every RT against the program's datapath.

    Checks that each RT executes on an existing OPU that supports its
    operation, that register operands arrive through the file actually
    feeding that port (immediates through immediate ports), that a
    route exists from the OPU's bus to every destination file, and that
    every value read is either produced by some RT or live-in (loop
    carry / pinned initial).  Intended for the ``rtgen`` boundary,
    *before* instruction-set imposition adds artificial resources.
    """
    findings: list[Finding] = []
    dp = program.core.datapath
    producers = program.producers()
    live_in = program.live_in_values()
    for rt in program.rts:
        where = f"rt {rt.opu}/{rt.uid}"
        opu = dp.opus.get(rt.opu)
        if opu is None:
            findings.append(error(
                "rt.unknown-opu",
                f"RT executes on {rt.opu!r}, not present in datapath "
                f"{dp.name!r}", where))
            continue
        if not opu.supports(rt.operation):
            findings.append(error(
                "rt.unbindable-op",
                f"OPU {opu.name!r} does not support operation "
                f"{rt.operation!r}", where,
                hint="rebind the node or extend the OPU's operation set"))
        for index, operand in enumerate(rt.operands):
            if index >= len(opu.ports):
                findings.append(error(
                    "rt.port-mismatch",
                    f"operand {index} exceeds the {len(opu.ports)} input "
                    f"port(s) of {opu.name!r}", where))
                continue
            port = opu.ports[index]
            if operand.is_register:
                feeding = port.register_file
                if feeding is None or feeding.name != operand.register_file:
                    fed = feeding.name if feeding is not None else "an immediate"
                    findings.append(error(
                        "rt.port-mismatch",
                        f"operand {index} reads file "
                        f"{operand.register_file!r} but port {index} of "
                        f"{opu.name!r} is fed by {fed}", where))
                if (operand.value not in producers
                        and operand.value not in live_in):
                    findings.append(error(
                        "rt.undefined-value",
                        f"value v{operand.value} is read but never produced "
                        f"and not live-in", where,
                        hint="a producer RT is missing or was dropped"))
            elif not port.accepts_immediate:
                findings.append(error(
                    "rt.port-mismatch",
                    f"operand {index} is an immediate but port {index} of "
                    f"{opu.name!r} is register-fed", where))
        for dest in rt.destinations:
            rf = dp.register_files.get(dest.register_file)
            if rf is None:
                findings.append(error(
                    "rt.no-route",
                    f"destination file {dest.register_file!r} does not "
                    f"exist in datapath {dp.name!r}", where))
                continue
            if not opu.produces_result:
                findings.append(error(
                    "rt.no-route",
                    f"{opu.name!r} produces no result but the RT writes "
                    f"{dest.register_file!r}", where))
                continue
            try:
                dp.route_to(opu, rf)
            except ConnectivityError:
                findings.append(error(
                    "rt.no-route",
                    f"no bus route from {opu.name!r} to file "
                    f"{dest.register_file!r}", where,
                    hint="add a route_bus edge or rebind the destination"))
    return findings


# ----------------------------------------------------------------------
# Schedule legality


def verify_schedule(program, schedule, graph) -> list[Finding]:
    """Legality of a schedule against its dependence graph.

    Re-derives what ``Schedule.validate`` asserts, as findings: every
    RT scheduled at a non-negative cycle, no usage spilling past the
    schedule length, every dependence edge (whose RAW delays encode the
    producing OPU's latency) respected at iteration distance 0, no
    resource carrying two *different* usages in the same cycle (the
    paper's sharing rule: same usage may share), and the cycle budget.
    """
    findings: list[Finding] = []
    for rt in graph.rts:
        if rt not in schedule.cycle_of:
            findings.append(error(
                "sched.unscheduled",
                f"RT {rt.opu}/{rt.uid} ({rt.operation}) has no cycle",
                f"rt {rt.opu}/{rt.uid}"))
    slots: dict[tuple[str, int], tuple[str, object]] = {}
    for rt, cycle in schedule.cycle_of.items():
        where = f"cycle {cycle}"
        if cycle < 0:
            findings.append(error(
                "sched.negative-cycle",
                f"RT {rt.opu}/{rt.uid} scheduled at cycle {cycle}", where))
            continue
        if cycle + rt.max_offset >= schedule.length:
            findings.append(error(
                "sched.overrun",
                f"RT {rt.opu}/{rt.uid} occupies cycle "
                f"{cycle + rt.max_offset}, past schedule length "
                f"{schedule.length}", where))
        for use in rt.uses:
            key = (use.resource, cycle + use.offset)
            held = slots.get(key)
            if held is not None and held[0] != use.usage:
                findings.append(error(
                    "sched.double-booking",
                    f"resource {use.resource!r} holds {held[0]!r} and "
                    f"{use.usage!r} in cycle {key[1]}", f"cycle {key[1]}",
                    hint="two RTs with conflicting usage share a cycle"))
            else:
                slots[key] = (use.usage, rt)
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        if edge.src not in schedule.cycle_of or edge.dst not in schedule.cycle_of:
            continue
        src, dst = schedule.cycle_of[edge.src], schedule.cycle_of[edge.dst]
        if dst < src + edge.delay:
            findings.append(error(
                "sched.dependence",
                f"{edge.kind.value} edge {edge.src.opu}/{edge.src.uid} -> "
                f"{edge.dst.opu}/{edge.dst.uid} needs {edge.delay} cycle(s) "
                f"but got {dst - src}", f"cycle {dst}",
                hint="the consumer starts before the producer's result "
                     "matures"))
    if schedule.budget is not None and schedule.length > schedule.budget:
        findings.append(error(
            "sched.budget",
            f"schedule length {schedule.length} exceeds budget "
            f"{schedule.budget}"))
    return findings


# ----------------------------------------------------------------------
# Register-allocation legality


def verify_allocation(program, schedule, allocation,
                      capacities=None) -> list[Finding]:
    """Legality of a register allocation.

    Recomputes live intervals independently from the program and the
    schedule (never trusting ``allocation.intervals``), then checks
    that every interval is bound to a register inside its file's
    capacity, that no two *overlapping* intervals share a cell, and
    that every register read happens strictly after the producing
    write has landed (write moment ``cycle + latency - 1``; files are
    read at the start of a cycle and written at its end).
    """
    from ..sched.regalloc import compute_intervals

    findings: list[Finding] = []
    dp = program.core.datapath
    intervals = compute_intervals(program, schedule)
    for rf_name, file_intervals in intervals.items():
        if capacities is not None:
            capacity = capacities.get(rf_name)
        else:
            rf = dp.register_files.get(rf_name)
            capacity = rf.size if rf is not None else None
        by_register: dict[int, list] = {}
        for interval in file_intervals:
            key = (rf_name, interval.value)
            register = allocation.register_of.get(key)
            if register is None:
                findings.append(error(
                    "regalloc.unallocated",
                    f"value v{interval.value} in {rf_name!r} has no "
                    f"register", f"rf {rf_name}"))
                continue
            if register < 0 or (capacity is not None and register >= capacity):
                findings.append(error(
                    "regalloc.capacity",
                    f"value v{interval.value} sits in {rf_name}[{register}] "
                    f"but the file holds {capacity} register(s)",
                    f"rf {rf_name}[{register}]"))
            by_register.setdefault(register, []).append(interval)
        for register, cell_intervals in by_register.items():
            cell_intervals.sort(key=lambda iv: (iv.birth, iv.death))
            for earlier, later in zip(cell_intervals, cell_intervals[1:]):
                if later.birth < earlier.death and earlier.birth < later.death:
                    findings.append(error(
                        "regalloc.overlap",
                        f"values v{earlier.value} [{earlier.birth},"
                        f"{earlier.death}] and v{later.value} "
                        f"[{later.birth},{later.death}] overlap in "
                        f"{rf_name}[{register}]",
                        f"rf {rf_name}[{register}]",
                        hint="the second write clobbers a live value"))
    producers = program.producers()
    live_in = program.live_in_values()
    for rt, cycle in schedule.cycle_of.items():
        for operand in rt.operands:
            if not operand.is_register:
                continue
            producer = producers.get(operand.value)
            if producer is None:
                if operand.value not in live_in:
                    findings.append(error(
                        "regalloc.undefined-read",
                        f"RT {rt.opu}/{rt.uid} reads v{operand.value}, "
                        f"which nothing writes", f"cycle {cycle}"))
                continue
            if producer is rt:
                continue
            ready = schedule.cycle_of.get(producer)
            if ready is not None and cycle < ready + producer.latency:
                findings.append(error(
                    "regalloc.undefined-read",
                    f"RT {rt.opu}/{rt.uid} reads v{operand.value} in cycle "
                    f"{cycle} but its write lands at the end of cycle "
                    f"{ready + producer.latency - 1}", f"cycle {cycle}"))
    return findings


# ----------------------------------------------------------------------
# Datapath style rules (shared with repro.arch.validate)


def verify_datapath(dp) -> list[Finding]:
    """The datapath style rules of the paper's architecture template.

    The findings-typed core of :func:`repro.arch.validate_datapath`
    (which remains as a legacy wrapper raising/returning strings, so
    the messages here deliberately keep its exact wording).  Error
    codes mark structurally unusable datapaths; warning codes mark
    dead structure the explorer may legitimately sweep through.
    """
    findings: list[Finding] = []
    if not dp.opus:
        findings.append(error(
            "arch.no-opus", "datapath has no OPUs", f"datapath {dp.name}"))
    for opu in dp.opus.values():
        where = f"opu {opu.name}"
        arity = max(op.arity for op in opu.operations.values())
        for port in opu.ports[:arity]:
            if port.register_file is None and not port.accepts_immediate:
                findings.append(error(
                    "arch.unfed-port",
                    f"port {port.name} is neither fed by a register file nor "
                    f"an immediate field (rule: all operands originate from "
                    f"register files)", where))
        if opu.produces_result and opu.bus is None:
            findings.append(error(
                "arch.no-bus",
                f"OPU {opu.name!r} produces results but drives no bus "
                f"(rule: results leave through a buffer onto a bus)", where))
        if opu.produces_result and opu.bus is not None and not opu.bus.sinks:
            findings.append(warning(
                "arch.dead-bus",
                f"bus {opu.bus.name!r} of OPU {opu.name!r} reaches no "
                f"register file; its results are unusable", where))
        if opu.kind is OpuKind.OUTPUT and opu.bus is not None:
            findings.append(error(
                "arch.output-drives-bus",
                f"output port block {opu.name!r} must not drive a bus",
                where))
        if opu.kind is OpuKind.INPUT and any(
                port.register_file is not None for port in opu.ports):
            findings.append(error(
                "arch.input-reads-rf",
                f"input port block {opu.name!r} must not read register files",
                where))
    for rf in dp.register_files.values():
        where = f"rf {rf.name}"
        if not rf.readers:
            findings.append(warning(
                "arch.unread-rf",
                f"register file {rf.name!r} feeds no OPU port", where))
        if not rf.writers:
            findings.append(warning(
                "arch.unwritten-rf",
                f"register file {rf.name!r} is never written", where))
    for mux in dp.muxes.values():
        where = f"mux {mux.name}"
        if len(mux.inputs) < 2:
            findings.append(warning(
                "arch.thin-mux",
                f"mux {mux.name!r} has {len(mux.inputs)} input(s); a mux in "
                f"front of a single writer is redundant", where))
        if len(set(b.name for b in mux.inputs)) != len(mux.inputs):
            findings.append(error(
                "arch.mux-duplicate",
                f"mux {mux.name!r} has duplicate bus inputs", where))
    for bus in dp.buses.values():
        if bus.driver is None:
            findings.append(error(
                "arch.undriven-bus",
                f"bus {bus.name!r} has no driving OPU", f"bus {bus.name}"))
    return findings


# ----------------------------------------------------------------------
# Pipeline dispatch


def verify_state(state, include_lint: bool = True) -> list[Finding]:
    """Run every verifier whose artifact is present in a compile state,
    plus (optionally) the machine-code lint on the final image."""
    findings: list[Finding] = []
    artifacts = state.artifacts
    if "source_dfg" in artifacts:
        findings.extend(verify_dfg(artifacts["source_dfg"]))
    if "dfg" in artifacts:
        findings.extend(verify_dfg(artifacts["dfg"]))
    if "base_program" in artifacts:
        findings.extend(verify_rt_program(artifacts["base_program"]))
    if ("schedule" in artifacts and "dependence_graph" in artifacts
            and "program" in artifacts):
        findings.extend(verify_schedule(
            artifacts["program"], artifacts["schedule"],
            artifacts["dependence_graph"]))
    if ("allocation" in artifacts and "schedule" in artifacts
            and "program" in artifacts):
        findings.extend(verify_allocation(
            artifacts["program"], artifacts["schedule"],
            artifacts["allocation"], artifacts.get("capacities")))
    if include_lint and "binary" in artifacts:
        from .lint import lint_program

        findings.extend(lint_program(artifacts["binary"]))
    return findings


def verify_stage(stage_name: str, state,
                 strict: bool = False) -> list[Finding] | None:
    """The per-boundary dispatch used by ``Toolchain.run_pipeline``.

    Returns ``None`` for boundaries with nothing to verify (merge and
    impose rewrite resource usage onto artificial/merged resources the
    datapath checks must not see; assemble is covered by the lint,
    which only ``strict`` mode pays for).
    """
    artifacts = state.artifacts
    if stage_name == "parse":
        return verify_dfg(artifacts["source_dfg"])
    if stage_name == "optimize":
        return verify_dfg(artifacts["dfg"])
    if stage_name == "rtgen":
        return verify_rt_program(artifacts["base_program"])
    if stage_name == "schedule":
        return verify_schedule(artifacts["program"], artifacts["schedule"],
                               artifacts["dependence_graph"])
    if stage_name == "regalloc":
        return verify_allocation(artifacts["program"], artifacts["schedule"],
                                 artifacts["allocation"],
                                 artifacts.get("capacities"))
    if stage_name == "assemble" and strict:
        from .lint import lint_program

        return lint_program(artifacts["binary"])
    return None
