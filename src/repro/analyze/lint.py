"""Static lint of an encoded program image.

Reuses :func:`repro.sim.batch.decode_program` — the same decoder the
vectorized simulator trusts — to recover a flat execution plan from the
instruction words, then analyses the *image itself*, with no stimulus
and no simulation:

* a control-flow graph is built from the controller ops by abstract
  interpretation over (pc, loop-stack) states, so ``ENDL`` words are
  matched to their ``LOOP`` and stack overflow/underflow is caught
  statically (``mc.stack``), out-of-range transfers are flagged
  (``mc.bad-jump``) and dead words reported (``mc.unreachable``);
* loops that can never settle — a reachable control cycle passing no
  ``IDLE``/``HALT`` word, ignoring the bounded ``ENDL`` back edge —
  are rejected (``mc.no-exit``);
* operand register addresses and immediate RAM/ROM addresses are
  bounds-checked (``mc.oob``);
* a *must-mature* forward dataflow tracks which buses carry a value in
  each word (an operation issued at cycle ``t`` with latency ``L``
  matures on its bus in cycle ``t + L - 1``), so a destination field
  that consumes a bus on which nothing matures — the classic clobbered
  in-flight-destination encoding bug — is caught without running the
  machine (``mc.bus-hazard``, the static twin of the simulator's
  "nothing matured" crash);
* reaching definitions (must-defined, seeded with the image's pinned
  initial registers) flag reads of power-on register cells
  (``mc.uninit-read``) and backward liveness flags writes that are
  dead on every path (``mc.dead-write``); both honour the machine
  model — files are read at the start of a cycle and written at its
  end, so a same-word read observes the *old* value.

Every word-level CFG edge is exactly one machine cycle, which is what
lets the latency bookkeeping stay a small dataflow instead of a path
enumeration.
"""

from __future__ import annotations

from ..arch.controller import CtrlOp
from ..sim.batch import (
    SEM_RAM_READ,
    SEM_RAM_WRITE,
    SEM_ROM_READ,
    PlanError,
    decode_program,
)
from .findings import Finding, error, warning

__all__ = ["lint_program", "ProgramCfg", "build_cfg"]

#: Semantic codes of decode's plan ops that address a memory through
#: operand 0 (reads and writes alike).
_MEM_SEMS = {SEM_RAM_READ: "ram", SEM_RAM_WRITE: "ram", SEM_ROM_READ: "rom"}


class ProgramCfg:
    """Word-level control-flow graph of a decoded image.

    ``successors`` holds every one-cycle transfer; ``loop_back_edges``
    the subset that are bounded ``ENDL`` repeats (excluded from the
    termination check); ``reachable`` the words some execution can
    visit.
    """

    def __init__(self, n_words: int):
        self.n_words = n_words
        self.successors: dict[int, set[int]] = {i: set() for i in range(n_words)}
        self.loop_back_edges: set[tuple[int, int]] = set()
        self.reachable: set[int] = set()

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {i: set() for i in range(self.n_words)}
        for src, dsts in self.successors.items():
            for dst in dsts:
                preds[dst].add(src)
        return preds


def build_cfg(plan) -> tuple[ProgramCfg, list[Finding]]:
    """Abstract interpretation of the controller over (pc, stack) states."""
    findings: list[Finding] = []
    flagged: set[tuple[str, int]] = set()
    cfg = ProgramCfg(plan.n_words)

    def flag(make, code: str, pc: int, message: str, hint=None) -> None:
        if (code, pc) not in flagged:
            flagged.add((code, pc))
            findings.append(make(code, message, f"word {pc}", hint))

    seen: set[tuple[int, tuple[int, ...]]] = set()
    work: list[tuple[int, tuple[int, ...]]] = [(0, ())]
    while work:
        pc, stack = work.pop()
        if (pc, stack) in seen:
            continue
        seen.add((pc, stack))
        cfg.reachable.add(pc)
        word = plan.words[pc]

        def goto(target: int, next_stack: tuple[int, ...],
                 loop_back: bool = False) -> None:
            if not 0 <= target < plan.n_words:
                reason = ("execution falls off the end of the program"
                          if target == plan.n_words and word.ctrl in
                          (CtrlOp.CONT, CtrlOp.IDLE)
                          else f"transfer to word {target}, outside the "
                               f"{plan.n_words}-word program")
                flag(error, "mc.bad-jump", pc, reason,
                     "terminate with HALT or jump back into the body")
                return
            cfg.successors[pc].add(target)
            if loop_back:
                cfg.loop_back_edges.add((pc, target))
            work.append((target, next_stack))

        if word.ctrl in (CtrlOp.CONT, CtrlOp.IDLE):
            goto(pc + 1, stack)
        elif word.ctrl is CtrlOp.JUMP:
            goto(word.arg, stack)
        elif word.ctrl is CtrlOp.CJMP:
            goto(word.arg, stack)
            goto(pc + 1, stack)
        elif word.ctrl is CtrlOp.LOOP:
            if len(stack) >= plan.stack_depth:
                flag(error, "mc.stack", pc,
                     f"LOOP nesting exceeds the controller's stack depth "
                     f"{plan.stack_depth}")
            else:
                goto(pc + 1, stack + (pc + 1,))
        elif word.ctrl is CtrlOp.ENDL:
            if not stack:
                flag(error, "mc.stack", pc,
                     "ENDL with an empty loop stack (no matching LOOP)")
            else:
                goto(stack[-1], stack, loop_back=True)
                goto(pc + 1, stack[:-1])
        elif word.ctrl is CtrlOp.HALT:
            pass
    for pc in range(plan.n_words):
        if pc not in cfg.reachable:
            findings.append(warning(
                "mc.unreachable",
                f"word {pc} can never execute", f"word {pc}",
                "dead words waste control store; drop or re-link them"))
    return cfg, findings


def _check_termination(plan, cfg: ProgramCfg) -> list[Finding]:
    """A reachable control cycle that never passes an IDLE (frame
    settle point), ignoring bounded ENDL repeats, can never terminate."""
    graph: dict[int, list[int]] = {}
    for src in cfg.reachable:
        if plan.words[src].ctrl is CtrlOp.IDLE:
            continue
        graph[src] = [
            dst for dst in cfg.successors[src]
            if dst in cfg.reachable
            and (src, dst) not in cfg.loop_back_edges
            and plan.words[dst].ctrl is not CtrlOp.IDLE
        ]
    color: dict[int, int] = {}
    for root in graph:
        if color.get(root):
            continue
        stack = [(root, iter(graph[root]))]
        color[root] = 1
        while stack:
            node, children = stack[-1]
            for child in children:
                state = color.get(child, 0)
                if state == 1:
                    return [error(
                        "mc.no-exit",
                        f"control loop through word {child} never reaches an "
                        f"IDLE or HALT; the program cannot settle",
                        f"word {child}",
                        "every frame loop must pass the IDLE settle word")]
                if state == 0:
                    color[child] = 1
                    stack.append((child, iter(graph[child])))
                    break
            else:
                color[node] = 2
                stack.pop()
    return []


def _check_static_bounds(plan) -> list[Finding]:
    """Register / immediate-memory addresses the decoder does not check."""
    findings: list[Finding] = []
    for word in plan.words:
        for op in word.ops:
            for index, (is_register, src, addr) in enumerate(op.operands):
                if is_register:
                    size = plan.rf_sizes.get(src)
                    if size is not None and not 0 <= addr < size:
                        findings.append(error(
                            "mc.oob",
                            f"{op.opu} port {index} reads {src}[{addr}] but "
                            f"the file holds {size} register(s)",
                            f"word {word.index}",
                            "a corrupted register-address field"))
                elif op.sem in _MEM_SEMS and index == 0:
                    if _MEM_SEMS[op.sem] == "rom":
                        size = len(plan.rom_contents.get(op.opu, ()))
                    else:
                        size = plan.ram_sizes.get(op.opu)
                    if size is not None and not 0 <= src < size:
                        findings.append(error(
                            "mc.oob",
                            f"{op.opu} addresses word {src} of a {size}-word "
                            f"memory", f"word {word.index}"))
    return findings


def _meet_intersect(facts: list[frozenset | None]) -> frozenset | None:
    out: frozenset | None = None
    for fact in facts:
        if fact is None:
            continue
        out = fact if out is None else out & fact
    return out


def _must_forward(plan, cfg: ProgramCfg, entry: frozenset,
                  transfer) -> dict[int, frozenset]:
    """Generic must-analysis: intersection meet, forward, to fixpoint.

    ``transfer(word, in_fact) -> out_fact``.  Unvisited predecessors
    contribute top (no constraint); the virtual entry edge into word 0
    contributes ``entry``.
    """
    preds = cfg.predecessors()
    in_facts: dict[int, frozenset | None] = {
        pc: None for pc in cfg.reachable}
    out_facts: dict[int, frozenset | None] = {
        pc: None for pc in cfg.reachable}
    work = sorted(cfg.reachable)
    while work:
        next_work: set[int] = set()
        for pc in work:
            incoming = [out_facts.get(p) for p in preds[pc]
                        if p in cfg.reachable]
            if pc == 0:
                incoming.append(entry)
            fact = _meet_intersect(incoming)
            if fact is None:
                continue
            if in_facts[pc] is not None and in_facts[pc] == fact:
                continue
            in_facts[pc] = fact
            out = transfer(plan.words[pc], fact)
            if out != out_facts[pc]:
                out_facts[pc] = out
                next_work.update(s for s in cfg.successors[pc]
                                 if s in cfg.reachable)
        work = sorted(next_work)
    return {pc: fact for pc, fact in in_facts.items() if fact is not None}


def _check_bus_maturity(plan, cfg: ProgramCfg) -> list[Finding]:
    """Every destination field must consume a bus on which a value
    matures that very cycle — statically, on every path reaching it."""

    def transfer(word, in_fact: frozenset) -> frozenset:
        out = {(bus, due - 1) for bus, due in in_fact if due >= 1}
        for op in word.ops:
            if op.bus is not None and op.latency >= 2:
                out.add((op.bus, op.latency - 2))
        return frozenset(out)

    in_facts = _must_forward(plan, cfg, frozenset(), transfer)
    findings: list[Finding] = []
    for pc in sorted(cfg.reachable):
        word = plan.words[pc]
        if not word.writes:
            continue
        fact = in_facts.get(pc)
        matured = {bus for bus, due in fact if due == 0} if fact is not None \
            else set()
        matured |= {op.bus for op in word.ops
                    if op.bus is not None and op.latency == 1}
        for write in word.writes:
            if write.bus not in matured:
                findings.append(error(
                    "mc.bus-hazard",
                    f"{write.rf}[{write.addr}] latches bus {write.bus!r} but "
                    f"no result matures there in this cycle",
                    f"word {pc}",
                    "a destination field landed in the wrong word (check "
                    "OPU latency bookkeeping)"))
    return findings


def _cells(plan) -> frozenset:
    return frozenset(
        (rf, reg) for rf, size in plan.rf_sizes.items()
        for reg in range(size))


def _word_uses(word) -> set[tuple[str, int]]:
    return {(src, addr) for op in word.ops
            for is_register, src, addr in op.operands if is_register}


def _check_dataflow(plan, cfg: ProgramCfg) -> list[Finding]:
    """Reaching definitions (uninitialized reads) and liveness (dead
    writes) per register-file cell."""
    findings: list[Finding] = []

    # -- must-defined, forward: reads at start of cycle see IN ---------
    def transfer(word, in_fact: frozenset) -> frozenset:
        if not word.writes:
            return in_fact
        return in_fact | {(w.rf, w.addr) for w in word.writes}

    entry = frozenset(
        (rf, reg) for rf, inits in plan.initial_registers.items()
        for reg, _value in inits)
    in_facts = _must_forward(plan, cfg, entry, transfer)
    for pc in sorted(cfg.reachable):
        defined = in_facts.get(pc, frozenset())
        for rf, reg in sorted(_word_uses(plan.words[pc])):
            if (rf, reg) not in defined:
                findings.append(warning(
                    "mc.uninit-read",
                    f"{rf}[{reg}] is read but not written on every path "
                    f"from reset; the power-on value (0) leaks in",
                    f"word {pc}",
                    "initialize the register or move the read after its "
                    "write"))

    # -- liveness, backward: a write is dead if its cell is not live
    #    out of the word (same-word reads see the OLD value, so they do
    #    not keep the word's own write alive).  Architecturally pinned
    #    cells (the image's initial registers — loop-carry state) stay
    #    live at HALT/IDLE settle points: they are the machine state an
    #    enclosing system may observe between frames.
    pinned = entry
    live_in: dict[int, frozenset] = {pc: frozenset() for pc in cfg.reachable}
    preds = cfg.predecessors()
    changed = set(cfg.reachable)
    while changed:
        next_changed: set[int] = set()
        for pc in sorted(changed, reverse=True):
            word = plan.words[pc]
            live_out: set[tuple[str, int]] = set()
            if word.ctrl in (CtrlOp.HALT, CtrlOp.IDLE):
                live_out |= pinned
            for succ in cfg.successors[pc]:
                if succ in cfg.reachable:
                    live_out |= live_in[succ]
            fact = frozenset(
                (live_out - {(w.rf, w.addr) for w in word.writes})
                | _word_uses(word))
            if fact != live_in[pc]:
                live_in[pc] = fact
                next_changed.update(p for p in preds[pc]
                                    if p in cfg.reachable)
        changed = next_changed
    for pc in sorted(cfg.reachable):
        word = plan.words[pc]
        if not word.writes:
            continue
        live_out: set[tuple[str, int]] = set()
        if word.ctrl in (CtrlOp.HALT, CtrlOp.IDLE):
            live_out |= pinned
        for succ in cfg.successors[pc]:
            if succ in cfg.reachable:
                live_out |= live_in[succ]
        for write in word.writes:
            if (write.rf, write.addr) not in live_out:
                findings.append(warning(
                    "mc.dead-write",
                    f"{write.rf}[{write.addr}] is written but never read "
                    f"afterwards on any path", f"word {pc}",
                    "the value is dead; the write (and maybe its producer) "
                    "can go"))
    return findings


def lint_program(program) -> list[Finding]:
    """Lint one :class:`repro.encode.EncodedProgram`; returns findings
    sorted errors-first, then by word."""
    try:
        plan = decode_program(program)
    except PlanError as exc:
        return [error(
            "mc.decode", str(exc),
            hint="the image does not decode against this core's "
                 "instruction format")]
    findings = _check_static_bounds(plan)
    cfg, cfg_findings = build_cfg(plan)
    findings.extend(cfg_findings)
    findings.extend(_check_termination(plan, cfg))
    findings.extend(_check_bus_maturity(plan, cfg))
    findings.extend(_check_dataflow(plan, cfg))
    findings.sort(key=lambda f: (not f.is_error, f.location or "", f.code))
    return findings
