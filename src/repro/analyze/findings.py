"""The shared diagnostic schema of the static-analysis layer.

Every verifier and lint pass in :mod:`repro.analyze` — and the datapath
style checker in :mod:`repro.arch.validate` — reports through one type:
a :class:`Finding` with a severity, a stable dot-separated code, a
human message, an optional location ("word 3", "cycle 7", "rt mult/12")
and an optional fix hint.  Codes are registered in :data:`CHECK_CODES`;
``tools/check_doc_links.py`` keeps ``docs/analysis.md`` in lockstep
with this registry, the same way the counter table tracks
``repro.obs.COUNTERS``.

This module is deliberately dependency-free (stdlib only) so that any
layer of the package — including :mod:`repro.arch`, which everything
else imports — can produce findings without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe artifacts that are illegal — a compile
    under ``verify=`` raises on them and ``repro check`` exits 1.
    ``WARNING`` findings describe suspicious but executable code (for
    example a read of the power-on register value).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic."""

    severity: Severity
    code: str
    message: str
    location: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        # Every emitted code must be registered (and therefore
        # documented): an unregistered code is a bug in the checker,
        # not a finding about the checked artifact.
        if self.code not in CHECK_CODES:
            raise ValueError(f"unknown check code {self.code!r}; "
                             f"register it in CHECK_CODES")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def to_dict(self) -> dict:
        payload = {
            "severity": self.severity.value,
            "code": self.code,
            "message": self.message,
        }
        if self.location is not None:
            payload["location"] = self.location
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        tail = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.severity.value}: {self.code}{where}: {self.message}{tail}"


def error(code: str, message: str, location: str | None = None,
          hint: str | None = None) -> Finding:
    return Finding(Severity.ERROR, code, message, location, hint)


def warning(code: str, message: str, location: str | None = None,
            hint: str | None = None) -> Finding:
    return Finding(Severity.WARNING, code, message, location, hint)


#: Every check code the analysis layer can emit, with a one-line
#: invariant description.  ``docs/analysis.md`` must list exactly these
#: codes (enforced by ``tools/check_doc_links.py``).
CHECK_CODES: dict[str, str] = {
    # -- DFG well-formedness (parse / optimize boundaries) -------------
    "dfg.duplicate-id": "every node id is defined exactly once",
    "dfg.edge-cycle": "no node consumes a value defined later in the frame",
    "dfg.dangling-edge": "every edge references an existing producer node",
    "dfg.delay-window": "delay reads stay inside the declared state depth",
    "dfg.unknown-name": "inputs/outputs/params resolve to declared names",
    "dfg.state-rewrite": "each state element is written at most once per frame",
    "dfg.state-unwritten": "every state that is read is also written",
    # -- RT-program legality (rtgen boundary) --------------------------
    "rt.unknown-opu": "every RT executes on an OPU present in the datapath",
    "rt.unbindable-op": "the bound OPU supports the RT's operation",
    "rt.port-mismatch": "operands match the feeding file / immediate port",
    "rt.no-route": "a datapath route exists from the OPU to each destination",
    "rt.undefined-value": "every value read is produced or live-in",
    # -- schedule legality (schedule boundary) -------------------------
    "sched.unscheduled": "every RT of the dependence graph has a cycle",
    "sched.negative-cycle": "no RT is scheduled before cycle 0",
    "sched.overrun": "no RT's resource usage spills past the schedule length",
    "sched.dependence": "dependence edges (incl. OPU latency) are respected",
    "sched.double-booking": "no resource holds two different usages in a cycle",
    "sched.budget": "the schedule fits the requested cycle budget",
    # -- register-allocation legality (regalloc boundary) --------------
    "regalloc.unallocated": "every live interval is bound to a register",
    "regalloc.capacity": "register indices stay inside the file capacity",
    "regalloc.overlap": "no two overlapping live ranges share a cell",
    "regalloc.undefined-read": "every register read happens after its write lands",
    # -- datapath style rules (arch.validate migration) ----------------
    "arch.no-opus": "a datapath has at least one OPU",
    "arch.unfed-port": "every input port is register-fed or immediate",
    "arch.no-bus": "every result-producing OPU drives a bus",
    "arch.output-drives-bus": "output port blocks do not drive buses",
    "arch.input-reads-rf": "input port blocks have no register operands",
    "arch.mux-duplicate": "a multiplexer never sees the same bus twice",
    "arch.undriven-bus": "every bus has a driving OPU",
    "arch.dead-bus": "a result bus should reach at least one register file",
    "arch.unread-rf": "a register file should feed at least one port",
    "arch.unwritten-rf": "a register file should be reachable from a bus",
    "arch.thin-mux": "a multiplexer should have at least two inputs",
    # -- machine-code lint (encoded image) -----------------------------
    "mc.decode": "the image decodes against the core's instruction format",
    "mc.bad-jump": "control transfers stay inside the program",
    "mc.stack": "LOOP/ENDL nesting fits the controller's loop stack",
    "mc.unreachable": "every word is reachable from the reset vector",
    "mc.no-exit": "every control loop passes an IDLE/HALT settle point",
    "mc.oob": "register/RAM/ROM addresses stay inside the addressed store",
    "mc.bus-hazard": "every register write consumes a value maturing on its bus",
    "mc.uninit-read": "no operand reads a register cell never written",
    "mc.dead-write": "no register write is dead on every path",
}
