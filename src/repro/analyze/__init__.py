"""repro.analyze — static analysis of every pipeline artifact.

Two halves (see ``docs/analysis.md``):

* **Stage verifiers** (:mod:`repro.analyze.verifiers`): pure invariant
  checks on the DFG, the RT program, the schedule, the register
  allocation and the datapath, wired into ``Toolchain`` behind the
  ``verify=`` compile option (``off`` / ``boundaries`` / ``strict``).
* **Machine-code lint** (:mod:`repro.analyze.lint`): CFG construction
  and classic dataflow over the *encoded image*, the simulation-free
  oracle behind ``repro check`` and the fuzz harness.

Both report through the shared :class:`Finding` schema; every code is
registered in :data:`CHECK_CODES`.
"""

from __future__ import annotations

from ..errors import VerificationError
from .findings import CHECK_CODES, Finding, Severity, error, warning
from .lint import build_cfg, lint_program
from .verifiers import (
    verify_allocation,
    verify_datapath,
    verify_dfg,
    verify_rt_program,
    verify_schedule,
    verify_stage,
    verify_state,
)

__all__ = [
    "CHECK_CODES",
    "Finding",
    "Severity",
    "VerificationError",
    "build_cfg",
    "enforce",
    "error",
    "lint_program",
    "verify_allocation",
    "verify_datapath",
    "verify_dfg",
    "verify_rt_program",
    "verify_schedule",
    "verify_stage",
    "verify_state",
    "warning",
]


def enforce(findings: list[Finding], context: str) -> None:
    """Raise :class:`VerificationError` if any finding is an error.

    Warnings never raise; the caller decides whether to surface them
    (``repro check`` prints them, the pipeline only counts them).
    """
    errors = [f for f in findings if f.is_error]
    if errors:
        listing = "\n  - ".join(f.render() for f in errors)
        raise VerificationError(
            f"verification failed {context}: {len(errors)} error(s):\n"
            f"  - {listing}", findings)
