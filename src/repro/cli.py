"""Command-line interface: compile, batch, explore, run and inspect
without writing code.

::

    python -m repro compile app.dsp --core audio --budget 64 --listing
    python -m repro compile app.dsp --stop-after schedule
    python -m repro batch app1.dsp app2.dsp --core audio --budget 64
    python -m repro explore app1.dsp app2.dsp --mults 1-2 --alus 1,2 --jobs 4
    python -m repro explore app1.dsp app2.dsp --rf-sizes 8-16 --merges none,alu-operands --refine
    python -m repro run app.dsp --core fir --input x=0.5,-0.25,0.125
    python -m repro check app.dsp --core audio
    python -m repro check --image program.json --json
    python -m repro fuzz --core fir --time 120 --report fuzz_report.json
    python -m repro corpus --count 200 --out BENCH_corpus.json
    python -m repro inspect-core --core audio
    python -m repro run-image program.json --input x=100,200
    python -m repro serve --port 8750 --workers 4 --cache /var/cache/repro
    python -m repro worker http://build-host:8750 --name lab-2
    python -m repro cache stats --cache-dir /var/cache/repro --json
    python -m repro cache gc --max-bytes 100000000 --min-age 600
    python -m repro profile --app audio -n 5 --out BENCH_compile_profile.json
    python -m repro compile app.dsp --timings --trace trace.json

Cores are registered core names (``audio``, ``fir``, ``tiny``,
``adaptive``, plus anything added via
:func:`repro.arch.register_core`) or paths to JSON core descriptions
produced by :func:`repro.arch.dump_core`; resolution is
:func:`repro.arch.resolve_core` — the same rule the library uses.

Every compile-related flag (``--budget``, ``-O``, ``--cover``,
``--mode``, ``--repeat``, ``--stop-after``, ``--cache-dir``,
``--no-disk-cache``) is declared exactly once, by
:meth:`repro.options.CompileOptions.add_to_parser`; each subcommand
names the flag groups it exposes and :meth:`CompileOptions.from_args`
turns the parsed namespace back into the typed options object the
:class:`repro.toolchain.Toolchain` consumes.

``compile``, ``batch`` and ``explore`` keep a persistent stage cache
under ``~/.cache/repro`` (override with ``--cache-dir`` or
``$REPRO_CACHE_DIR``; disable with ``--no-disk-cache``), so re-runs in
new processes restore artifacts instead of recompiling.

Every verb records into a live :mod:`repro.obs` registry: ``--timings``
prints the span timeline to stderr, ``--trace FILE`` writes a Chrome
``trace_event`` JSON, and ``repro profile`` times repeated cold/warm
compiles into a per-stage p50/p95 table (see ``docs/observability.md``).
The complete reference, including exit codes and JSON output shapes, is
in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .arch import (
    MERGE_VARIANTS,
    ExploreCache,
    SweepSpec,
    explore,
    explore_refined,
    pareto_axes,
    pareto_front,
    resolve_core,
)
from .core import ClassTable, InstructionSet
from .encode import derive_format, dump_program, load_program
from .errors import ReproError
from .fixed import FixedFormat
from .lang import parse_source
from .obs import (
    Telemetry,
    profile_compile,
    render_profile,
    use_telemetry,
    write_chrome_trace,
    write_profile,
)
from .options import CompileOptions
from .pipeline import PIPELINE_STAGES, StageCache, open_backend
from .report import (
    batch_report,
    class_table_report,
    exploration_report,
    gantt_chart,
    occupation_chart,
    summary_report,
    timeline,
)
from .sim import ENGINES, batch as _batch, run_batch, run_program
from .toolchain import Toolchain


def engine_argument(value: str) -> str:
    """``--engine`` argparse type: make "numpy without numpy" a usage
    error (exit 2, with the fix named) instead of a late failure.

    ``auto`` stays permissive — it silently falls back to the decoded
    engine when numpy is absent, which is the whole point of ``auto``.
    The availability flag is read through the module at call time so
    tests can monkeypatch :data:`repro.sim.batch.NUMPY_AVAILABLE`.
    """
    if value == "numpy" and not _batch.NUMPY_AVAILABLE:
        raise argparse.ArgumentTypeError(
            "engine 'numpy' requires numpy, which is not installed "
            "(pip install repro[batch]); use --engine decoded, or "
            "--engine auto to fall back automatically")
    return value


def parse_stream(spec: str, fmt: FixedFormat) -> tuple[str, list[int]]:
    """``port=v1,v2,...`` — floats are quantised, bare ints passed through."""
    try:
        port, values = spec.split("=", 1)
    except ValueError:
        raise ReproError(f"bad --input {spec!r}: expected port=v1,v2,...") from None
    samples: list[int] = []
    for token in values.split(","):
        token = token.strip()
        if not token:
            continue
        if "." in token or "e" in token.lower():
            samples.append(fmt.from_float(float(token)))
        else:
            samples.append(fmt.wrap(int(token)))
    return port, samples


def parse_sweep(spec: str, flag: str) -> list[int]:
    """``1,2,4`` or ``1-4`` (or a mix) → sorted unique sweep values."""
    counts: set[int] = set()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            if "-" in token:
                low_text, high_text = token.split("-", 1)
                low, high = int(low_text), int(high_text)
            else:
                low = high = int(token)
        except ValueError:
            raise ReproError(
                f"bad {flag} {spec!r}: expected values like 1,2 or 1-4"
            ) from None
        if low > high:
            raise ReproError(
                f"bad {flag} {spec!r}: reversed range {token!r} "
                f"({low} > {high})"
            )
        counts.update(range(low, high + 1))
    if not counts or min(counts) < 1:
        raise ReproError(f"bad {flag} {spec!r}: sweep values must be >= 1")
    return sorted(counts)


def parse_merge_variants(spec: str) -> list[str]:
    """``none,alu-operands`` → ordered unique known merge variants."""
    variants: list[str] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in MERGE_VARIANTS:
            raise ReproError(
                f"bad --merges {spec!r}: unknown variant {token!r} "
                f"(known: {', '.join(sorted(MERGE_VARIANTS))})"
            )
        if token not in variants:
            variants.append(token)
    if not variants:
        raise ReproError(f"bad --merges {spec!r}: no variants named")
    return variants


def cache_summary_line(state, telemetry: Telemetry | None = None) -> str:
    """One line describing where a compile's stages came from.

    With a live registry the figures come from its ``stagecache.*``
    counters — the single source of truth the cache tiers themselves
    emit (so the line and ``--timings``/``--trace`` can never
    disagree); without one, from the state's per-stage cache sources.
    """
    if telemetry is not None and telemetry.enabled:
        hits = telemetry.counters.get("stagecache.hit", 0)
        disk = telemetry.counters.get("stagecache.disk_hit", 0)
        return (f"stage cache  : {hits}/{len(state.completed)} stages "
                f"cached ({disk} disk)")
    counts = state.cache_counts()
    cached = counts["memory"] + counts["disk"]
    return (f"stage cache  : {cached}/{len(state.completed)} stages cached "
            f"({counts['disk']} disk)")


def command_telemetry(args: argparse.Namespace) -> Telemetry:
    """The live registry one CLI command records into.

    Always enabled — the per-compile cost is a handful of spans, and it
    makes the cache summary line, ``--timings`` and ``--trace`` all
    read from the same record.
    """
    return Telemetry()


def emit_telemetry(args: argparse.Namespace, telemetry: Telemetry) -> None:
    """Honor ``--timings``/``--trace`` after a command's work is done.

    Both land on stderr (the trace JSON on disk), so ``--json`` stdout
    consumers never see telemetry mixed into their payload.
    """
    if getattr(args, "timings", False):
        print(timeline(telemetry), file=sys.stderr)
    if getattr(args, "trace", None):
        path = write_chrome_trace(telemetry, args.trace)
        print(f"chrome trace written to {path} "
              f"(open in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)


def add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """The observability flags every verb-like subcommand shares."""
    parser.add_argument(
        "--timings", action="store_true",
        help="print the telemetry timeline (per-stage spans, counters, "
             "events) to stderr")
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON of the command to FILE")


def cmd_compile(args: argparse.Namespace) -> int:
    options = CompileOptions.from_args(args)
    obs = command_telemetry(args)
    # Without a disk store, a full compile needs no snapshots at all
    # (the classic cold path); --stop-after always needs a cache so the
    # per-stage fingerprints are recorded.
    if options.disk_cache:
        toolchain = Toolchain(args.core, options, telemetry=obs)
    else:
        toolchain = Toolchain(
            args.core, options, telemetry=obs,
            cache=StageCache() if options.stop_after else None)
    source = Path(args.source).read_text()
    state = toolchain.run_pipeline(source)
    emit_telemetry(args, obs)
    if options.stop_after:
        provides = {s.name: "/".join(s.provides) for s in PIPELINE_STAGES}
        print(f"partial compilation (stopped after {options.stop_after!r}):")
        for stage in state.completed:
            source_tag = state.cache_sources.get(stage)
            cached = f"  [{source_tag}]" if source_tag else ""
            print(f"  {stage:<9} {state.fingerprints[stage][:16]}  "
                  f"-> {provides[stage]}{cached}")
        if "schedule" in state.artifacts:
            print(f"schedule length: {state.schedule.length} cycles")
        # Honor the output flags whose artifacts were produced; name the
        # ones the partial compile stopped short of.
        if args.occupation or args.gantt:
            if "schedule" in state.artifacts:
                if args.occupation:
                    print()
                    print(occupation_chart(state.schedule))
                if args.gantt:
                    print()
                    print(gantt_chart(state.schedule))
            else:
                print("(--occupation/--gantt ignored: stopped before "
                      "'schedule')", file=sys.stderr)
        if args.listing or args.out:
            if "binary" in state.artifacts:
                if args.listing:
                    print()
                    print(state.binary.listing())
                if args.out:
                    Path(args.out).write_text(dump_program(state.binary))
                    print(f"\nmicrocode image written to {args.out}")
            else:
                print("(--listing/--out ignored: stopped before 'assemble')",
                      file=sys.stderr)
        return 0
    compiled = state.as_compiled()
    print(summary_report(compiled))
    if options.disk_cache:
        print(cache_summary_line(state, obs))
    if args.occupation:
        print()
        print(occupation_chart(compiled.schedule))
    if args.gantt:
        print()
        print(gantt_chart(compiled.schedule))
    if args.listing:
        print()
        print(compiled.binary.listing())
    if args.out:
        Path(args.out).write_text(dump_program(compiled.binary))
        print(f"\nmicrocode image written to {args.out}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    options = CompileOptions.from_args(args)
    obs = command_telemetry(args)
    toolchain = Toolchain(args.core, options, telemetry=obs)
    sources = [Path(source).read_text() for source in args.sources]
    names = [Path(source).name for source in args.sources]
    result = toolchain.compile_many(sources, names=names)
    emit_telemetry(args, obs)
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        used: dict[str, int] = {}
        for entry in result.entries:
            if entry.state is not None:
                stem = Path(entry.name).stem
                # Sources from different directories may share a stem;
                # never let one image clobber another.
                count = used.get(stem, 0)
                used[stem] = count + 1
                suffix = f"-{count + 1}" if count else ""
                image = out_dir / f"{stem}{suffix}.json"
                image.write_text(dump_program(entry.state.binary))
    if args.json:
        counts = result.stage_counts()
        payload = {
            "core": toolchain.core.name,
            "options": options.to_dict(),
            "seconds": round(result.seconds, 4),
            "cache": counts,
            "applications": [
                {
                    "source": name,
                    "application": (entry.state.dfg.name
                                    if entry.state is not None else None),
                    "ok": entry.ok,
                    "n_cycles": (entry.state.schedule.length
                                 if entry.state is not None else None),
                    "seconds": round(entry.seconds, 4),
                    "error": entry.error,
                }
                for name, entry in zip(args.sources, result.entries)
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(batch_report(result))
        counts = result.stage_counts()
        ok = sum(1 for entry in result.entries if entry.ok)
        print(f"\n{ok}/{len(result.entries)} applications compiled in "
              f"{result.seconds:.3f}s; stages: {counts['executed']} executed, "
              f"{counts['memory']} memory hits, {counts['disk']} disk hits")
        if args.out_dir and ok:
            print(f"microcode images written to {args.out_dir}")
    return 0 if result.ok else 1


def sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    """The multi-dimensional candidate grid the explore flags name."""
    return SweepSpec(
        n_mults=tuple(parse_sweep(args.mults, "--mults")),
        n_alus=tuple(parse_sweep(args.alus, "--alus")),
        n_rams=tuple(parse_sweep(args.rams, "--rams")),
        rf_sizes=tuple(parse_sweep(args.rf_sizes, "--rf-sizes")),
        ram_sizes=tuple(parse_sweep(args.ram_sizes, "--ram-sizes")),
        rom_sizes=tuple(parse_sweep(args.rom_sizes, "--rom-sizes")),
        merge_variants=tuple(parse_merge_variants(args.merges)),
    )


def cmd_explore(args: argparse.Namespace) -> int:
    options = CompileOptions.from_args(args)
    obs = command_telemetry(args)
    dfgs = [parse_source(Path(source).read_text()) for source in args.sources]
    spec = sweep_spec_from_args(args)
    axes = pareto_axes(spec)
    cache = (ExploreCache(disk=open_backend(options.cache_dir))
             if options.disk_cache else None)
    progress = None
    if args.progress:
        def progress(record: dict) -> None:
            tag = "memo" if record["cached"] else (
                "ok" if record["feasible"] else "infeasible")
            print(f"  [{record['done']}/{record['total']}] "
                  f"{record['allocation']} {tag}", file=sys.stderr)
    with use_telemetry(obs):
        if args.refine:
            # NB: an empty ExploreCache is falsy (it has __len__), so
            # the disk-backed cache must be tested against None, not
            # truthiness.
            sweep = explore_refined(dfgs, spec, options=options,
                                    jobs=args.jobs, cache=cache, axes=axes,
                                    progress=progress)
            points, front_points = sweep.points, sweep.front
        else:
            sweep = None
            points = explore(dfgs, spec.allocations(), options=options,
                             jobs=args.jobs, cache=cache,
                             progress=progress)
            front_points = pareto_front(points, axes=axes)
    emit_telemetry(args, obs)
    if args.json:
        front = {id(p) for p in front_points}
        payload = {
            "applications": [dfg.name for dfg in dfgs],
            "options": options.to_dict(),
            "pareto_axes": list(axes),
            "sweep": {
                "grid": spec.size,
                "evaluated": len(points),
                "refined": args.refine,
                "coarse": sweep.n_coarse if sweep else None,
                "fine": sweep.n_refined if sweep else None,
            },
            "points": [
                {
                    "allocation": {
                        "n_mult": p.allocation.n_mult,
                        "n_alu": p.allocation.n_alu,
                        "n_ram": p.allocation.n_ram,
                        "rf_size": p.allocation.rf_size,
                        "ram_size": p.allocation.ram_size,
                        "rom_size": p.allocation.rom_size,
                        "merge_variant": p.allocation.merge_variant,
                    },
                    "n_opus": p.n_opus,
                    "n_rfs": p.n_rfs,
                    "storage_words": p.storage_words,
                    "feasible": p.feasible,
                    "schedule_lengths": p.schedule_lengths,
                    "worst_length": (p.worst_length if p.feasible else None),
                    "failures": p.failures,
                    "pareto": id(p) in front,
                }
                for p in points
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(exploration_report(points, budget=options.budget,
                                 front=front_points))
        feasible = sum(1 for p in points if p.feasible)
        print(f"\n{len(points)} candidates, {feasible} feasible, "
              f"{len(front_points)} on the Pareto front")
        if sweep is not None:
            print(f"coarse-to-fine: evaluated {sweep.n_evaluated} of "
                  f"{sweep.n_grid} grid points "
                  f"({sweep.n_coarse} coarse + {sweep.n_refined} refined)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    options = CompileOptions.from_args(args)
    obs = command_telemetry(args)
    toolchain = Toolchain(args.core, options, cache=None, telemetry=obs)
    source = Path(args.source).read_text()
    core = toolchain.core
    fmt = FixedFormat(core.data_width, core.frac_bits)
    inputs = dict(parse_stream(spec, fmt) for spec in args.input)
    outputs = toolchain.run(source, inputs, args.frames, engine=args.engine)
    emit_telemetry(args, obs)
    for port in sorted(outputs):
        rendered = ", ".join(str(v) for v in outputs[port])
        print(f"{port}: [{rendered}]")
        if args.floats:
            floats = ", ".join(f"{fmt.to_float(v):+.5f}" for v in outputs[port])
            print(f"{port} (float): [{floats}]")
    return 0


def cmd_run_image(args: argparse.Namespace) -> int:
    program = load_program(Path(args.image).read_text())
    fmt = FixedFormat(program.core.data_width, program.core.frac_bits)
    inputs = dict(parse_stream(spec, fmt) for spec in args.input)
    if args.engine == "scalar":
        outputs = run_program(program, inputs, args.frames)
    else:
        outputs = run_batch(program, [inputs], args.frames,
                            engine=args.engine)[0]
    for port in sorted(outputs):
        print(f"{port}: [{', '.join(str(v) for v in outputs[port])}]")
    return 0


def parse_levels(spec: str) -> tuple[int, ...]:
    """``0,1,2`` → ordered unique optimizer levels."""
    levels: list[int] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            level = int(token)
        except ValueError:
            raise ReproError(
                f"bad --levels {spec!r}: expected integers like 0,1,2"
            ) from None
        if level not in (0, 1, 2):
            raise ReproError(
                f"bad --levels {spec!r}: optimizer levels are 0, 1 or 2")
        if level not in levels:
            levels.append(level)
    if not levels:
        raise ReproError(f"bad --levels {spec!r}: no levels named")
    return tuple(levels)


def parse_engines(spec: str) -> tuple[str, ...]:
    """``scalar,decoded,numpy`` → ordered unique differential engines."""
    from .gen import available_engines

    known = ("scalar", "decoded", "numpy")
    engines: list[str] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in known:
            raise ReproError(
                f"bad --engines {spec!r}: unknown engine {token!r} "
                f"(known: {', '.join(known)}; 'auto' is not a "
                f"differential engine)")
        if token == "numpy" and "numpy" not in available_engines():
            raise ReproError(
                "engine 'numpy' requires numpy, which is not installed "
                "(pip install repro[batch]); drop it from --engines")
        if token not in engines:
            engines.append(token)
    if not engines:
        raise ReproError(f"bad --engines {spec!r}: no engines named")
    return tuple(engines)


def _gen_spec_from_args(args: argparse.Namespace):
    """The generator shape knobs ``fuzz``/``corpus`` expose."""
    from .gen import GenSpec

    fields = {}
    if args.max_ops is not None:
        fields["max_ops"] = args.max_ops
    if getattr(args, "min_ops", None) is not None:
        fields["min_ops"] = args.min_ops
    return GenSpec(**fields)


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .gen import FuzzConfig, fuzz

    obs = command_telemetry(args)
    count = args.count
    if count is None and args.time is None:
        count = 100
    config = FuzzConfig(
        core=args.core,
        seed=args.seed,
        count=count,
        time_budget=args.time,
        levels=parse_levels(args.levels),
        engines=parse_engines(args.engines) if args.engines else None,
        n_frames=args.frames,
        n_lanes=args.lanes,
        shrink=not args.no_shrink,
        spec=_gen_spec_from_args(args),
        inject=args.inject,
        lint=not args.no_lint,
    )
    progress = None
    if args.progress:
        def progress(record: dict) -> None:
            print(f"  [{record['done']}] seed={record['seed']} "
                  f"{record['status']}", file=sys.stderr)
    with use_telemetry(obs):
        report = fuzz(config, progress=progress)
    emit_telemetry(args, obs)
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(f"fuzz: core={report.core} seed={report.seed} "
              f"levels={','.join(str(level) for level in report.levels)} "
              f"engines={','.join(report.engines)}")
        print(f"{report.n_cases} cases in {report.seconds:.2f}s: "
              f"{report.n_ok} ok, {report.n_infeasible} infeasible, "
              f"{len(report.failures)} failures")
        for failure in report.failures:
            print(f"\nFAILURE seed={failure.seed} [{failure.status}] "
                  f"{failure.detail}")
            if failure.shrunk_source is not None:
                print(f"shrunk {failure.n_nodes} -> {failure.shrunk_nodes} "
                      f"nodes:")
                print(failure.shrunk_source.rstrip())
            print(f"replay: repro fuzz --core {report.core} "
                  f"--seed {failure.seed} --count 1")
        if args.report:
            print(f"\nfuzz report written to {args.report}")
    return 0 if report.ok else 1


def cmd_corpus(args: argparse.Namespace) -> int:
    from .gen import run_corpus

    report = run_corpus(
        args.count,
        seed=args.seed,
        core=args.core,
        spec=_gen_spec_from_args(args),
        levels=parse_levels(args.levels),
        engines=parse_engines(args.engines) if args.engines else None,
        n_frames=args.frames,
        n_lanes=args.lanes,
    )
    if args.out:
        report.write(args.out)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(f"corpus: core={report.core} seed={report.seed} "
              f"count={report.count} ({report.attempts} seeds drawn)")
        for level, stats in sorted(report.compile_stats.items()):
            rate = stats["apps_per_second"]
            print(f"  compile -O{level}: {stats['seconds']:.3f}s "
                  f"({rate:.0f} apps/s, {stats['cycles_total']} cycles total)"
                  if rate is not None else
                  f"  compile -O{level}: {stats['seconds']:.3f}s")
        for engine, stats in report.sim_stats.items():
            rate = stats["lane_frames_per_second"]
            print(f"  sim {engine}: {stats['seconds']:.3f}s "
                  f"({rate:.0f} lane-frames/s)"
                  if rate is not None else
                  f"  sim {engine}: {stats['seconds']:.3f}s")
        print(f"  mismatches: {report.mismatches}")
        for line in report.failures:
            print(f"  failure: {line}")
        if args.out:
            print(f"corpus report written to {args.out}")
    return 0 if report.ok else 1


#: Cores the built-in ``repro profile`` applications naturally target.
PROFILE_APPS = {"audio": "audio", "fir": "fir", "stress": "audio"}


def _profile_application(name: str):
    from .apps import audio_application, fir_application, stress_application

    if name == "audio":
        return audio_application()
    if name == "fir":
        return fir_application([0.05 * (k + 1) for k in range(8)],
                               name="fir8")
    return stress_application(8)


def cmd_profile(args: argparse.Namespace) -> int:
    if args.runs < 1:
        raise ReproError(f"--runs must be >= 1, got {args.runs}")
    if args.source is not None:
        application = Path(args.source).read_text()
        core = args.core or "audio"
    else:
        application = _profile_application(args.app)
        core = args.core or PROFILE_APPS[args.app]
    options = CompileOptions.from_args(args)
    result = profile_compile(application, core=core, options=options,
                             runs=args.runs)
    print(render_profile(result))
    if args.out:
        path = write_profile(result, args.out)
        print(f"\nprofile written to {path}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .analyze import lint_program, verify_state

    if args.image is not None and args.source is not None:
        raise ReproError("give a source file or --image, not both")
    if args.image is None and args.source is None:
        raise ReproError("nothing to check: give a source file or --image")
    obs = command_telemetry(args)
    if args.image is not None:
        program = load_program(Path(args.image).read_text())
        with use_telemetry(obs):
            findings = lint_program(program)
        subject = args.image
    else:
        # Compile with verification off: the point of `check` is to
        # report every finding at once, not to stop at the first bad
        # stage boundary the way `--verify strict` does.
        options = CompileOptions.from_args(args)
        if options.disk_cache:
            toolchain = Toolchain(args.core, options, telemetry=obs)
        else:
            toolchain = Toolchain(args.core, options, telemetry=obs,
                                  cache=None)
        source = Path(args.source).read_text()
        with use_telemetry(obs):
            state = toolchain.run_pipeline(source)
            findings = verify_state(state)
        subject = args.source
    emit_telemetry(args, obs)
    n_errors = sum(1 for f in findings if f.is_error)
    n_warnings = len(findings) - n_errors
    if args.json:
        print(json.dumps({
            "subject": subject,
            "ok": n_errors == 0,
            "errors": n_errors,
            "warnings": n_warnings,
            "findings": [f.to_dict() for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        tally = (f"{n_errors} error{'s' if n_errors != 1 else ''}, "
                 f"{n_warnings} warning{'s' if n_warnings != 1 else ''}")
        if findings:
            print(f"check: {subject}: {tally}")
        else:
            print(f"check: {subject}: clean ({tally})")
    return 1 if n_errors else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .pipeline import default_cache_dir
    from .serve import CompileServer, ServerConfig

    if args.no_cache:
        cache = None
    elif args.cache is not None:
        cache = args.cache
    else:
        cache = str(default_cache_dir())
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        max_queue=args.queue,
        job_timeout=args.timeout if args.timeout > 0 else None,
        rate_limit=args.rate,
        rate_burst=args.burst,
        cache=cache,
        cores=frozenset(args.cores.split(",")) if args.cores else None,
    )
    server = CompileServer(config)

    async def main() -> None:
        await server.start()
        mode = (f"{config.workers} {config.executor} workers"
                if config.workers else "pull mode (waiting for workers)")
        print(f"repro serve: http://{config.host}:{server.port} "
              f"[{mode}] cache={cache or 'off'}", file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: stopped", file=sys.stderr)
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    import socket

    from .serve import run_worker

    name = args.name or f"{socket.gethostname()}-{os.getpid()}"
    print(f"repro worker {name!r}: pulling from {args.server}",
          file=sys.stderr)
    try:
        completed = run_worker(args.server, name=name, poll=args.poll,
                               max_jobs=args.max_jobs,
                               max_idle=args.max_idle)
    except KeyboardInterrupt:
        print("repro worker: stopped", file=sys.stderr)
        return 0
    print(f"repro worker {name!r}: {completed} jobs completed",
          file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .pipeline import backend_stats

    obs = command_telemetry(args)
    with use_telemetry(obs):
        backend = open_backend(args.cache_dir)
        if args.action == "stats":
            payload = backend_stats(backend)
        elif args.action == "gc":
            removed = backend.gc(args.max_bytes, min_age=args.min_age)
            payload = {"removed": removed, **backend_stats(backend)}
        elif args.action == "verify":
            report = backend.verify()
            payload = {**report.to_dict(), **backend_stats(backend)}
        else:  # clear
            removed = backend.clear()
            payload = {"removed": removed, **backend_stats(backend)}
    emit_telemetry(args, obs)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"cache        : {payload['backend']} at "
          f"{payload.get('location', '?')}")
    print(f"entries      : {payload['entries']} "
          f"({payload['bytes']} bytes"
          + (f", bound {payload['max_bytes']}" if payload.get("max_bytes")
             else "") + ")")
    if args.action == "gc":
        print(f"gc           : {payload['removed']} entries removed")
    elif args.action == "clear":
        print(f"clear        : {payload['removed']} entries removed")
    elif args.action == "verify":
        state = ("clean" if payload["clean"]
                 else f"{payload['corrupt']} corrupt, "
                      f"{payload['version_skew']} version-skewed dropped")
        print(f"verify       : {payload['checked']} checked, {state}")
    if args.action == "verify" and not payload["clean"]:
        return 1
    return 0


def cmd_inspect_core(args: argparse.Namespace) -> int:
    core = resolve_core(args.core)
    table = ClassTable.from_core(core) if core.class_defs else ClassTable.auto(core)
    fmt = derive_format(core)
    datapath = core.datapath
    print(f"core        : {core.name}")
    print(f"OPUs        : {', '.join(datapath.opus)}")
    print(f"reg. files  : " + ", ".join(
        f"{rf.name}[{rf.size}]" for rf in datapath.register_files.values()))
    print(f"buses       : {', '.join(datapath.buses)}")
    print(f"instruction : {fmt.width} bits, {len(fmt.fields)} fields")
    print(f"controller  : stack {core.controller.stack_depth}, "
          f"flags {core.controller.n_flags}, "
          f"conditionals {'yes' if core.controller.supports_conditionals else 'no'}")
    print()
    print(class_table_report(table))
    if core.instruction_types:
        iset = InstructionSet.from_desired(table.names, core.instruction_types)
        print()
        maximal = ", ".join(
            "{" + ", ".join(sorted(t)) + "}" for t in iset.maximal_types()
        )
        print(f"instruction set: {len(iset)} types; maximal: {maximal}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Retargetable code generation for in-house DSP cores "
                    "(Strik & van Meerbergen, DATE 1995).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile a source file to microcode")
    c.add_argument("source")
    c.add_argument("--core", default="audio")
    CompileOptions.add_to_parser(c, include=(
        "budget", "opt", "cover", "mode", "repeat", "stop_after", "verify",
        "cache"))
    c.add_argument("--listing", action="store_true")
    c.add_argument("--occupation", action="store_true")
    c.add_argument("--gantt", action="store_true")
    c.add_argument("--out", default=None, help="write the microcode image JSON")
    add_telemetry_flags(c)
    c.set_defaults(handler=cmd_compile)

    b = sub.add_parser(
        "batch",
        help="compile an application set against one core in a single "
             "cached session",
    )
    b.add_argument("sources", nargs="+", help="application source files")
    b.add_argument("--core", default="audio")
    CompileOptions.add_to_parser(b, include=(
        "budget", "opt", "cover", "cache"))
    b.add_argument("--out-dir", default=None, metavar="DIR",
                   help="write one microcode image JSON per application")
    b.add_argument("--json", action="store_true",
                   help="machine-readable output")
    add_telemetry_flags(b)
    b.set_defaults(handler=cmd_batch)

    e = sub.add_parser(
        "explore",
        help="design-space exploration: sweep OPU allocations over an "
             "application set (phase 1 of the paper)",
    )
    e.add_argument("sources", nargs="+",
                   help="application source files (the representative set)")
    e.add_argument("--mults", default="1,2", metavar="SWEEP",
                   help="multiplier counts, e.g. 1,2 or 1-4 (default 1,2)")
    e.add_argument("--alus", default="1,2", metavar="SWEEP",
                   help="ALU counts (default 1,2)")
    e.add_argument("--rams", default="1,2", metavar="SWEEP",
                   help="RAM counts (default 1,2)")
    e.add_argument("--rf-sizes", default="16", metavar="SWEEP",
                   help="register-file capacities per operand port, "
                        "e.g. 8,16 or 8-32 (default 16)")
    e.add_argument("--ram-sizes", default="256", metavar="SWEEP",
                   help="data-memory words per RAM (default 256)")
    e.add_argument("--rom-sizes", default="128", metavar="SWEEP",
                   help="coefficient-ROM words (default 128)")
    e.add_argument("--merges", default="none", metavar="VARIANTS",
                   help="register-file merge variants to sweep: "
                        f"{', '.join(sorted(MERGE_VARIANTS))} (default none)")
    e.add_argument("--refine", action="store_true",
                   help="coarse-to-fine sweep: evaluate a thinned grid, "
                        "then only the fine neighborhoods of its Pareto "
                        "front")
    CompileOptions.add_to_parser(e, include=("budget", "opt", "cache"))
    e.add_argument("--jobs", type=int, default=None,
                   help="evaluate candidates in parallel over this many "
                        "worker processes")
    e.add_argument("--json", action="store_true",
                   help="machine-readable output")
    e.add_argument("--progress", action="store_true",
                   help="print one line per candidate to stderr as "
                        "results land")
    add_telemetry_flags(e)
    e.set_defaults(handler=cmd_explore)

    r = sub.add_parser("run", help="compile and simulate a source file")
    r.add_argument("source")
    r.add_argument("--core", default="audio")
    CompileOptions.add_to_parser(r, include=("budget", "opt"))
    r.add_argument("--input", action="append", default=[],
                   metavar="PORT=V1,V2,...")
    r.add_argument("--frames", type=int, default=None)
    r.add_argument("--floats", action="store_true",
                   help="also print outputs as real numbers")
    r.add_argument("--engine", default="auto", choices=ENGINES,
                   type=engine_argument,
                   help="simulator engine: the scalar oracle, the "
                        "decoded single-lane interpreter, the numpy "
                        "batch engine, or auto (default)")
    add_telemetry_flags(r)
    r.set_defaults(handler=cmd_run)

    p = sub.add_parser(
        "profile",
        help="compile an application repeatedly (cold and warm) and "
             "report per-stage p50/p95 wall clock",
    )
    p.add_argument("source", nargs="?", default=None,
                   help="application source file (default: a built-in "
                        "application, see --app)")
    p.add_argument("--app", default="audio", choices=sorted(PROFILE_APPS),
                   help="built-in application to profile when no source "
                        "file is given (default audio)")
    p.add_argument("--core", default=None,
                   help="target core (default: the app's natural core, "
                        "or 'audio' for a source file)")
    CompileOptions.add_to_parser(p, include=("budget", "opt"))
    p.add_argument("-n", "--runs", type=int, default=5,
                   help="cold runs and warm runs to time (default 5)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the profile JSON "
                        "(e.g. BENCH_compile_profile.json)")
    p.set_defaults(handler=cmd_profile)

    f = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random seeded applications through "
             "every -O level and simulator engine against the reference "
             "interpreter",
    )
    f.add_argument("--core", default="fir",
                   help="target core (default fir)")
    f.add_argument("--seed", type=int, default=0,
                   help="base case seed (default 0); failures report the "
                        "exact case seed to replay with --count 1")
    f.add_argument("--count", type=int, default=None,
                   help="number of cases (default 100 when no --time)")
    f.add_argument("--time", type=float, default=None, metavar="SECONDS",
                   help="wall-clock budget; stops after the case that "
                        "crosses it (combines with --count)")
    f.add_argument("--levels", default="0,1,2", metavar="LEVELS",
                   help="optimizer levels to cross (default 0,1,2)")
    f.add_argument("--engines", default=None, metavar="ENGINES",
                   help="engines to compare, e.g. scalar,decoded,numpy "
                        "(default: every engine available)")
    f.add_argument("--frames", type=int, default=6,
                   help="stimulus frames per lane (default 6)")
    f.add_argument("--lanes", type=int, default=3,
                   help="stimulus lanes per case (default 3)")
    f.add_argument("--min-ops", type=int, default=None,
                   help="smallest generated op count")
    f.add_argument("--max-ops", type=int, default=None,
                   help="largest generated op count")
    f.add_argument("--no-shrink", action="store_true",
                   help="report failures unminimized")
    f.add_argument("--inject", default=None, metavar="OP",
                   help="plant an artificial image defect on graphs "
                        "containing OP (harness self-test; the lint "
                        "oracle must flag it without simulating)")
    f.add_argument("--no-lint", action="store_true",
                   help="skip the machine-code lint oracle (differential "
                        "simulation only)")
    f.add_argument("--report", default=None, metavar="FILE",
                   help="write the JSON crash report to FILE")
    f.add_argument("--json", action="store_true",
                   help="machine-readable output")
    f.add_argument("--progress", action="store_true",
                   help="print one line per case to stderr")
    add_telemetry_flags(f)
    f.set_defaults(handler=cmd_fuzz)

    g = sub.add_parser(
        "corpus",
        help="materialize a pinned random corpus, batch-compile it at "
             "every -O level and measure differential simulation "
             "throughput",
    )
    g.add_argument("--core", default="fir",
                   help="target core (default fir)")
    g.add_argument("--seed", type=int, default=0,
                   help="corpus base seed (default 0)")
    g.add_argument("--count", type=int, default=200,
                   help="corpus size (default 200)")
    g.add_argument("--levels", default="0,1,2", metavar="LEVELS",
                   help="optimizer levels (default 0,1,2)")
    g.add_argument("--engines", default=None, metavar="ENGINES",
                   help="engines to time (default: every engine available)")
    g.add_argument("--frames", type=int, default=8,
                   help="stimulus frames per lane (default 8)")
    g.add_argument("--lanes", type=int, default=4,
                   help="stimulus lanes per application (default 4)")
    g.add_argument("--min-ops", type=int, default=None,
                   help="smallest generated op count")
    g.add_argument("--max-ops", type=int, default=None,
                   help="largest generated op count")
    g.add_argument("--out", default=None, metavar="FILE",
                   help="write the throughput report JSON "
                        "(e.g. BENCH_corpus.json)")
    g.add_argument("--json", action="store_true",
                   help="machine-readable output")
    g.set_defaults(handler=cmd_corpus)

    h = sub.add_parser(
        "check",
        help="static analysis: verify every pipeline artifact and lint "
             "the encoded image, without simulating",
    )
    h.add_argument("source", nargs="?", default=None,
                   help="application source file to compile and check")
    h.add_argument("--image", default=None, metavar="FILE",
                   help="lint a saved microcode image instead of "
                        "compiling a source file")
    h.add_argument("--core", default="audio")
    CompileOptions.add_to_parser(h, include=(
        "budget", "opt", "cover", "mode", "repeat", "cache"))
    h.add_argument("--json", action="store_true",
                   help="machine-readable findings")
    add_telemetry_flags(h)
    h.set_defaults(handler=cmd_check)

    i = sub.add_parser("run-image", help="simulate a saved microcode image")
    i.add_argument("image")
    i.add_argument("--input", action="append", default=[],
                   metavar="PORT=V1,V2,...")
    i.add_argument("--frames", type=int, default=None)
    i.add_argument("--engine", default="auto", choices=ENGINES,
                   type=engine_argument,
                   help="simulator engine (default auto)")
    i.set_defaults(handler=cmd_run_image)

    s = sub.add_parser(
        "serve",
        help="compile-as-a-service: an HTTP/JSON server over the "
             "toolchain (see docs/serving.md)",
    )
    s.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    s.add_argument("--port", type=int, default=8750,
                   help="bind port; 0 picks an ephemeral one "
                        "(default 8750)")
    s.add_argument("--workers", type=int, default=2,
                   help="local worker slots; 0 switches to pull mode "
                        "where `repro worker` processes claim jobs "
                        "(default 2)")
    s.add_argument("--executor", default="process",
                   choices=("process", "thread"),
                   help="local worker executor (default process)")
    s.add_argument("--queue", type=int, default=64,
                   help="pending-job bound; beyond it submissions get "
                        "503 (default 64)")
    s.add_argument("--timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="per-job wall-clock limit; 0 disables "
                        "(default 120)")
    s.add_argument("--rate", type=float, default=None, metavar="PER_SEC",
                   help="submissions/second/peer; beyond it submissions "
                        "get 429 (default: unlimited)")
    s.add_argument("--burst", type=int, default=10,
                   help="rate-limit burst allowance (default 10)")
    s.add_argument("--cache", default=None, metavar="SPEC",
                   help="cache backend every job shares: a directory or "
                        "memory:<name> (default: the standard cache dir)")
    s.add_argument("--no-cache", action="store_true",
                   help="serve without a shared cache backend")
    s.add_argument("--cores", default=None, metavar="NAMES",
                   help="restrict served cores, e.g. audio,fir "
                        "(default: every registered core)")
    s.set_defaults(handler=cmd_serve)

    w = sub.add_parser(
        "worker",
        help="pull-mode compile worker: claim queued jobs from a "
             "`repro serve --workers 0` server",
    )
    w.add_argument("server", help="server URL, e.g. http://host:8750")
    w.add_argument("--name", default=None,
                   help="worker name for claims (default host-pid)")
    w.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle polling interval (default 0.5)")
    w.add_argument("--max-jobs", type=int, default=None,
                   help="exit after this many jobs (default: run forever)")
    w.add_argument("--max-idle", type=float, default=None,
                   metavar="SECONDS",
                   help="exit after this long without work "
                        "(default: run forever)")
    w.set_defaults(handler=cmd_worker)

    a = sub.add_parser(
        "cache",
        help="cache-backend administration: stats, gc, verify, clear",
    )
    a.add_argument("action", choices=("stats", "gc", "verify", "clear"),
                   help="stats: describe the store; gc: bound it; "
                        "verify: integrity-check every entry; clear: "
                        "drop everything")
    CompileOptions.add_to_parser(a, include=("cache_dir",))
    a.add_argument("--max-bytes", type=int, default=None,
                   help="gc: evict LRU entries until the store fits "
                        "(default: the backend's own bound)")
    a.add_argument("--min-age", type=float, default=0.0,
                   metavar="SECONDS",
                   help="gc: never evict entries younger than this — "
                        "protects stages of in-flight compiles "
                        "(default 0)")
    a.add_argument("--json", action="store_true",
                   help="machine-readable output")
    add_telemetry_flags(a)
    a.set_defaults(handler=cmd_cache)

    k = sub.add_parser("inspect-core", help="describe a core")
    k.add_argument("--core", default="audio")
    k.set_defaults(handler=cmd_inspect_core)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # The consumer of our stdout went away (`repro ... | head`).
        # That is a clean end, not a user error; point stdout at
        # /dev/null so the interpreter's exit-time flush stays quiet.
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            try:
                os.dup2(devnull, sys.stdout.fileno())
            finally:
                os.close(devnull)
        except OSError:
            pass
        return 0
    except OSError as exc:
        # Missing/unreadable source files, a directory where a file
        # was expected, ... — user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
