"""repro — reproduction of *Efficient Code Generation for In-House
DSP-Cores* (Strik, van Meerbergen, Timmer, Jess, Note; DATE 1995).

A retargetable code generator for small in-house VLIW DSP cores:
register-transfer-based compilation with static instruction-set
conflict modelling, plus every substrate the paper relies on (target
architecture model, application frontend, schedulers, instruction
encoding, cycle-accurate simulation) and the benchmark harness
regenerating the paper's evaluation.

Quick start::

    from repro import audio_core, compile_application

    program = compile_application(source_text, audio_core(), budget=64)
    outputs = program.run({"IN_L": samples_l, "IN_R": samples_r})
"""

from .apps import adaptive_core
from .arch import (
    Allocation,
    CoreSpec,
    ExploreCache,
    RefinedSweep,
    SweepSpec,
    audio_core,
    explore,
    explore_refined,
    fir_core,
    intermediate_architecture,
    pareto_front,
    tiny_core,
)
from .errors import ReproError
from .fixed import Q15, FixedFormat
from .lang import DfgBuilder, parse_source, run_reference
from .opt import OptReport, PassManager, optimize
from .pipeline import (
    BatchResult,
    BatchSession,
    CompiledProgram,
    CompileSession,
    CompileState,
    DiskCache,
    StageCache,
    compile_application,
)

__version__ = "1.4.0"

__all__ = [
    "Allocation",
    "BatchResult",
    "BatchSession",
    "CompileSession",
    "CompileState",
    "CompiledProgram",
    "CoreSpec",
    "DfgBuilder",
    "DiskCache",
    "ExploreCache",
    "FixedFormat",
    "OptReport",
    "PassManager",
    "Q15",
    "RefinedSweep",
    "ReproError",
    "StageCache",
    "SweepSpec",
    "adaptive_core",
    "audio_core",
    "compile_application",
    "explore",
    "explore_refined",
    "fir_core",
    "intermediate_architecture",
    "optimize",
    "pareto_front",
    "parse_source",
    "run_reference",
    "tiny_core",
    "__version__",
]
