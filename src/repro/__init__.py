"""repro — reproduction of *Efficient Code Generation for In-House
DSP-Cores* (Strik, van Meerbergen, Timmer, Jess, Note; DATE 1995).

A retargetable code generator for small in-house VLIW DSP cores:
register-transfer-based compilation with static instruction-set
conflict modelling, plus every substrate the paper relies on (target
architecture model, application frontend, schedulers, instruction
encoding, cycle-accurate simulation) and the benchmark harness
regenerating the paper's evaluation.

Quick start::

    from repro import CompileOptions, Toolchain

    toolchain = Toolchain("audio", CompileOptions(budget=64, opt=2))
    program = toolchain.compile(source_text)
    outputs = program.run({"IN_L": samples_l, "IN_R": samples_r})

:class:`Toolchain` binds a target core (a registered name — see
:func:`repro.arch.registry.list_cores` / :func:`register_core` — a
``CoreSpec`` or a JSON core file), a validated
:class:`CompileOptions` and a two-tier stage cache, then exposes
``compile()``, ``compile_many()``, ``run()`` and ``explore()``.  The
pre-Toolchain entry points (:func:`compile_application`,
:class:`CompileSession`, :class:`BatchSession`) remain as deprecated
wrappers; see ``docs/api.md`` for the migration table.

Observability: hand a :class:`Telemetry` to
``Toolchain(..., telemetry=obs)`` (or scope one with
:func:`use_telemetry`) and every verb records per-stage spans, cache
and subsystem counters, and progress events — see
``docs/observability.md``.

Static analysis: ``Toolchain(..., verify="strict")`` checks invariants
at every stage boundary (raising :class:`VerificationError` on the
first broken artifact), and :func:`lint_program` audits an encoded
image without simulating it — see ``docs/analysis.md``.
"""

from .analyze import (
    Finding,
    Severity,
    lint_program,
    verify_state,
)
from .apps import adaptive_core
from .arch import (
    Allocation,
    CandidateSimulation,
    CoreSpec,
    ExploreCache,
    RefinedSweep,
    SweepSpec,
    audio_core,
    explore,
    explore_refined,
    fir_core,
    get_core,
    intermediate_architecture,
    list_cores,
    pareto_front,
    register_core,
    resolve_core,
    simulate_points,
    tiny_core,
)
from .errors import OptionsError, ReproError, VerificationError
from .fixed import Q15, FixedFormat
from .gen import (
    CorpusReport,
    FuzzConfig,
    FuzzReport,
    GenSpec,
    fuzz,
    generate_corpus,
    generate_dfg,
    run_corpus,
    shrink_dfg,
)
from .lang import DfgBuilder, parse_source, run_reference
from .obs import (
    Telemetry,
    current_telemetry,
    profile_compile,
    set_telemetry,
    use_telemetry,
    write_chrome_trace,
)
from .opt import OptReport, PassManager, optimize
from .options import CompileOptions
from .pipeline import (
    BatchResult,
    BatchSession,
    CacheBackend,
    CompiledProgram,
    CompileSession,
    CompileState,
    DiskCache,
    MemoryBackend,
    StageCache,
    backend_stats,
    compile_application,
    open_backend,
)
from .serve import (
    CompileServer,
    ServeClient,
    ServerConfig,
    run_worker,
    start_in_thread,
)
from .sim import run_batch, run_program, run_programs
from .toolchain import Toolchain

__version__ = "1.10.0"

__all__ = [
    "Allocation",
    "BatchResult",
    "BatchSession",
    "CacheBackend",
    "CandidateSimulation",
    "CompileOptions",
    "CompileServer",
    "CompileSession",
    "CompileState",
    "CompiledProgram",
    "CoreSpec",
    "CorpusReport",
    "DfgBuilder",
    "DiskCache",
    "ExploreCache",
    "Finding",
    "FixedFormat",
    "FuzzConfig",
    "FuzzReport",
    "GenSpec",
    "MemoryBackend",
    "OptReport",
    "OptionsError",
    "PassManager",
    "Q15",
    "RefinedSweep",
    "ReproError",
    "ServeClient",
    "ServerConfig",
    "Severity",
    "StageCache",
    "SweepSpec",
    "Telemetry",
    "Toolchain",
    "VerificationError",
    "adaptive_core",
    "audio_core",
    "backend_stats",
    "compile_application",
    "current_telemetry",
    "explore",
    "explore_refined",
    "fir_core",
    "fuzz",
    "generate_corpus",
    "generate_dfg",
    "get_core",
    "intermediate_architecture",
    "lint_program",
    "list_cores",
    "open_backend",
    "optimize",
    "pareto_front",
    "parse_source",
    "profile_compile",
    "register_core",
    "resolve_core",
    "run_batch",
    "run_corpus",
    "run_program",
    "run_programs",
    "run_reference",
    "run_worker",
    "set_telemetry",
    "shrink_dfg",
    "simulate_points",
    "start_in_thread",
    "tiny_core",
    "use_telemetry",
    "verify_state",
    "write_chrome_trace",
    "__version__",
]
