"""Artificial-resource generation: imposing the instruction set on RTs
(paper, section 6.3).

"For RTs from a class which is also present in a clique a conflict
must be added with the clique as artificial resource.  The clique as
artificial resource is added with as usage the RT class."

Two RTs from different classes of one clique then disagree on the
clique resource (usage = their own class names) and can never share a
cycle; two RTs of the *same* class agree and remain schedulable
together — exactly when the physical resources allow it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtgen.rt import RT, ResourceUse
from .clique_cover import (
    clique_resource_name,
    exact_cover,
    greedy_cover,
    verify_cover,
)
from .conflict_graph import ConflictGraph
from .instruction_set import InstructionSet
from .rtclass import ClassTable


@dataclass
class ConflictModel:
    """Everything derived while imposing an instruction set on a program."""

    table: ClassTable
    instruction_set: InstructionSet
    graph: ConflictGraph
    cover: list[frozenset[str]]
    rts: list[RT]
    #: clique resource name -> member classes, e.g. "iset:ABC" -> {A,B,C}
    artificial_resources: dict[str, frozenset[str]] = field(default_factory=dict)


def impose_instruction_set(
    rts: list[RT],
    table: ClassTable,
    instruction_set: InstructionSet,
    cover: list[frozenset[str]] | None = None,
    cover_algorithm: str = "greedy",
) -> ConflictModel:
    """Step 2b of the compiler (figure 1b): modify the RTs so that "a
    scheduler only creates mcode instructions by combining RTs that are
    physically possible and allowed in the instruction set".

    Parameters
    ----------
    cover:
        Use this edge clique cover instead of computing one (it is
        verified first).  Any valid cover yields valid schedules; the
        cover's granularity only affects scheduler runtime.
    cover_algorithm:
        ``"greedy"`` (default), ``"exact"`` or ``"edge"`` — see
        :mod:`repro.core.clique_cover`.
    """
    instruction_set.validate()
    graph = ConflictGraph.from_instruction_set(instruction_set)
    if cover is None:
        algorithms = {
            "greedy": greedy_cover,
            "exact": exact_cover,
            "edge": lambda g: list(g.edges),
        }
        try:
            algorithm = algorithms[cover_algorithm]
        except KeyError:
            raise ValueError(
                f"unknown cover algorithm {cover_algorithm!r}; "
                f"choose from {sorted(algorithms)}"
            ) from None
        cover = [frozenset(c) for c in algorithm(graph)]
    verify_cover(graph, cover)

    membership: dict[str, list[str]] = {}
    artificial: dict[str, frozenset[str]] = {}
    for clique in cover:
        resource = clique_resource_name(clique)
        artificial[resource] = clique
        for cls in clique:
            membership.setdefault(cls, []).append(resource)

    table.classify_program(rts)
    modified: list[RT] = []
    for rt in rts:
        resources = membership.get(rt.rt_class, ())
        if resources:
            extra = tuple(
                ResourceUse(resource, rt.rt_class) for resource in sorted(resources)
            )
            modified.append(rt.with_extra_uses(extra))
        else:
            modified.append(rt)
    return ConflictModel(
        table=table,
        instruction_set=instruction_set,
        graph=graph,
        cover=sorted(cover, key=sorted),
        rts=modified,
        artificial_resources=artificial,
    )
