"""RT-level register-file and bus merging (paper, step 2a of figure 1b).

"In step 2 the core specification is taken into account.  This means
two things, first the register files and busses can be merged and
secondly the instruction set is taken into account.  Both aspects are
realized by modification of the RTs."

Merging renames resources inside the RT usage maps so the scheduler
sees one shared resource:

* all write ports of merged files become one write port — two results
  can no longer land in "different" files in the same cycle, which is
  the parallelism reduction section 5 warns about;
* every OPU port keeps its own read connection into the merged file
  (merging storage does not remove port wiring);
* merged buses become one bus; different values on it now conflict.

Operand and destination register-file names are renamed too, so the
post-scheduling register allocator sees the merged capacity.
"""

from __future__ import annotations

import re

from ..arch.datapath import Datapath
from ..arch.merge import MergeSpec
from ..obs import current_telemetry
from ..rtgen.program import LoopCarry, RTProgram
from ..rtgen.rt import RT, Destination, Operand, ResourceUse

_READ_RESOURCE = re.compile(r"^(?P<rf>[^:]+):rd(?P<port>:.*)?$")
_WRITE_RESOURCE = re.compile(r"^(?P<rf>[^:]+):wr$")


def _map_resource(resource: str, rf_map: dict[str, str],
                  bus_map: dict[str, str]) -> str:
    read = _READ_RESOURCE.match(resource)
    if read is not None:
        rf = read.group("rf")
        if rf in rf_map:
            # Each OPU port keeps its own read connection into the
            # merged file (the port wiring does not disappear); only
            # the resource's register-file part is renamed.
            return f"{rf_map[rf]}:rd{read.group('port') or ''}"
        return resource
    write = _WRITE_RESOURCE.match(resource)
    if write is not None:
        rf = write.group("rf")
        if rf in rf_map:
            return f"{rf_map[rf]}:wr"
        return resource
    if resource in bus_map:
        return bus_map[resource]
    return resource


def merge_rt(rt: RT, rf_map: dict[str, str], bus_map: dict[str, str]) -> RT:
    """One RT with merged resource names (a fresh RT instance)."""
    uses = tuple(
        ResourceUse(_map_resource(u.resource, rf_map, bus_map), u.usage, u.offset)
        for u in rt.uses
    )
    operands = tuple(
        Operand.register(rf_map.get(op.register_file, op.register_file), op.value)
        if op.is_register else op
        for op in rt.operands
    )
    destinations = tuple(
        Destination(
            register_file=rf_map.get(d.register_file, d.register_file),
            value=d.value,
            mux=d.mux,
            mux_usage=d.mux_usage,
        )
        for d in rt.destinations
    )
    merged = RT(
        opu=rt.opu,
        operation=rt.operation,
        operands=operands,
        destinations=destinations,
        uses=uses,
        latency=rt.latency,
        source=rt.source,
        memory_location=rt.memory_location,
        memory_effect=rt.memory_effect,
        io_port=rt.io_port,
    )
    merged.rt_class = rt.rt_class
    return merged


def apply_merges(program: RTProgram, spec: MergeSpec) -> RTProgram:
    """Rewrite a whole RT program for a merged core (non-destructive)."""
    datapath: Datapath = program.core.datapath
    spec.validate(datapath)
    rf_map = spec.register_file_map()
    bus_map = spec.bus_map()
    rts = [merge_rt(rt, rf_map, bus_map) for rt in program.rts]
    current_telemetry().count("merge.rts_rewritten", len(rts))
    carries = [
        LoopCarry(
            register_file=rf_map.get(c.register_file, c.register_file),
            register=c.register,
            old=c.old,
            new=c.new,
            initial=c.initial,
        )
        for c in program.loop_carries
    ]
    return RTProgram(
        core=program.core,
        dfg=program.dfg,
        rts=rts,
        loop_carries=carries,
        memories=dict(program.memories),
        acu_moduli=dict(program.acu_moduli),
        rom=program.rom,
        value_names=dict(program.value_names),
    )


def merged_register_file_sizes(program: RTProgram, spec: MergeSpec) -> dict[str, int]:
    """Capacity of every register file after merging (for allocation)."""
    datapath = program.core.datapath
    rf_map = spec.register_file_map()
    sizes: dict[str, int] = {}
    for name, rf in datapath.register_files.items():
        target = rf_map.get(name, name)
        sizes[target] = sizes.get(target, 0) + rf.size
    return sizes
