"""Edge clique covers of the conflict graph (paper, section 6.3).

"In this graph we find a set of cliques such that all edges in the
conflict graph are covered ...  Note that any clique cover will lead
to a valid schedule.  The only motivation to look for a maximal clique
cover is to minimize the run time of the scheduler."

Three algorithms, in ascending effort:

``edge_per_clique_cover``
    Every edge becomes its own 2-clique — trivially correct, maximally
    wasteful; the paper's remark makes it the natural baseline of the
    `abl-cover` ablation.
``greedy_cover``
    Kellerman-style: repeatedly take an uncovered edge and grow it to a
    maximal clique, preferring extensions that cover many still-
    uncovered edges.  Fast, near-minimal in practice (finds the paper's
    6-clique cover of figure 6).
``exact_cover``
    Minimum edge clique cover by set-cover branch-and-bound over all
    maximal cliques (Bron-Kerbosch).  Exponential; intended for the
    small class counts of real instruction sets (≤ ~20 classes).
"""

from __future__ import annotations

from ..errors import InstructionSetError
from .conflict_graph import ConflictGraph


def verify_cover(graph: ConflictGraph, cliques: list[frozenset[str]]) -> None:
    """Raise unless ``cliques`` is a valid edge clique cover of ``graph``."""
    for clique in cliques:
        if not graph.is_clique(clique):
            raise InstructionSetError(
                f"{sorted(clique)} is not a clique of the conflict graph"
            )
        if len(clique) < 2:
            raise InstructionSetError(
                f"cover contains a degenerate clique {sorted(clique)}"
            )
    covered: set[frozenset[str]] = set()
    for clique in cliques:
        covered |= graph.subgraph_edges(set(clique))
    missing = graph.edges - covered
    if missing:
        raise InstructionSetError(
            f"conflict edges not covered: {sorted(sorted(e) for e in missing)}"
        )


def edge_per_clique_cover(graph: ConflictGraph) -> list[frozenset[str]]:
    """The trivial cover: one 2-clique per conflict edge."""
    return sorted(graph.edges, key=sorted)


def greedy_cover(graph: ConflictGraph) -> list[frozenset[str]]:
    """Grow maximal cliques around uncovered edges (Kellerman heuristic)."""
    uncovered = set(graph.edges)
    cliques: list[frozenset[str]] = []
    while uncovered:
        seed = min(uncovered, key=sorted)
        a, b = sorted(seed)
        clique = {a, b}
        candidates = graph.neighbours(a) & graph.neighbours(b)
        while candidates:
            def gain(node: str) -> tuple[int, str]:
                newly = sum(
                    1 for member in clique
                    if frozenset({member, node}) in uncovered
                )
                return (newly, node)
            best = max(candidates, key=gain)
            clique.add(best)
            candidates &= graph.neighbours(best)
        cliques.append(frozenset(clique))
        uncovered -= graph.subgraph_edges(clique)
    return sorted(cliques, key=sorted)


def _maximal_cliques(graph: ConflictGraph) -> list[frozenset[str]]:
    """Bron-Kerbosch with pivoting; only cliques of size >= 2 matter."""
    cliques: list[frozenset[str]] = []

    def expand(current: set[str], candidates: set[str], excluded: set[str]) -> None:
        if not candidates and not excluded:
            if len(current) >= 2:
                cliques.append(frozenset(current))
            return
        pivot_pool = candidates | excluded
        pivot = max(pivot_pool, key=lambda n: len(graph.neighbours(n) & candidates))
        for node in sorted(candidates - graph.neighbours(pivot)):
            expand(
                current | {node},
                candidates & graph.neighbours(node),
                excluded & graph.neighbours(node),
            )
            candidates = candidates - {node}
            excluded = excluded | {node}

    expand(set(), set(graph.nodes), set())
    return cliques


def exact_cover(
    graph: ConflictGraph, max_candidates: int = 4096
) -> list[frozenset[str]]:
    """Minimum-cardinality edge clique cover (branch and bound).

    Falls back to the greedy cover when the graph has more maximal
    cliques than ``max_candidates`` (the instruction sets of real cores
    stay far below this).
    """
    if not graph.edges:
        return []
    candidates = _maximal_cliques(graph)
    if len(candidates) > max_candidates:
        return greedy_cover(graph)
    edges_of = {c: frozenset(graph.subgraph_edges(set(c))) for c in candidates}
    best: list[frozenset[str]] = greedy_cover(graph)

    all_edges = frozenset(graph.edges)
    order = sorted(all_edges, key=sorted)

    def search(covered: frozenset, chosen: list[frozenset[str]]) -> None:
        nonlocal best
        if len(chosen) >= len(best):
            return
        remaining = all_edges - covered
        if not remaining:
            best = list(chosen)
            return
        # Branch on the first uncovered edge: some clique must cover it.
        target = next(e for e in order if e in remaining)
        for clique in candidates:
            if target <= set(clique):
                chosen.append(clique)
                search(covered | edges_of[clique], chosen)
                chosen.pop()

    search(frozenset(), [])
    verify_cover(graph, best)
    return sorted(best, key=sorted)


def clique_resource_name(clique: frozenset[str]) -> str:
    """The artificial resource name of a clique, e.g. ``ABC`` for
    {A, B, C} (paper, section 7) — prefixed to avoid colliding with
    physical resource names."""
    return "iset:" + "".join(sorted(clique))
