"""The conflict graph over RT classes (paper, section 6.3, figure 6).

"The individual RT classes form the nodes for the graph.  An edge
exists between two nodes if the two RT classes do not occur together
in any of the instruction types of the instruction set."
"""

from __future__ import annotations

from itertools import combinations

from .instruction_set import InstructionSet, compatible_pairs


class ConflictGraph:
    """An undirected graph over RT class names."""

    def __init__(self, nodes: list[str], edges: set[frozenset[str]]):
        self.nodes = list(nodes)
        node_set = set(nodes)
        for edge in edges:
            if len(edge) != 2 or not edge <= node_set:
                raise ValueError(f"bad edge {sorted(edge)}")
        self.edges = set(edges)
        self.adjacency: dict[str, set[str]] = {n: set() for n in nodes}
        for edge in edges:
            a, b = sorted(edge)
            self.adjacency[a].add(b)
            self.adjacency[b].add(a)

    @staticmethod
    def from_instruction_set(iset: InstructionSet) -> "ConflictGraph":
        return ConflictGraph.from_types(
            iset.class_names, sorted(iset.types, key=sorted)
        )

    @staticmethod
    def from_types(
        class_names: list[str], types: list[frozenset[str]]
    ) -> "ConflictGraph":
        """Build directly from (desired) instruction types.

        The conflict graph only depends on the pairwise compatibility
        relation, which construction rules 3-4 leave untouched — so the
        *desired* types give the same graph as the full closure, at
        polynomial cost.  This is why the static model scales where
        enumerating the closed instruction set does not.
        """
        compatible = compatible_pairs(types)
        edges = {
            frozenset(pair)
            for pair in combinations(sorted(class_names), 2)
            if frozenset(pair) not in compatible
        }
        return ConflictGraph(sorted(class_names), edges)

    # ------------------------------------------------------------------

    def has_edge(self, a: str, b: str) -> bool:
        return frozenset({a, b}) in self.edges

    def degree(self, node: str) -> int:
        return len(self.adjacency[node])

    def is_clique(self, nodes: set[str] | frozenset[str]) -> bool:
        """Are all the given classes pairwise conflicting?"""
        return all(
            self.has_edge(a, b) for a, b in combinations(sorted(nodes), 2)
        )

    def neighbours(self, node: str) -> set[str]:
        return set(self.adjacency[node])

    def subgraph_edges(self, nodes: set[str]) -> set[frozenset[str]]:
        return {e for e in self.edges if e <= nodes}

    def pretty(self) -> str:
        lines = [f"conflict graph: {len(self.nodes)} classes, "
                 f"{len(self.edges)} conflict edges"]
        for edge in sorted(self.edges, key=sorted):
            a, b = sorted(edge)
            lines.append(f"  {a} -- {b}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConflictGraph):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and self.edges == other.edges

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((frozenset(self.nodes), frozenset(self.edges)))
