"""The paper's contribution: static instruction-set conflict modelling
(section 6) and RT modification (step 2 of figure 1b).

Workflow::

    table = ClassTable.from_core(core)          # section 6.1
    iset = InstructionSet.from_desired(          # section 6.2, rules 1-4
        table.names, core.instruction_types)
    model = impose_instruction_set(rts, table, iset)   # section 6.3
    # model.rts now carry artificial clique resources; any scheduler
    # honouring plain resource conflicts also honours the instruction set.
"""

from .artificial import ConflictModel, impose_instruction_set
from .clique_cover import (
    clique_resource_name,
    edge_per_clique_cover,
    exact_cover,
    greedy_cover,
    verify_cover,
)
from .conflict_graph import ConflictGraph
from .instruction_set import NOP, InstructionSet, closure, compatible_pairs
from .merge import apply_merges, merge_rt, merged_register_file_sizes
from .rtclass import ClassTable, RTClass

__all__ = [
    "ClassTable",
    "ConflictGraph",
    "ConflictModel",
    "InstructionSet",
    "NOP",
    "RTClass",
    "apply_merges",
    "clique_resource_name",
    "closure",
    "compatible_pairs",
    "edge_per_clique_cover",
    "exact_cover",
    "greedy_cover",
    "impose_instruction_set",
    "merge_rt",
    "merged_register_file_sizes",
    "verify_cover",
]
