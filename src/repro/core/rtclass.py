"""RT classes (paper, section 6.1).

"RT classes need to be introduced to be able to specify instruction
sets ...  Every RT generated in step 1 of the compiler belongs to
exactly one RT class.  To which RT class a RT belongs is determined by
the combination of the OPU resource it uses and the way the resource
is used (usage)."

A :class:`ClassTable` is a partition of the (OPU, usage) space, like
figure 5's ``acu_1: add → A, pass → B, addmod → C; ram_1: {read,
write} → E``.  Section 7 builds the audio core's table of 13 classes
and then *groups* E+F into X and H+I+J+K into Y; :meth:`ClassTable.group`
performs that reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.library import ClassDef, CoreSpec
from ..errors import ClassificationError
from ..rtgen.rt import RT


@dataclass(frozen=True)
class RTClass:
    """One RT class: a named (OPU, usage set) pair."""

    name: str
    opu: str
    usages: frozenset[str]

    def matches(self, rt: RT) -> bool:
        return rt.opu == self.opu and rt.operation in self.usages

    def pretty_usages(self) -> str:
        if len(self.usages) == 1:
            return next(iter(self.usages))
        return "{" + ", ".join(sorted(self.usages)) + "}"


class ClassTable:
    """A validated partition of (OPU, usage) pairs into RT classes."""

    def __init__(self, classes: list[RTClass]):
        seen_names: set[str] = set()
        seen_pairs: dict[tuple[str, str], str] = {}
        for cls in classes:
            if cls.name in seen_names:
                raise ClassificationError(f"duplicate RT class name {cls.name!r}")
            seen_names.add(cls.name)
            for usage in cls.usages:
                pair = (cls.opu, usage)
                if pair in seen_pairs:
                    raise ClassificationError(
                        f"(OPU {cls.opu!r}, usage {usage!r}) belongs to both "
                        f"class {seen_pairs[pair]!r} and class {cls.name!r}; "
                        f"classes must partition the usage space"
                    )
                seen_pairs[pair] = cls.name
        self.classes = list(classes)
        self._by_pair = seen_pairs

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_core(core: CoreSpec) -> "ClassTable":
        """The class table carried by the core definition."""
        return ClassTable.from_class_defs(core.class_defs)

    @staticmethod
    def from_class_defs(defs: list[ClassDef]) -> "ClassTable":
        return ClassTable([
            RTClass(d.name, d.opu, frozenset(d.usages)) for d in defs
        ])

    @staticmethod
    def auto(core: CoreSpec) -> "ClassTable":
        """One class per (OPU, operation) pair, named ``opu.operation``.

        This is the *unreduced* classification — applied to the audio
        core it yields the 13 classes of the paper's figure 8 table.
        """
        classes = []
        for opu in core.datapath.opus.values():
            for operation in opu.operations.values():
                classes.append(
                    RTClass(
                        f"{opu.name}.{operation.name}",
                        opu.name,
                        frozenset({operation.name}),
                    )
                )
        return ClassTable(classes)

    def group(self, groups: dict[str, tuple[str, ...]]) -> "ClassTable":
        """Combine classes, e.g. ``{"X": ("E", "F"), "Y": ("H", "I")}``.

        Grouped classes must share one OPU ("the combination of the OPU
        resource it uses and the way the resource is used"); ungrouped
        classes are kept unchanged.
        """
        by_name = {cls.name: cls for cls in self.classes}
        grouped_members: set[str] = set()
        result: list[RTClass] = []
        for new_name, members in groups.items():
            opus = set()
            usages: set[str] = set()
            for member in members:
                if member not in by_name:
                    raise ClassificationError(
                        f"cannot group unknown class {member!r}"
                    )
                if member in grouped_members:
                    raise ClassificationError(
                        f"class {member!r} appears in two groups"
                    )
                grouped_members.add(member)
                opus.add(by_name[member].opu)
                usages |= by_name[member].usages
            if len(opus) != 1:
                raise ClassificationError(
                    f"group {new_name!r} spans OPUs {sorted(opus)}; an RT "
                    f"class is defined per OPU"
                )
            result.append(RTClass(new_name, opus.pop(), frozenset(usages)))
        for cls in self.classes:
            if cls.name not in grouped_members:
                result.append(cls)
        return ClassTable(result)

    # -- queries ------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return [cls.name for cls in self.classes]

    def by_name(self, name: str) -> RTClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise ClassificationError(f"unknown RT class {name!r}")

    def classify(self, rt: RT) -> RTClass:
        """The unique class of ``rt``; raises if unclassifiable."""
        name = self._by_pair.get((rt.opu, rt.operation))
        if name is None:
            raise ClassificationError(
                f"{rt!r}: no RT class covers (OPU {rt.opu!r}, usage "
                f"{rt.operation!r}); extend the core's class table"
            )
        return self.by_name(name)

    def classify_program(self, rts: list[RT]) -> dict[str, list[RT]]:
        """Annotate ``rt.rt_class`` on every RT; return class → RTs."""
        by_class: dict[str, list[RT]] = {cls.name: [] for cls in self.classes}
        for rt in rts:
            cls = self.classify(rt)
            rt.rt_class = cls.name
            by_class[cls.name].append(rt)
        return by_class

    def __len__(self) -> int:
        return len(self.classes)

    def __iter__(self):
        return iter(self.classes)
