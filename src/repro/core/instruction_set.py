"""Instruction sets and the construction rules (paper, section 6.2).

An *instruction type* is a set of RT classes; an instruction replaces
every class by one RT from that class.  The *instruction set* is the
set of all instruction types.  "Instruction set modelling via fixed
constraints" demands four construction rules:

1. the NOP (empty type) is always allowed;
2. every individual RT class is a valid instruction type;
3. every subset of an allowed type is allowed (sub-instructions);
4. if all 2-subsets of a set are allowed, the set itself is allowed.

Rules 3 + 4 together say that an allowed instruction set is *exactly*
the family of cliques of its class-compatibility graph — which is why
the restrictions can be modelled with fixed pairwise conflicts before
scheduling (section 6.3).  :func:`closure` computes the smallest
allowed superset of any desired types; :meth:`InstructionSet.violations`
explains which rule a hand-written set breaks.
"""

from __future__ import annotations

from itertools import combinations

from ..errors import InstructionSetError

NOP: frozenset[str] = frozenset()


def _check_classes(
    class_names: list[str], types: list[frozenset[str]]
) -> None:
    known = set(class_names)
    if len(known) != len(class_names):
        raise InstructionSetError("duplicate RT class names")
    for instruction_type in types:
        unknown = instruction_type - known
        if unknown:
            raise InstructionSetError(
                f"instruction type {sorted(instruction_type)} uses unknown "
                f"RT classes {sorted(unknown)}"
            )


def compatible_pairs(types: list[frozenset[str]]) -> set[frozenset[str]]:
    """All 2-subsets occurring together in some instruction type."""
    pairs: set[frozenset[str]] = set()
    for instruction_type in types:
        for a, b in combinations(sorted(instruction_type), 2):
            pairs.add(frozenset({a, b}))
    return pairs


def closure(
    class_names: list[str], desired_types: list[frozenset[str]]
) -> set[frozenset[str]]:
    """The smallest allowed instruction set containing ``desired_types``.

    Rules 1-3 add the NOP, the singletons and all subsets; rule 4 then
    adds every clique of the compatibility graph.  Since rule 4 never
    introduces new *pairs*, the result is exactly the family of cliques
    of the pairwise-compatibility graph induced by the desired types —
    computed here by depth-first clique enumeration.
    """
    _check_classes(class_names, desired_types)
    pairs = compatible_pairs(desired_types)
    adjacency: dict[str, set[str]] = {name: set() for name in class_names}
    for pair in pairs:
        a, b = sorted(pair)
        adjacency[a].add(b)
        adjacency[b].add(a)

    result: set[frozenset[str]] = {NOP}
    order = sorted(class_names)
    index = {name: i for i, name in enumerate(order)}

    def extend(clique: tuple[str, ...], candidates: list[str]) -> None:
        result.add(frozenset(clique))
        for position, name in enumerate(candidates):
            if all(name in adjacency[member] for member in clique):
                extend(clique + (name,), candidates[position + 1:])

    for i, name in enumerate(order):
        extend((name,), order[i + 1:])
    _ = index  # ordering used implicitly via `order`
    return result


class InstructionSet:
    """A validated (or validatable) instruction set over named classes."""

    def __init__(self, class_names: list[str], types: set[frozenset[str]]):
        _check_classes(class_names, sorted(types, key=sorted))
        self.class_names = list(class_names)
        self.types = set(types)

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_desired(
        class_names: list[str], desired_types: list[frozenset[str]]
    ) -> "InstructionSet":
        """Close the desired types under construction rules 1-4."""
        return InstructionSet(class_names, closure(class_names, desired_types))

    # -- rule checking ------------------------------------------------------

    def violations(self) -> list[str]:
        """Human-readable construction-rule violations (empty = allowed)."""
        problems: list[str] = []
        if NOP not in self.types:
            problems.append("rule 1: the NOP (empty instruction) is missing")
        for name in self.class_names:
            if frozenset({name}) not in self.types:
                problems.append(
                    f"rule 2: individual class {{{name}}} is not a valid "
                    f"instruction type"
                )
        for instruction_type in sorted(self.types, key=lambda t: (len(t), sorted(t))):
            for size in range(1, len(instruction_type)):
                for subset in combinations(sorted(instruction_type), size):
                    if frozenset(subset) not in self.types:
                        problems.append(
                            f"rule 3: {set(subset)} (sub-instruction of "
                            f"{set(sorted(instruction_type))}) is missing"
                        )
        required = closure(self.class_names, sorted(self.types, key=sorted))
        for instruction_type in sorted(required - self.types, key=sorted):
            if len(instruction_type) >= 3:
                problems.append(
                    f"rule 4: all pairs of {set(sorted(instruction_type))} "
                    f"are allowed, so the full type must be allowed too"
                )
        return problems

    def validate(self) -> None:
        problems = self.violations()
        if problems:
            raise InstructionSetError(
                "instruction set violates the construction rules "
                "(section 6.2):\n  - " + "\n  - ".join(problems)
            )

    # -- queries ------------------------------------------------------------

    def allows(self, classes: frozenset[str] | set[str]) -> bool:
        return frozenset(classes) in self.types

    def compatible(self, a: str, b: str) -> bool:
        """Can classes ``a`` and ``b`` appear in one instruction?"""
        if a == b:
            return True
        return frozenset({a, b}) in compatible_pairs(sorted(self.types, key=sorted))

    def maximal_types(self) -> list[frozenset[str]]:
        """Types not contained in any other type (compact description)."""
        ordered = sorted(self.types, key=lambda t: (-len(t), sorted(t)))
        maximal: list[frozenset[str]] = []
        for instruction_type in ordered:
            if not any(instruction_type < other for other in maximal):
                if instruction_type or not maximal:
                    maximal.append(instruction_type)
        return [t for t in maximal if t] or [NOP]

    def pretty(self) -> str:
        """Render like the paper: ``I = {NOP, {S}, ..., {S, U, V}}``."""
        parts = ["NOP"]
        for instruction_type in sorted(
            self.types - {NOP}, key=lambda t: (len(t), sorted(t))
        ):
            parts.append("{" + ", ".join(sorted(instruction_type)) + "}")
        return "I = {" + ", ".join(parts) + "}"

    def __len__(self) -> int:
        return len(self.types)

    def __contains__(self, instruction_type) -> bool:
        return frozenset(instruction_type) in self.types
