"""Seeded random-DFG generation: the corpus behind the scaling claims.

The paper's pitch is that *one* toolchain compiles arbitrary DSP
dataflow graphs onto in-house cores — but a test suite of five
hand-built applications only ever exercises five shapes.  This module
turns a seed into an endless, reproducible stream of well-formed
time-loop applications:

* operations are drawn from a target core's OPU library
  (:func:`op_vocabulary`) restricted to the ops the golden reference
  interpreter can execute, so every generated graph has a bit-exact
  reference interpretation via :func:`repro.lang.run_reference`;
* a :class:`GenSpec` parameterizes size and shape — op count, input/
  output/state counts, delay-line depth (the time-loop's feedback
  structure), operand locality (deep chains vs wide fan-out) and
  constant density (how often operands are quantised coefficients);
* generation is a pure function of ``(spec, seed)``: the same pair
  always yields the same graph, which is what makes fuzz failures
  replayable from a seed alone.

:func:`generate_corpus` materializes N applications, optionally
*compile-filtered* against a core (graphs a small core cannot route are
resampled deterministically), giving the pinned corpora the property
suite and the ``repro corpus`` benchmark run on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..arch.library import CoreSpec
from ..arch.opu import OpuKind
from ..arch.registry import resolve_core
from ..errors import ReproError
from ..fixed import has_semantics
from ..lang.builder import DfgBuilder
from ..lang.dfg import Dfg

#: OPU kinds whose operations are dataflow computations an application
#: can name (memory, address, IO and constant units are infrastructure
#: the compiler inserts on its own).
_COMPUTE_KINDS = (OpuKind.ALU, OpuKind.MULT, OpuKind.ASU)


def op_vocabulary(core: CoreSpec | str) -> tuple[tuple[str, int], ...]:
    """The ``(operation, arity)`` draws a core offers the generator.

    Walks the core's OPU library and keeps every compute operation the
    reference interpreter has fixed-point semantics for
    (:func:`repro.fixed.has_semantics`).  Sorted and deduplicated, so
    the vocabulary — and with it every generated graph — is a
    deterministic function of the core.
    """
    spec = resolve_core(core)
    vocabulary: dict[str, int] = {}
    for opu in spec.datapath.opus.values():
        if opu.kind not in _COMPUTE_KINDS:
            continue
        for operation in opu.operations.values():
            if has_semantics(operation.name):
                vocabulary.setdefault(operation.name, operation.arity)
    if not vocabulary:
        raise ReproError(
            f"core {spec.name!r} offers no operations with reference "
            f"semantics; nothing to generate")
    return tuple(sorted(vocabulary.items()))


@dataclass(frozen=True)
class GenSpec:
    """Size/shape knobs of the random-DFG generator.

    All fields have corpus-friendly defaults: graphs small enough that
    the library cores route most of them, varied enough to exercise
    every node kind.  ``ops`` pins an explicit vocabulary; ``None``
    derives it from the target core at generation time.
    """

    min_ops: int = 3
    max_ops: int = 14
    max_inputs: int = 2
    max_outputs: int = 2
    max_states: int = 2
    #: Deepest history window a state may declare (``s@k``, k <= this).
    max_delay: int = 3
    #: Probability an operand position draws a quantised coefficient
    #: (PARAM node) instead of an already-computed value.
    constant_density: float = 0.3
    #: Probability an operand comes from the most recent values
    #: (``operand_window``) — high bias makes deep chains, low bias
    #: wide fan-out over the whole value set.
    depth_bias: float = 0.6
    operand_window: int = 3
    #: Probability an op slot reads a delay line instead, when states
    #: exist (the time-loop's cross-iteration feedback structure).
    delay_density: float = 0.2
    #: Probability a ``mult`` forces one coefficient operand — the
    #: library cores feed the coefficient port from the constant/ROM
    #: path only, so value*value products rarely route.
    mult_coefficient_bias: float = 0.85
    #: Explicit ``((name, arity), ...)`` vocabulary; ``None`` derives
    #: it from the core via :func:`op_vocabulary`.
    ops: tuple[tuple[str, int], ...] | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.min_ops <= self.max_ops:
            raise ReproError(
                f"GenSpec: need 1 <= min_ops <= max_ops, got "
                f"[{self.min_ops}, {self.max_ops}]")
        if self.max_inputs < 1:
            raise ReproError("GenSpec: max_inputs must be >= 1")
        if self.max_outputs < 1:
            raise ReproError("GenSpec: max_outputs must be >= 1")
        if self.max_states < 0:
            raise ReproError("GenSpec: max_states must be >= 0")
        if self.max_delay < 1:
            raise ReproError("GenSpec: max_delay must be >= 1")
        for name, probability in (
                ("constant_density", self.constant_density),
                ("depth_bias", self.depth_bias),
                ("delay_density", self.delay_density),
                ("mult_coefficient_bias", self.mult_coefficient_bias)):
            if not 0.0 <= probability <= 1.0:
                raise ReproError(
                    f"GenSpec: {name} must be in [0, 1], got {probability}")
        if self.operand_window < 1:
            raise ReproError("GenSpec: operand_window must be >= 1")

    def to_dict(self) -> dict:
        """JSON-ready form (embedded in crash reports and bench JSON)."""
        payload = {
            "min_ops": self.min_ops, "max_ops": self.max_ops,
            "max_inputs": self.max_inputs, "max_outputs": self.max_outputs,
            "max_states": self.max_states, "max_delay": self.max_delay,
            "constant_density": self.constant_density,
            "depth_bias": self.depth_bias,
            "operand_window": self.operand_window,
            "delay_density": self.delay_density,
            "mult_coefficient_bias": self.mult_coefficient_bias,
        }
        if self.ops is not None:
            payload["ops"] = [list(pair) for pair in self.ops]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "GenSpec":
        ops = payload.get("ops")
        fields = dict(payload)
        if ops is not None:
            fields["ops"] = tuple((name, arity) for name, arity in ops)
        return cls(**fields)


def generate_dfg(
    spec: GenSpec,
    seed: int,
    core: CoreSpec | str | None = None,
    name: str | None = None,
) -> Dfg:
    """One well-formed random application: a pure function of its
    arguments.

    ``core`` supplies the op vocabulary when ``spec.ops`` is ``None``
    (default: the ``"fir"`` library core).  The graph always validates
    and always has a reference interpretation; whether a given core can
    *route* it is exactly what the differential harness explores.
    """
    rng = random.Random(seed)
    vocabulary = spec.ops if spec.ops is not None else op_vocabulary(
        core if core is not None else "fir")
    b = DfgBuilder(name or f"gen_{seed}")

    values = [b.input(f"i{k}")
              for k in range(rng.randint(1, spec.max_inputs))]
    states = []
    for index in range(rng.randint(0, spec.max_states)):
        depth = rng.randint(1, spec.max_delay)
        states.append((b.state(f"s{index}", depth), depth))

    def pick_value():
        if rng.random() < spec.depth_bias:
            window = values[-spec.operand_window:]
            return rng.choice(window)
        return rng.choice(values)

    n_params = 0

    def pick_coefficient():
        nonlocal n_params
        coefficient = b.param(f"c{n_params}",
                              round(rng.uniform(-0.95, 0.95), 6))
        n_params += 1
        return coefficient

    for _ in range(rng.randint(spec.min_ops, spec.max_ops)):
        if states and rng.random() < spec.delay_density:
            state, depth = rng.choice(states)
            values.append(b.delay(state, rng.randint(1, depth)))
            continue
        operation, arity = rng.choice(vocabulary)
        # At most one coefficient per operation, and only on a port the
        # library cores feed from the constant path: the multiplier's
        # coefficient port, or the second ALU operand.  Unary ops never
        # draw coefficients (``pass(c)`` routes on no library core).
        operands = []
        has_coefficient = False
        for position in range(arity):
            draw_coefficient = False
            if not has_coefficient:
                if operation == "mult" and position == 0:
                    draw_coefficient = (
                        rng.random() < spec.mult_coefficient_bias)
                elif arity >= 2 and position == arity - 1:
                    draw_coefficient = rng.random() < spec.constant_density
            if draw_coefficient:
                operands.append(pick_coefficient())
                has_coefficient = True
            else:
                operands.append(pick_value())
        values.append(b.op(operation, *operands))

    for state, _ in states:
        b.write(state, pick_value())
    b.output("o0", values[-1])
    for index in range(1, rng.randint(1, spec.max_outputs)):
        b.output(f"o{index}", pick_value())
    return b.build()


@dataclass
class GeneratedApp:
    """One corpus member: the graph plus the seed that replays it."""

    seed: int
    dfg: Dfg
    #: Schedule lengths per opt level when the corpus was
    #: compile-filtered (level -> cycles); empty otherwise.
    cycles: dict[int, int] = field(default_factory=dict)


def case_seed(base_seed: int, index: int) -> int:
    """The per-case seed ``index`` steps after ``base_seed``.

    Deliberately just ``base_seed + index``: a failure at case seed
    ``S`` is replayed by ``--seed S --count 1``, no arithmetic needed.
    """
    return base_seed + index


def generate_corpus(
    spec: GenSpec,
    count: int,
    seed: int = 0,
    core: CoreSpec | str | None = None,
    levels: tuple[int, ...] | None = None,
    max_attempts: int | None = None,
) -> list[GeneratedApp]:
    """Materialize ``count`` applications from consecutive case seeds.

    With ``levels`` given, each candidate is compiled against ``core``
    at every level and kept only if all compiles succeed (schedule
    lengths are recorded on the :class:`GeneratedApp`); rejected seeds
    are skipped deterministically, so a pinned ``(spec, seed, core,
    levels)`` tuple always names the same corpus.  ``max_attempts``
    bounds the search (default ``50 * count``).
    """
    from ..toolchain import Toolchain

    if count < 1:
        raise ReproError(f"corpus count must be >= 1, got {count}")
    resolved = resolve_core(core if core is not None else "fir")
    if spec.ops is None:
        spec = replace(spec, ops=op_vocabulary(resolved))
    toolchains = {
        level: Toolchain(resolved, cache=None, opt=level)
        for level in (levels or ())
    }
    budget = max_attempts if max_attempts is not None else 50 * count
    corpus: list[GeneratedApp] = []
    for attempt in range(budget):
        if len(corpus) >= count:
            break
        app_seed = case_seed(seed, attempt)
        dfg = generate_dfg(spec, app_seed)
        app = GeneratedApp(seed=app_seed, dfg=dfg)
        try:
            for level, toolchain in toolchains.items():
                app.cycles[level] = toolchain.compile(dfg).n_cycles
        except ReproError:
            continue
        corpus.append(app)
    if len(corpus) < count:
        raise ReproError(
            f"generated only {len(corpus)}/{count} compilable applications "
            f"in {budget} attempts; relax the GenSpec or raise max_attempts")
    return corpus
