"""Greedy failure minimization for fuzz findings.

A mismatch found on a 20-node random graph is a debugging session; the
same mismatch on a 4-node graph is a unit test.  :func:`shrink_dfg`
repeatedly tries structure-preserving reductions — reroute a node's
consumers to one of its operands and drop the node, drop surplus
outputs, sweep dead nodes — keeping each candidate only if the caller's
predicate says the failure still reproduces.  Every candidate is
rebuilt through :class:`~repro.lang.dfg.Dfg` validation, so the shrunk
graph is as well-formed as the original: it compiles, simulates and
emits back to source (:func:`repro.lang.emit_source`) like any other
application.

The predicate is arbitrary (the fuzz harness passes "same differential
mismatch"), which keeps the shrinker honest: it cannot accidentally
'fix' the bug while shrinking, because such candidates are rejected.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SourceError
from ..lang.dfg import Dfg, Node, NodeKind


def _rebuild(dfg: Dfg, drop: set[int], reroute: dict[int, int]) -> Dfg:
    """A compact, revalidated DFG without ``drop``, arguments remapped
    through ``reroute`` (old id -> old id of a surviving node)."""
    surviving = [node for node in dfg.nodes if node.id not in drop]
    new_ids = {node.id: index for index, node in enumerate(surviving)}

    def remap(arg: int) -> int:
        while arg in reroute:
            arg = reroute[arg]
        return new_ids[arg]

    nodes = [
        Node(id=new_ids[node.id], kind=node.kind, name=node.name,
             args=tuple(remap(arg) for arg in node.args),
             delay=node.delay, label=node.label)
        for node in surviving
    ]
    inputs = [node.name for node in nodes if node.kind is NodeKind.INPUT]
    outputs = [node.name for node in nodes if node.kind is NodeKind.OUTPUT]
    param_names = {node.name for node in nodes
                   if node.kind is NodeKind.PARAM}
    state_names = {node.name for node in nodes
                   if node.kind in (NodeKind.DELAY, NodeKind.STATE_WRITE)}
    shrunk = Dfg(
        name=dfg.name,
        nodes=nodes,
        params={name: value for name, value in dfg.params.items()
                if name in param_names},
        inputs=[name for name in dict.fromkeys(inputs)],
        outputs=outputs,
        states={name: spec for name, spec in dfg.states.items()
                if name in state_names},
    )
    shrunk.validate()
    return shrunk


def _value_nodes(dfg: Dfg) -> set[int]:
    """Ids of nodes that produce a value consumers may read."""
    return {node.id for node in dfg.nodes
            if node.kind not in (NodeKind.OUTPUT, NodeKind.STATE_WRITE)}


def _candidates(dfg: Dfg):
    """Yield ``(drop, reroute)`` reduction attempts, boldest first."""
    consumers = dfg.consumer_index()
    n_outputs = sum(1 for node in dfg.nodes
                    if node.kind is NodeKind.OUTPUT)
    read_states = {node.name for node in dfg.nodes
                   if node.kind is NodeKind.DELAY}
    values = sorted(_value_nodes(dfg))

    for node in reversed(dfg.nodes):
        if node.kind is NodeKind.OUTPUT:
            if n_outputs > 1:
                yield {node.id}, {}
        elif node.kind is NodeKind.STATE_WRITE:
            if node.name not in read_states:
                yield {node.id}, {}
        elif not consumers.get(node.id):
            yield {node.id}, {}
        elif node.kind is NodeKind.OP:
            for arg in dict.fromkeys(node.args):
                yield {node.id}, {node.id: arg}
        else:
            # INPUT / PARAM / DELAY with consumers: reroute to the
            # earliest other value (defined before this node, hence
            # before every consumer).
            for target in values:
                if target < node.id:
                    yield {node.id}, {node.id: target}
                    break

    dead = {node.id for node in dfg.nodes
            if node.kind not in (NodeKind.OUTPUT, NodeKind.STATE_WRITE)
            and not consumers.get(node.id)}
    if len(dead) > 1:
        yield dead, {}


def shrink_dfg(
    dfg: Dfg,
    still_fails: Callable[[Dfg], bool],
    max_attempts: int = 400,
) -> Dfg:
    """Greedily minimize ``dfg`` while ``still_fails`` holds.

    Each accepted reduction restarts the scan (a removal often unlocks
    further ones); ``max_attempts`` bounds the total number of
    predicate evaluations, since each one typically costs a compile
    plus a differential simulation.  Returns the smallest failing graph
    found — ``dfg`` itself if nothing could be removed.
    """
    attempts = 0
    current = dfg
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for drop, reroute in _candidates(current):
            if attempts >= max_attempts:
                break
            try:
                candidate = _rebuild(current, drop, reroute)
            except (SourceError, KeyError):
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current
