"""Differential fuzzing: generated graphs, every optimizer level,
every simulator engine, one oracle.

For each seeded random application (:mod:`repro.gen.generator`) the
harness compiles through :class:`~repro.toolchain.Toolchain` at every
requested ``-O`` level and runs each binary over a batch of random
stimulus lanes on every available engine — the scalar
:class:`~repro.sim.machine.CoreSimulator`, the pure-Python
:class:`~repro.sim.batch.DecodedSimulator` and the numpy
:class:`~repro.sim.batch.BatchSimulator` — asserting every output
stream bit-identical to :func:`repro.lang.run_reference` on the
*source* graph.  Equality to one reference implies equality across
levels and engines, so a single mismatch pinpoints the disagreeing
(level, engine) pair.

Failures are minimized by the greedy shrinker
(:mod:`repro.gen.shrink`) under the predicate "the same class of
failure still reproduces", and every finding carries its case seed:
``repro fuzz --seed <case seed> --count 1`` regenerates graph,
stimulus and mismatch exactly.

Since PR 9 the harness also carries a third, simulation-free oracle:
the machine-code lint of :mod:`repro.analyze.lint` runs over every
compiled image before any engine does (``lint=True``, the default).
A case whose image fails lint while the differential simulation stays
clean is reported as its own crash kind, ``status="lint"`` — a
verifier/simulator disagreement, i.e. a bug in exactly one of the two.

``inject=`` plants an artificial defect whenever the graph contains
the named operation.  That is the harness's self-test: with the lint
oracle enabled the defect is planted in a *copy of the encoded image*
(a destination field latching a bus on which nothing matures) and must
be flagged by the lint pass alone, without simulation; with
``lint=False`` it falls back to perturbing the decoded engine's first
output sample, proving the differential path end-to-end instead.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field

from ..arch.library import CoreSpec
from ..arch.registry import resolve_core
from ..errors import ReproError
from ..fixed import FixedFormat
from ..lang.dfg import Dfg, NodeKind
from ..lang.emit import emit_source
from ..lang.reference import run_reference
from ..obs import current_telemetry
from ..sim.batch import NUMPY_AVAILABLE
from .generator import GenSpec, case_seed, generate_dfg
from .shrink import shrink_dfg

#: Optimizer levels a fuzz case crosses by default.
DEFAULT_LEVELS = (0, 1, 2)


def available_engines() -> tuple[str, ...]:
    """Every engine this process can differentially compare."""
    engines = ["scalar", "decoded"]
    if NUMPY_AVAILABLE:
        engines.append("numpy")
    return tuple(engines)


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign: what to generate, where to run it, how long.

    ``count`` and ``time_budget`` may be combined; the campaign stops
    at whichever limit is hit first (at least one case always runs).
    """

    core: CoreSpec | str = "fir"
    seed: int = 0
    count: int | None = 100
    time_budget: float | None = None
    levels: tuple[int, ...] = DEFAULT_LEVELS
    engines: tuple[str, ...] | None = None
    n_frames: int = 6
    n_lanes: int = 3
    shrink: bool = True
    shrink_attempts: int = 400
    spec: GenSpec = field(default_factory=GenSpec)
    #: Operation name that triggers the planted self-test defect.
    inject: str | None = None
    #: Run the machine-code lint over every compiled image
    #: (``repro fuzz --no-lint`` disables it).
    lint: bool = True


@dataclass
class CaseResult:
    """What one generated case did under the differential matrix."""

    #: "ok" | "infeasible" | "mismatch" | "error" | "lint"
    status: str
    detail: str | None = None
    #: Levels that compiled (infeasible levels are normal: optimization
    #: changes register pressure, so feasibility may differ by level).
    levels_compiled: tuple[int, ...] = ()

    @property
    def failed(self) -> bool:
        return self.status in ("mismatch", "error", "lint")


@dataclass
class FuzzFailure:
    """One finding: the case seed replays it, the shrunk source shows it."""

    seed: int
    status: str
    detail: str
    source: str
    n_nodes: int
    shrunk_source: str | None = None
    shrunk_detail: str | None = None
    shrunk_nodes: int | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "status": self.status,
            "detail": self.detail,
            "source": self.source,
            "n_nodes": self.n_nodes,
            "shrunk_source": self.shrunk_source,
            "shrunk_detail": self.shrunk_detail,
            "shrunk_nodes": self.shrunk_nodes,
        }


@dataclass
class FuzzReport:
    """The campaign's outcome, JSON-ready for CI artifacts."""

    core: str
    seed: int
    levels: tuple[int, ...]
    engines: tuple[str, ...]
    spec: GenSpec
    n_cases: int = 0
    n_ok: int = 0
    n_infeasible: int = 0
    seconds: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "seed": self.seed,
            "levels": list(self.levels),
            "engines": list(self.engines),
            "spec": self.spec.to_dict(),
            "n_cases": self.n_cases,
            "n_ok": self.n_ok,
            "n_infeasible": self.n_infeasible,
            "n_failures": len(self.failures),
            "seconds": round(self.seconds, 3),
            "failures": [failure.to_dict() for failure in self.failures],
        }


def random_stimulus(
    dfg: Dfg,
    n_lanes: int,
    n_frames: int,
    seed: int,
    fmt: FixedFormat,
) -> list[dict[str, list[int]]]:
    """Full-range random stimulus lanes, a pure function of the seed."""
    rng = random.Random(seed ^ 0x5EED)
    return [
        {port: [rng.randint(fmt.min_value, fmt.max_value)
                for _ in range(n_frames)]
         for port in dfg.inputs}
        for _ in range(n_lanes)
    ]


def _contains_op(dfg: Dfg, operation: str) -> bool:
    return any(node.kind is NodeKind.OP and node.name == operation
               for node in dfg.nodes)


def _inject_defect(outputs: list[dict[str, list[int]]],
                   fmt: FixedFormat) -> list[dict[str, list[int]]]:
    """Perturb the first sample of every stream (the planted bug)."""
    corrupted = []
    for lane in outputs:
        lane = {port: list(stream) for port, stream in lane.items()}
        for stream in lane.values():
            if stream:
                stream[0] = fmt.wrap(stream[0] + 1)
        corrupted.append(lane)
    return corrupted


def _inject_image_defect(binary):
    """The lint oracle's planted bug: a copy of the image whose IDLE
    word asserts a write-enable, latching a bus on which nothing
    matures (``mc.bus-hazard``).  The original binary is untouched, so
    the differential simulation stays green — only the lint pass can
    see the defect."""
    fmt = binary.format
    dp = binary.core.datapath
    victim = next((rf for rf in dp.register_files.values() if rf.writers),
                  None)
    if victim is None:
        return None
    fields = fmt.decode(binary.words[0])
    fields[f"{victim.name}.wr_en"] = 1
    words = list(binary.words)
    words[0] = fmt.encode(fields)
    return dataclasses.replace(binary, words=words)


def _lint_errors(binary) -> list:
    from ..analyze import lint_program

    return [f for f in lint_program(binary) if f.is_error]


def run_case(
    dfg: Dfg,
    core: CoreSpec | str,
    *,
    levels: tuple[int, ...] = DEFAULT_LEVELS,
    engines: tuple[str, ...] | None = None,
    n_frames: int = 6,
    n_lanes: int = 3,
    stimulus_seed: int = 0,
    inject: str | None = None,
    lint: bool = True,
) -> CaseResult:
    """One application through the full differential matrix.

    Compiles ``dfg`` at every level that routes onto ``core``, lints
    each image (``lint=True``), runs each binary over the stimulus
    batch on every engine, and compares all outputs against the
    reference interpretation of the source graph.  Returns
    ``infeasible`` when no level compiles (the normal fate of some
    random graphs on small cores), ``mismatch`` on the first
    differential disagreement, ``error`` when a compiled binary's
    simulation raises, and ``lint`` when the static lint flags an image
    the simulation cannot fault — a verifier/simulator disagreement.
    """
    from ..sim.batch import run_batch
    from ..toolchain import Toolchain

    resolved = resolve_core(core)
    engines = tuple(engines) if engines is not None else available_engines()
    fmt = FixedFormat(resolved.data_width, resolved.frac_bits)
    stimulus = random_stimulus(dfg, n_lanes, n_frames, stimulus_seed, fmt)
    expected = [run_reference(dfg, lane, n_frames, fmt=fmt)
                for lane in stimulus]

    compiled: list[tuple[int, object]] = []
    for level in levels:
        try:
            program = Toolchain(resolved, cache=None, opt=level).compile(dfg)
        except ReproError:
            continue
        compiled.append((level, program.binary))
    if not compiled:
        return CaseResult(status="infeasible")
    levels_compiled = tuple(level for level, _ in compiled)

    planted = inject is not None and _contains_op(dfg, inject)

    # The simulation-free oracle: lint every image before any engine
    # runs.  A planted defect goes into a corrupted *copy* and must be
    # caught right here, with no simulation at all; organic lint errors
    # are held back and classified against the simulators below.
    organic_lint: str | None = None
    if lint:
        for level, binary in compiled:
            target = _inject_image_defect(binary) if planted else binary
            if target is None:
                continue
            errors = _lint_errors(target)
            if errors:
                detail = (f"-O{level} lint: {errors[0].code}: "
                          f"{errors[0].message}")
                if planted:
                    return CaseResult(
                        status="lint",
                        detail=f"{detail} (planted image defect, caught "
                               f"without simulation)",
                        levels_compiled=levels_compiled)
                if organic_lint is None:
                    organic_lint = detail

    for level, binary in compiled:
        for engine in engines:
            try:
                actual = run_batch(binary, stimulus, n_frames, engine=engine)
            except ReproError as exc:
                detail = f"-O{level} {engine}: {type(exc).__name__}: {exc}"
                if organic_lint is not None:
                    detail += f"; {organic_lint}"
                return CaseResult(
                    status="error", detail=detail,
                    levels_compiled=levels_compiled)
            if planted and not lint and engine == "decoded":
                actual = _inject_defect(actual, fmt)
            if actual != expected:
                detail = _describe_mismatch(level, engine, expected, actual)
                if organic_lint is not None:
                    detail += f"; {organic_lint}"
                return CaseResult(
                    status="mismatch", detail=detail,
                    levels_compiled=levels_compiled)
    if organic_lint is not None:
        return CaseResult(
            status="lint",
            detail=f"{organic_lint} (differential simulation is clean: "
                   f"verifier/simulator disagreement)",
            levels_compiled=levels_compiled)
    return CaseResult(status="ok", levels_compiled=levels_compiled)


def _describe_mismatch(level: int, engine: str,
                       expected: list[dict[str, list[int]]],
                       actual: list[dict[str, list[int]]]) -> str:
    """First point of divergence, named down to the sample."""
    for lane, (want, got) in enumerate(zip(expected, actual)):
        for port in sorted(want):
            want_stream = want[port]
            got_stream = got.get(port)
            if got_stream == want_stream:
                continue
            if got_stream is None:
                return (f"-O{level} {engine}: lane {lane} port {port!r} "
                        f"missing from engine output")
            for frame, (w, g) in enumerate(zip(want_stream, got_stream)):
                if w != g:
                    return (f"-O{level} {engine}: lane {lane} port {port!r} "
                            f"frame {frame}: got {g}, reference says {w}")
            return (f"-O{level} {engine}: lane {lane} port {port!r}: "
                    f"length {len(got_stream)} vs {len(want_stream)}")
        extra = set(got) - set(want)
        if extra:
            return (f"-O{level} {engine}: lane {lane} emitted unexpected "
                    f"ports {sorted(extra)}")
    return f"-O{level} {engine}: outputs differ"


def fuzz(config: FuzzConfig, progress=None) -> FuzzReport:
    """Run one differential fuzz campaign.

    Cases are generated from consecutive seeds starting at
    ``config.seed`` (:func:`~repro.gen.generator.case_seed`), so any
    failure is replayed by a campaign of ``count=1`` at the failing
    seed.  ``progress`` is called once per case with a dict (``seed``,
    ``status``, ``done``); the telemetry registry counts
    ``fuzz.cases`` / ``fuzz.failures``.
    """
    resolved = resolve_core(config.core)
    engines = (tuple(config.engines) if config.engines is not None
               else available_engines())
    report = FuzzReport(core=resolved.name, seed=config.seed,
                        levels=tuple(config.levels), engines=engines,
                        spec=config.spec)
    if config.count is None and config.time_budget is None:
        raise ReproError("FuzzConfig needs a count or a time budget")
    obs = current_telemetry()
    started = time.perf_counter()
    index = 0
    while True:
        if config.count is not None and index >= config.count:
            break
        if (config.time_budget is not None and index > 0
                and time.perf_counter() - started >= config.time_budget):
            break
        seed = case_seed(config.seed, index)
        index += 1
        dfg = generate_dfg(config.spec, seed, core=resolved)
        result = run_case(
            dfg, resolved, levels=config.levels, engines=engines,
            n_frames=config.n_frames, n_lanes=config.n_lanes,
            stimulus_seed=seed, inject=config.inject, lint=config.lint)
        report.n_cases += 1
        obs.count("fuzz.cases")
        if result.status == "ok":
            report.n_ok += 1
        elif result.status == "infeasible":
            report.n_infeasible += 1
        else:
            obs.count("fuzz.failures")
            report.failures.append(_minimized(dfg, seed, result, config,
                                              resolved, engines))
        if progress is not None:
            progress({"seed": seed, "status": result.status, "done": index})
    report.seconds = time.perf_counter() - started
    return report


def _minimized(dfg: Dfg, seed: int, result: CaseResult, config: FuzzConfig,
               core: CoreSpec, engines: tuple[str, ...]) -> FuzzFailure:
    """Wrap a finding, shrinking the graph if the config asks for it."""
    failure = FuzzFailure(
        seed=seed, status=result.status, detail=result.detail or "",
        source=emit_source(dfg), n_nodes=len(dfg.nodes))
    if not config.shrink:
        return failure

    def still_fails(candidate: Dfg) -> bool:
        replay = run_case(
            candidate, core, levels=config.levels, engines=engines,
            n_frames=config.n_frames, n_lanes=config.n_lanes,
            stimulus_seed=seed, inject=config.inject, lint=config.lint)
        return replay.status == result.status

    shrunk = shrink_dfg(dfg, still_fails, max_attempts=config.shrink_attempts)
    replay = run_case(
        shrunk, core, levels=config.levels, engines=engines,
        n_frames=config.n_frames, n_lanes=config.n_lanes,
        stimulus_seed=seed, inject=config.inject, lint=config.lint)
    failure.shrunk_source = emit_source(shrunk)
    failure.shrunk_detail = replay.detail
    failure.shrunk_nodes = len(shrunk.nodes)
    return failure
