"""Corpus-scale benchmarking: hundreds of generated apps, one report.

``repro corpus`` materializes a pinned, compile-filtered corpus
(:func:`repro.gen.generator.generate_corpus`), batch-compiles it at
every requested optimizer level through one
:class:`~repro.toolchain.Toolchain` session, then runs every binary
over a random stimulus batch on every available engine — differentially
checked against the reference interpreter while the clock runs.  The
result (:class:`CorpusReport`, serialized to ``BENCH_corpus.json``) is
the corpus-scale companion to ``BENCH_sim.json``: compile throughput in
applications/second per level, simulation throughput in lane-frames/
second per engine, and a mismatch count that CI requires to be zero.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..arch.library import CoreSpec
from ..arch.registry import resolve_core
from ..errors import ReproError
from ..fixed import FixedFormat
from ..lang.reference import run_reference
from ..pipeline.session import StageCache
from .fuzz import available_engines, random_stimulus
from .generator import GeneratedApp, GenSpec, generate_corpus

#: Report schema version (bump when the JSON shape changes).
CORPUS_REPORT_VERSION = 1


@dataclass
class CorpusReport:
    """Throughput and correctness figures over one pinned corpus."""

    core: str
    seed: int
    count: int
    levels: tuple[int, ...]
    engines: tuple[str, ...]
    spec: GenSpec
    n_frames: int
    n_lanes: int
    #: Seeds drawn to find ``count`` compilable graphs.
    attempts: int = 0
    #: level -> {"seconds", "apps_per_second", "cycles_total"}
    compile_stats: dict[int, dict] = field(default_factory=dict)
    #: engine -> {"seconds", "lane_frames", "lane_frames_per_second"}
    sim_stats: dict[str, dict] = field(default_factory=dict)
    mismatches: int = 0
    failures: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.mismatches == 0 and not self.failures

    def to_dict(self) -> dict:
        return {
            "version": CORPUS_REPORT_VERSION,
            "core": self.core,
            "seed": self.seed,
            "count": self.count,
            "levels": list(self.levels),
            "engines": list(self.engines),
            "spec": self.spec.to_dict(),
            "n_frames": self.n_frames,
            "n_lanes": self.n_lanes,
            "attempts": self.attempts,
            "compile": {f"O{level}": stats
                        for level, stats in self.compile_stats.items()},
            "sim": dict(self.sim_stats),
            "mismatches": self.mismatches,
            "failures": list(self.failures),
            "seconds": round(self.seconds, 3),
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def run_corpus(
    count: int,
    seed: int = 0,
    core: CoreSpec | str = "fir",
    spec: GenSpec | None = None,
    levels: tuple[int, ...] = (0, 1, 2),
    engines: tuple[str, ...] | None = None,
    n_frames: int = 8,
    n_lanes: int = 4,
    verify: str = "off",
) -> CorpusReport:
    """Materialize, batch-compile and differentially simulate a corpus.

    Every stage is deterministic in ``(spec, seed, core, levels)``
    except the wall-clock figures.  Raises only on corpus-generation
    exhaustion; per-application compile or simulation failures land in
    ``report.failures`` and mismatches in ``report.mismatches``.

    ``verify`` is threaded into :class:`CompileOptions` — ``"strict"``
    runs the stage verifiers and the machine-code lint on every corpus
    compile, so a failed invariant surfaces as a compile failure line
    instead of (at best) a downstream simulation mismatch.
    """
    from ..sim.batch import run_batch
    from ..toolchain import Toolchain

    resolved = resolve_core(core)
    spec = spec if spec is not None else GenSpec()
    engines = tuple(engines) if engines is not None else available_engines()
    report = CorpusReport(core=resolved.name, seed=seed, count=count,
                          levels=tuple(levels), engines=engines, spec=spec,
                          n_frames=n_frames, n_lanes=n_lanes)
    started = time.perf_counter()

    corpus: list[GeneratedApp] = generate_corpus(
        spec, count, seed=seed, core=resolved, levels=tuple(levels))
    report.attempts = corpus[-1].seed - seed + 1 if corpus else 0
    dfgs = [app.dfg for app in corpus]
    names = [f"gen_{app.seed}" for app in corpus]

    # Compile throughput: one cached batch session per level (the
    # filtering pass above already proved feasibility, so failures here
    # are findings, not noise).
    binaries: list = []
    for level in levels:
        toolchain = Toolchain(resolved, cache=StageCache(), opt=level,
                              verify=verify)
        result = toolchain.compile_many(dfgs, names=names)
        level_binaries = []
        for app, entry in zip(corpus, result.entries):
            if entry.state is None:
                report.failures.append(
                    f"seed={app.seed} -O{level}: {entry.error}")
            else:
                level_binaries.append((app, entry.state.artifacts["binary"]))
        report.compile_stats[level] = {
            "seconds": round(result.seconds, 4),
            "apps_per_second": round(len(dfgs) / result.seconds, 2)
            if result.seconds else None,
            "cycles_total": sum(app.cycles.get(level, 0) for app in corpus),
        }
        if level == levels[-1]:
            binaries = level_binaries

    # Simulation throughput + differential check, per engine.
    fmt = FixedFormat(resolved.data_width, resolved.frac_bits)
    cases = []
    for app, binary in binaries:
        stimulus = random_stimulus(app.dfg, n_lanes, n_frames, app.seed, fmt)
        expected = [run_reference(app.dfg, lane, n_frames, fmt=fmt)
                    for lane in stimulus]
        cases.append((app, binary, stimulus, expected))
    for engine in engines:
        engine_start = time.perf_counter()
        lane_frames = 0
        for app, binary, stimulus, expected in cases:
            try:
                actual = run_batch(binary, stimulus, n_frames, engine=engine)
            except ReproError as exc:
                report.failures.append(
                    f"seed={app.seed} engine={engine}: "
                    f"{type(exc).__name__}: {exc}")
                continue
            lane_frames += n_lanes * n_frames
            if actual != expected:
                report.mismatches += 1
                report.failures.append(
                    f"seed={app.seed} engine={engine}: outputs differ "
                    f"from reference")
        elapsed = time.perf_counter() - engine_start
        report.sim_stats[engine] = {
            "seconds": round(elapsed, 4),
            "lane_frames": lane_frames,
            "lane_frames_per_second": round(lane_frames / elapsed, 1)
            if elapsed else None,
        }

    report.seconds = time.perf_counter() - started
    return report
