"""``repro.gen`` — seeded random-DFG corpora and differential fuzzing.

Four pieces, layered:

* :mod:`repro.gen.generator` — :class:`GenSpec` + :func:`generate_dfg`
  turn a seed into a well-formed time-loop application whose operations
  come from a target core's OPU library; :func:`generate_corpus` pins
  whole compile-filtered corpora to a single seed.
* :mod:`repro.gen.fuzz` — :func:`fuzz` runs each generated case through
  every ``-O`` level and every simulator engine, bit-compared against
  the reference interpreter; findings carry a replay seed.
* :mod:`repro.gen.shrink` — :func:`shrink_dfg` greedily minimizes a
  failing graph while the caller's predicate keeps reproducing.
* :mod:`repro.gen.corpus` — :func:`run_corpus` measures corpus-scale
  compile and simulation throughput into ``BENCH_corpus.json``.

CLI: ``repro fuzz`` and ``repro corpus``; strategy notes in
``docs/testing.md``.
"""

from .corpus import CORPUS_REPORT_VERSION, CorpusReport, run_corpus
from .fuzz import (
    CaseResult,
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    available_engines,
    fuzz,
    random_stimulus,
    run_case,
)
from .generator import (
    GeneratedApp,
    GenSpec,
    case_seed,
    generate_corpus,
    generate_dfg,
    op_vocabulary,
)
from .shrink import shrink_dfg

__all__ = [
    "CORPUS_REPORT_VERSION",
    "CaseResult",
    "CorpusReport",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GenSpec",
    "GeneratedApp",
    "available_engines",
    "case_seed",
    "fuzz",
    "generate_corpus",
    "generate_dfg",
    "op_vocabulary",
    "random_stimulus",
    "run_case",
    "run_corpus",
    "shrink_dfg",
]
