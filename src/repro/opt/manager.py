"""Pass manager and optimization levels.

The manager runs a named pipeline of passes over a DFG and records
what every pass did in an :class:`OptReport`.  Levels mirror the
classic compiler convention:

``-O0``
    Nothing.  The graph is lowered exactly as written — the mode every
    paper-reproduction bench pins, since the published figures describe
    unoptimized source.
``-O1`` (default)
    One sweep of constant folding, algebraic identity simplification,
    common-subexpression elimination and dead-code elimination.
``-O2``
    The ``-O1`` pipeline plus core-aware strength reduction, iterated
    to a fixpoint (each sweep can expose work for the next: a folded
    constant enables an identity, the identity exposes a common
    subexpression, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..fixed import Q15, FixedFormat
from ..lang.dfg import Dfg
from .passes import (
    AlgebraicSimplifyPass,
    ConstantFoldingPass,
    CsePass,
    DcePass,
    Pass,
    PassContext,
    PassStats,
    StrengthReductionPass,
)

#: Safety cap on fixpoint iteration; real graphs settle in 2-3 sweeps.
MAX_ITERATIONS = 10


class OptimizationError(ReproError):
    """The optimizer was configured inconsistently."""


@dataclass
class OptReport:
    """Per-pass statistics of one optimizer run (a compile artifact)."""

    level: int
    nodes_before: int = 0
    nodes_after: int = 0
    iterations: int = 0
    passes: list[PassStats] = field(default_factory=list)

    @property
    def nodes_removed(self) -> int:
        """Net node-count reduction over the whole pipeline."""
        return self.nodes_before - self.nodes_after

    @property
    def changed(self) -> bool:
        """True when any pass rewrote or removed anything."""
        return any(stats.changed for stats in self.passes)

    def totals(self) -> dict[str, int]:
        """Aggregate rewrite counts per pass name over all iterations."""
        totals: dict[str, int] = {}
        for stats in self.passes:
            work = stats.rewrites + stats.removed
            if work:
                totals[stats.name] = totals.get(stats.name, 0) + work
        return totals

    def summary(self) -> str:
        """One-line digest, e.g. ``fold 2, cse 5, dce 9``."""
        totals = self.totals()
        if not totals:
            return "no rewrites"
        return ", ".join(f"{name} {count}" for name, count in totals.items())


class PassManager:
    """Run a pass pipeline over a DFG, once or to a fixpoint."""

    def __init__(self, passes: list[Pass], iterate: bool = False,
                 level: int = 0):
        self.passes = list(passes)
        self.iterate = iterate
        self.level = level

    def run(self, dfg: Dfg, core=None,
            fmt: FixedFormat | None = None) -> tuple[Dfg, OptReport]:
        """Run the pass pipeline over ``dfg`` (to a fixpoint when
        ``iterate``), returning the rewritten graph and its report.

        ``core`` feeds the core-aware passes and supplies the
        fixed-point format; ``fmt`` overrides the format when no core
        is at hand.
        """
        if fmt is None:
            fmt = (FixedFormat(core.data_width, core.frac_bits)
                   if core is not None else Q15)
        ctx = PassContext(fmt=fmt, core=core)
        report = OptReport(level=self.level, nodes_before=len(dfg.nodes))
        if not self.passes:
            report.nodes_after = len(dfg.nodes)
            return dfg, report
        dfg.validate()      # passes rely on topological node order
        max_sweeps = MAX_ITERATIONS if self.iterate else 1
        for _ in range(max_sweeps):
            report.iterations += 1
            sweep_changed = False
            for pass_ in self.passes:
                dfg, stats = pass_.run(dfg, ctx)
                report.passes.append(stats)
                sweep_changed = sweep_changed or stats.changed
            if not sweep_changed:
                break
        report.nodes_after = len(dfg.nodes)
        dfg.validate()
        return dfg, report


def passes_for_level(level: int) -> list[Pass]:
    """The pass pipeline of one ``-O`` level."""
    if level == 0:
        return []
    base: list[Pass] = [
        ConstantFoldingPass(),
        AlgebraicSimplifyPass(),
        CsePass(),
    ]
    if level == 1:
        return base + [DcePass()]
    if level == 2:
        return base + [StrengthReductionPass(), DcePass()]
    raise OptimizationError(
        f"unknown optimization level {level!r}: expected 0, 1 or 2"
    )


def machine_independent_passes(level: int) -> list[Pass]:
    """The core-agnostic subset of :func:`passes_for_level`.

    Everything except strength reduction: these passes depend only on
    the fixed-point format, so their result is shared across candidate
    cores during design-space exploration.
    """
    if level == 0:
        return []
    if level in (1, 2):
        return [
            ConstantFoldingPass(),
            AlgebraicSimplifyPass(),
            CsePass(),
            DcePass(),
        ]
    raise OptimizationError(
        f"unknown optimization level {level!r}: expected 0, 1 or 2"
    )


def core_specialization_passes(level: int) -> list[Pass]:
    """The core-aware subset: what must re-run per candidate core.

    Only ``-O2`` has core-aware work — strength reduction rewrites
    power-of-two multiplies into the ``asr<k>`` shifts *this* core can
    execute, after which CSE/DCE clean up the exposed redundancy.
    """
    if level < 2:
        return []
    return [StrengthReductionPass(), CsePass(), DcePass()]


def optimize_machine_independent(
    dfg: Dfg, level: int = 1, fmt: FixedFormat | None = None
) -> tuple[Dfg, OptReport]:
    """Run only the core-agnostic passes of ``level``.

    The shared half of a design-space sweep: optimize each application
    once per opt level here, then :func:`specialize_for_core` per
    candidate.  ``fmt`` defaults to Q15, the format of every core the
    intermediate-architecture generator synthesizes.
    """
    passes = machine_independent_passes(level)
    manager = PassManager(passes, iterate=(level >= 2), level=level)
    return manager.run(dfg, fmt=fmt)


def specialize_for_core(
    dfg: Dfg, core, level: int = 1
) -> tuple[Dfg, OptReport]:
    """Re-run the core-aware passes of ``level`` against ``core``.

    A no-op below ``-O2``.  Together with
    :func:`optimize_machine_independent` this factors :func:`optimize`
    into a shared prefix and a cheap per-core suffix; both halves are
    semantics-preserving, so any interleaving is bit-exact with the
    reference interpreter.
    """
    passes = core_specialization_passes(level)
    manager = PassManager(passes, iterate=bool(passes), level=level)
    return manager.run(dfg, core=core)


def manager_for_level(level: int) -> PassManager:
    """The canonical :class:`PassManager` of an ``-O`` level."""
    return PassManager(passes_for_level(level), iterate=(level >= 2),
                       level=level)


def optimize(dfg: Dfg, core=None, level: int = 1,
             fmt: FixedFormat | None = None) -> tuple[Dfg, OptReport]:
    """Optimize ``dfg`` at ``level``; the main entry point.

    ``core`` enables the core-aware passes (and provides the
    fixed-point format); ``fmt`` overrides the format for core-less
    use in tests and tools.
    """
    return manager_for_level(level).run(dfg, core=core, fmt=fmt)
