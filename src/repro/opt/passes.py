"""Machine-independent optimization passes over the DFG.

Every pass is a pure rewrite: it receives a validated
:class:`~repro.lang.dfg.Dfg` and returns a *new*, semantically
equivalent one plus a :class:`PassStats` record.  Semantic equivalence
is defined bit-exactly over the core's fixed-point arithmetic
(:mod:`repro.fixed`): the reference interpreter and the cycle-accurate
simulator must produce identical output streams for the original and
the optimized graph.  That is why constant folding evaluates on
*quantized* coefficients, why ``x * 1.0`` only fires when ``1.0`` is
exactly representable, and why ``pass``/``pass_clip`` collapse relies
on the range invariant (every value flowing through the graph is
already inside the representable range, so ``wrap`` and ``clip`` are
identities on it).

Passes communicate through three mechanisms:

* *forwarding* — a node's consumers are redirected to another value
  (identity simplification, CSE).  The bypassed node stays in the
  graph; dead-code elimination removes it in the same pipeline.
* *replacement* — a node is rewritten in place, keeping its id
  (constant folding turns an OP into a PARAM; strength reduction turns
  a multiply into a shift).
* *removal* — dead-code elimination drops nodes and renumbers the
  survivors (node ids index the node list).

Core-aware passes receive the :class:`~repro.arch.library.CoreSpec`
through the :class:`PassContext`; purely machine-independent passes
only use its fixed-point format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace

from ..arch.opu import OpuKind
from ..fixed import Q15, FixedFormat
from ..lang.dfg import Dfg, Node, NodeKind

#: Operations whose operands the optimizer may reorder.  This is a
#: property of the fixed-point semantics (wrap/clip addition and the
#: fractional multiply are commutative), not of any core's routing.
COMMUTATIVE_OPS = frozenset({"add", "add_clip", "mult"})


@dataclass
class PassContext:
    """Everything a pass may consult besides the graph itself."""

    fmt: FixedFormat = Q15
    core: object | None = None     # CoreSpec, for core-aware passes


@dataclass
class PassStats:
    """What one pass did to one graph."""

    name: str
    rewrites: int = 0              # folds / forwards / replacements
    removed: int = 0               # nodes dropped (DCE only)
    detail: dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        """True when the pass rewrote or removed anything."""
        return bool(self.rewrites or self.removed)

    def count(self, what: str, n: int = 1) -> None:
        """Record ``n`` rewrites of kind ``what`` (e.g. ``x*0``)."""
        self.detail[what] = self.detail.get(what, 0) + n
        self.rewrites += n


class Pass:
    """Base class: a named rewrite of the DFG."""

    name = "?"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        """Rewrite ``dfg`` under ``ctx``; must return a new,
        semantically equivalent graph plus the pass statistics (the
        input graph is never mutated)."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Shared rewrite plumbing
# ---------------------------------------------------------------------------

def _resolver(forward: dict[int, int]):
    """Path-compressed lookup through a forwarding map."""

    def resolve(node_id: int) -> int:
        seen = []
        while node_id in forward:
            seen.append(node_id)
            node_id = forward[node_id]
        for s in seen:
            forward[s] = node_id
        return node_id

    return resolve


def _with_nodes(dfg: Dfg, nodes: list[Node],
                params: dict[str, float] | None = None) -> Dfg:
    """A fresh Dfg sharing ports/states but with rewritten nodes."""
    return Dfg(
        name=dfg.name,
        nodes=nodes,
        params=dict(dfg.params) if params is None else params,
        inputs=list(dfg.inputs),
        outputs=list(dfg.outputs),
        states=dict(dfg.states),
    )


def _intern_constant(params: dict[str, float], fmt: FixedFormat,
                     quantized: int) -> str:
    """A parameter name whose quantized value is ``quantized``.

    Reuses an existing coefficient when one quantizes identically (the
    constant pool stays minimal — one ROM word per distinct value);
    otherwise coins a fresh ``c<value>`` name.
    """
    for name, value in params.items():
        if fmt.from_float(value) == quantized:
            return name
    base = f"c{quantized}" if quantized >= 0 else f"c_m{-quantized}"
    name = base
    suffix = 0
    while name in params:
        suffix += 1
        name = f"{base}_{suffix}"
    params[name] = fmt.to_float(quantized)
    return name


def _quantized_params(dfg: Dfg, fmt: FixedFormat) -> dict[int, int]:
    """PARAM node id -> quantized coefficient value."""
    return {
        node.id: fmt.from_float(dfg.params[node.name])
        for node in dfg.nodes
        if node.kind is NodeKind.PARAM
    }


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

class ConstantFoldingPass(Pass):
    """Evaluate OP nodes whose inputs are all coefficients.

    Folding happens on *quantized* values with the exact wrap/clip
    semantics of :meth:`repro.fixed.FixedFormat.apply`, so the folded
    coefficient is bit-identical to what the hardware would have
    computed — including saturation (``add_clip`` of two large
    coefficients folds to the rail).  Whole constant subtrees collapse
    in a single sweep because the node list is topologically ordered.
    Operations without fixed-point semantics (custom ASU ops) are left
    alone.
    """

    name = "fold"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        stats = PassStats(self.name)
        fmt = ctx.fmt
        params = dict(dfg.params)
        const: dict[int, int] = {}
        nodes: list[Node] = []
        for node in dfg.nodes:
            if node.kind is NodeKind.PARAM:
                const[node.id] = fmt.from_float(params[node.name])
            elif (node.kind is NodeKind.OP and node.args
                    and all(arg in const for arg in node.args)):
                try:
                    value = fmt.apply(node.name, *[const[a] for a in node.args])
                except ValueError:
                    nodes.append(_dc_replace(node))
                    continue
                name = _intern_constant(params, fmt, value)
                const[node.id] = value
                nodes.append(Node(id=node.id, kind=NodeKind.PARAM, name=name,
                                  label=node.label))
                stats.count("folds")
                continue
            nodes.append(_dc_replace(node))
        if not stats.changed:
            return dfg, stats
        return _with_nodes(dfg, nodes, params), stats


# ---------------------------------------------------------------------------
# Algebraic identity simplification
# ---------------------------------------------------------------------------

class AlgebraicSimplifyPass(Pass):
    """Identities that hold bit-exactly in the fixed-point domain.

    * ``pass(x)`` / ``pass_clip(x)`` -> ``x``   (covers double-pass
      chains: each link forwards to the previous one's source)
    * ``add(x, 0)``, ``add_clip(x, 0)``, ``sub(x, 0)`` -> ``x``
    * ``mult(x, c)`` with ``c`` quantizing to exactly 1.0 -> ``x``
      (in Q15 the value 1.0 is not representable, so this only fires
      on formats with headroom, e.g. Q8.8)
    * ``mult(x, 0)`` and ``sub(x, x)`` -> the constant 0

    All rely on the range invariant: every value in the graph is inside
    the representable range, so ``wrap``/``clip`` of an unmodified
    value is the value itself.
    """

    name = "algebraic"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        stats = PassStats(self.name)
        fmt = ctx.fmt
        params = dict(dfg.params)
        const = _quantized_params(dfg, fmt)
        forward: dict[int, int] = {}
        resolve = _resolver(forward)
        nodes: list[Node] = []
        for node in dfg.nodes:
            args = tuple(resolve(arg) for arg in node.args)
            if node.kind is not NodeKind.OP:
                nodes.append(_dc_replace(node, args=args))
                continue
            target = self._forward_target(node.name, args, const, fmt, stats)
            if target is not None:
                forward[node.id] = target
                nodes.append(_dc_replace(node, args=args))
                continue
            if self._is_zero(node.name, args, const):
                name = _intern_constant(params, fmt, 0)
                const[node.id] = 0
                nodes.append(Node(id=node.id, kind=NodeKind.PARAM, name=name,
                                  label=node.label))
                stats.count("zeros")
                continue
            nodes.append(_dc_replace(node, args=args))
        if not stats.changed:
            return dfg, stats
        return _with_nodes(dfg, nodes, params), stats

    @staticmethod
    def _forward_target(name: str, args: tuple[int, ...],
                        const: dict[int, int], fmt: FixedFormat,
                        stats: PassStats) -> int | None:
        if name in ("pass", "pass_clip") and len(args) == 1:
            stats.count("pass_collapsed")
            return args[0]
        if len(args) != 2:
            return None
        c0, c1 = const.get(args[0]), const.get(args[1])
        if name in ("add", "add_clip"):
            if c0 == 0:
                stats.count("add_zero")
                return args[1]
            if c1 == 0:
                stats.count("add_zero")
                return args[0]
        elif name == "sub" and c1 == 0:
            stats.count("sub_zero")
            return args[0]
        elif name == "mult":
            one = fmt.scale if fmt.scale <= fmt.max_value else None
            if one is not None and c0 == one:
                stats.count("mult_one")
                return args[1]
            if one is not None and c1 == one:
                stats.count("mult_one")
                return args[0]
        return None

    @staticmethod
    def _is_zero(name: str, args: tuple[int, ...],
                 const: dict[int, int]) -> bool:
        if name == "mult" and len(args) == 2:
            return const.get(args[0]) == 0 or const.get(args[1]) == 0
        if name == "sub" and len(args) == 2:
            return args[0] == args[1]
        return False


# ---------------------------------------------------------------------------
# Common-subexpression elimination
# ---------------------------------------------------------------------------

class CsePass(Pass):
    """Merge nodes that provably compute the same value every iteration.

    * OP nodes with the same operation and operand values (operands of
      commutative operations are compared order-insensitively);
    * DELAY nodes reading the same state at the same distance — each
      merge saves one address computation *and* one RAM read per
      iteration, which matters on cores where the RAM is the busiest
      unit;
    * PARAM nodes whose coefficients quantize to the same word (one
      fetch and one ROM word per distinct constant).

    INPUT nodes are never merged (each one consumes a sample from the
    port stream), and OUTPUT/STATE_WRITE are effects, not values.
    """

    name = "cse"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        stats = PassStats(self.name)
        fmt = ctx.fmt
        seen: dict[tuple, int] = {}
        forward: dict[int, int] = {}
        resolve = _resolver(forward)
        nodes: list[Node] = []
        for node in dfg.nodes:
            args = tuple(resolve(arg) for arg in node.args)
            key = self._key(node, args, dfg, fmt)
            if key is not None:
                existing = seen.get(key)
                if existing is not None:
                    forward[node.id] = existing
                    stats.count(f"{node.kind.value}_merged")
                else:
                    seen[key] = node.id
            nodes.append(_dc_replace(node, args=args))
        if not stats.changed:
            return dfg, stats
        return _with_nodes(dfg, nodes), stats

    @staticmethod
    def _key(node: Node, args: tuple[int, ...], dfg: Dfg,
             fmt: FixedFormat) -> tuple | None:
        if node.kind is NodeKind.PARAM:
            return ("param", fmt.from_float(dfg.params[node.name]))
        if node.kind is NodeKind.DELAY:
            return ("delay", node.name, node.delay)
        if node.kind is NodeKind.OP:
            if node.name in COMMUTATIVE_OPS:
                return ("op", node.name, tuple(sorted(args)))
            return ("op", node.name, args)
        return None


# ---------------------------------------------------------------------------
# Strength reduction (core-aware)
# ---------------------------------------------------------------------------

class StrengthReductionPass(Pass):
    """Turn power-of-two multiplies into shifts the core can execute.

    The fractional multiply by ``2^m / 2^frac`` is exactly an
    arithmetic shift right by ``frac - m`` (both floor-divide), so
    ``mult(x, c)`` with a positive power-of-two coefficient becomes the
    unary ``asr<k>`` operation — *when* the target core's OPU library
    offers it (shift distances are encoded in the opcode, see
    :func:`repro.arch.opu.standard_shift_operations`).  This frees the
    multiplier, and when the coefficient has no other readers it also
    drops a constant fetch per iteration plus the ROM word.
    """

    name = "strength"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        stats = PassStats(self.name)
        core = ctx.core
        if core is None:
            return dfg, stats
        fmt = ctx.fmt
        const = _quantized_params(dfg, fmt)
        index = dfg.consumer_index()
        reduced: dict[int, set[int]] = {}   # PARAM id -> rewritten mult ids
        nodes: list[Node] = []
        for node in dfg.nodes:
            shift = None
            if (node.kind is NodeKind.OP and node.name == "mult"
                    and len(node.args) == 2):
                shift = self._shift_of(node.args, const, fmt, core)
            if shift is None:
                nodes.append(_dc_replace(node))
                continue
            coef_arg, signal_arg, distance = shift
            nodes.append(Node(id=node.id, kind=NodeKind.OP,
                              name=f"asr{distance}", args=(signal_arg,),
                              label=node.label))
            reduced.setdefault(coef_arg, set()).add(node.id)
            stats.count("mults_reduced")
        if not stats.changed:
            return dfg, stats
        # A coefficient whose every consumer was strength-reduced is now
        # dead: DCE will drop its fetch and its ROM word.
        freed = sum(
            1 for coef, mults in reduced.items()
            if all(consumer.id in mults for consumer in index[coef])
        )
        if freed:
            stats.detail["coefficients_freed"] = freed
        return _with_nodes(dfg, nodes), stats

    @staticmethod
    def _shift_of(args: tuple[int, ...], const: dict[int, int],
                  fmt: FixedFormat, core) -> tuple[int, int, int] | None:
        for coef_arg, signal_arg in ((args[0], args[1]), (args[1], args[0])):
            value = const.get(coef_arg)
            if value is None or value <= 0 or value & (value - 1):
                continue
            distance = fmt.frac_bits - (value.bit_length() - 1)
            if distance < 1:
                continue            # exact 1.0: algebraic identity's job
            if _supports_dataflow_op(core, f"asr{distance}"):
                return coef_arg, signal_arg, distance
        return None


def _supports_dataflow_op(core, operation: str) -> bool:
    """Whether a dataflow unit (not address/constant/memory machinery)
    of the core can execute ``operation``."""
    return any(
        opu.supports(operation)
        and opu.kind not in (OpuKind.ACU, OpuKind.CONST, OpuKind.ROM,
                             OpuKind.RAM, OpuKind.INPUT, OpuKind.OUTPUT)
        for opu in core.datapath.opus.values()
    )


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------

class DcePass(Pass):
    """Remove nodes that cannot influence any output stream.

    Liveness is the backward closure from the OUTPUT nodes, with one
    refinement over the RT generator's own sweep: a STATE_WRITE is a
    root only while some *live* DELAY reads its state.  A delay line
    that no live computation taps is deleted wholesale — write, address
    computations and RAM allocation included.  Unreferenced
    coefficients and states are pruned from the declaration tables so
    the ROM and delay-line memory stay minimal.

    Node ids index the node list, so removal renumbers the survivors
    (definition order is preserved, keeping the list topologically
    sorted).
    """

    name = "dce"

    def run(self, dfg: Dfg, ctx: PassContext) -> tuple[Dfg, PassStats]:
        stats = PassStats(self.name)
        writes_of: dict[str, list[int]] = {}
        for node in dfg.nodes:
            if node.kind is NodeKind.STATE_WRITE:
                writes_of.setdefault(node.name, []).append(node.id)

        live: set[int] = set()
        work = [n.id for n in dfg.nodes if n.kind is NodeKind.OUTPUT]
        while work:
            node_id = work.pop()
            if node_id in live:
                continue
            live.add(node_id)
            node = dfg.node(node_id)
            work.extend(node.args)
            if node.kind is NodeKind.DELAY:
                work.extend(writes_of.get(node.name, ()))

        kept = [node for node in dfg.nodes if node.id in live]
        stats.removed = len(dfg.nodes) - len(kept)
        if not stats.removed:
            return dfg, stats

        id_map = {node.id: index for index, node in enumerate(kept)}
        nodes = [
            _dc_replace(node, id=id_map[node.id],
                        args=tuple(id_map[a] for a in node.args))
            for node in kept
        ]
        live_params = {n.name for n in nodes if n.kind is NodeKind.PARAM}
        live_states = {
            n.name for n in nodes
            if n.kind in (NodeKind.DELAY, NodeKind.STATE_WRITE)
        }
        pruned = Dfg(
            name=dfg.name,
            nodes=nodes,
            params={k: v for k, v in dfg.params.items() if k in live_params},
            inputs=list(dfg.inputs),
            outputs=list(dfg.outputs),
            states={k: v for k, v in dfg.states.items() if k in live_states},
        )
        return pruned, stats
