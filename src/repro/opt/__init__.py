"""Machine-independent DFG optimizer (the layer in front of RT
generation).

The paper's figure of merit is the time-loop length in instructions;
every redundant transfer the RT generator emits is a slot the scheduler
must pack.  This package shrinks the data-flow graph *before* lowering:
constant folding on quantized coefficients, algebraic identities that
hold bit-exactly in the fixed-point domain, common-subexpression
elimination (shared delay-line reads in particular), core-aware
strength reduction of power-of-two multiplies, and dead-code
elimination.  :func:`optimize` is the entry point; the pipeline runs at
``-O0``/``-O1``/``-O2`` (see :mod:`repro.opt.manager`).
"""

from .manager import (
    MAX_ITERATIONS,
    OptimizationError,
    OptReport,
    PassManager,
    core_specialization_passes,
    machine_independent_passes,
    manager_for_level,
    optimize,
    optimize_machine_independent,
    passes_for_level,
    specialize_for_core,
)
from .passes import (
    COMMUTATIVE_OPS,
    AlgebraicSimplifyPass,
    ConstantFoldingPass,
    CsePass,
    DcePass,
    Pass,
    PassContext,
    PassStats,
    StrengthReductionPass,
)

__all__ = [
    "AlgebraicSimplifyPass",
    "COMMUTATIVE_OPS",
    "ConstantFoldingPass",
    "CsePass",
    "DcePass",
    "MAX_ITERATIONS",
    "OptReport",
    "OptimizationError",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStats",
    "StrengthReductionPass",
    "core_specialization_passes",
    "machine_independent_passes",
    "manager_for_level",
    "optimize",
    "optimize_machine_independent",
    "passes_for_level",
    "specialize_for_core",
]
