"""The compile-service wire protocol: versioned JSON requests and jobs.

PR 5 made every compile input serializable — source text travels as a
string, cores as registered names (:mod:`repro.arch.registry`), options
as the :meth:`~repro.options.CompileOptions.to_dict` schema — so the
protocol here is thin: validate a JSON payload into typed inputs, and
render a :class:`~repro.serve.jobs.Job` back out as JSON.

Every request body carries ``wire_version`` (optional on the way in;
stamped on every response).  An unknown version is refused with a
clear 400 before any field is interpreted, exactly like
``CompileOptions.from_dict`` refuses an unknown ``schema_version`` —
the two stamps version different layers (the envelope vs the options
payload inside it) and evolve independently.

A compile request::

    {
      "wire_version": 1,
      "source": "app fir ...",         # DSP source text (required)
      "core": "audio",                  # registered core name (required)
      "options": {...},                 # CompileOptions.to_dict(), optional
      "io_binding": {"x": "ram0"},      # optional
      "name": "fir8"                    # optional label
    }

A job rendering (status, result polling and batch entries share it)::

    {
      "wire_version": 1,
      "id": "j-000001", "name": "fir8", "core": "audio",
      "state": "done",                  # queued/running/done/failed/...
      "options": {...},
      "submitted": 1723110000.0, "seconds": 0.42,
      "result": {"n_cycles": 23, "cache": {...}, "program": {...}},
      "error": null
    }
"""

from __future__ import annotations

from typing import Any

from ..arch.registry import list_cores
from ..errors import ReproError
from ..options import CompileOptions

#: Bump on any breaking change to the request/response envelope.
WIRE_VERSION = 1

#: Job lifecycle states.  ``queued`` → ``running`` → one terminal state.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})


class ProtocolError(ReproError):
    """A request payload is malformed; the message is client-facing."""


def check_wire_version(payload: dict[str, Any]) -> None:
    """Refuse a payload stamped with a version this build cannot speak
    (a missing stamp reads as the current version)."""
    version = payload.get("wire_version", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported wire_version {version!r} "
            f"(this server speaks version {WIRE_VERSION})")


def parse_compile_request(
    payload: Any,
    allowed_cores: frozenset[str] | None = None,
    max_source_bytes: int = 1 << 20,
) -> dict[str, Any]:
    """Validate one compile-request payload into typed job inputs.

    Returns ``{"source", "core", "options", "io_binding", "name"}``
    with ``options`` a validated :class:`CompileOptions`.  Raises
    :class:`ProtocolError` with a client-facing message on any defect
    — nothing half-validated ever reaches the queue.

    Cores are *registered names only*: a service must not let a request
    name an arbitrary server-side file path the way the CLI's
    ``--core`` may.  ``allowed_cores`` narrows the registry further
    (the ``--cores`` server flag).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}")
    check_wire_version(payload)
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("'source' must be a non-empty string")
    if len(source.encode("utf-8")) > max_source_bytes:
        raise ProtocolError(
            f"source exceeds the {max_source_bytes}-byte limit")
    core = payload.get("core")
    if not isinstance(core, str):
        raise ProtocolError("'core' must be a registered core name")
    known = frozenset(list_cores())
    served = known if allowed_cores is None else (known & allowed_cores)
    if core not in served:
        raise ProtocolError(
            f"unknown core {core!r} (served: {', '.join(sorted(served))})")
    raw_options = payload.get("options") or {}
    if not isinstance(raw_options, dict):
        raise ProtocolError("'options' must be an object "
                            "(CompileOptions.to_dict schema)")
    try:
        options = CompileOptions.from_dict(raw_options)
    except ReproError as exc:
        raise ProtocolError(f"bad options: {exc}") from None
    io_binding = payload.get("io_binding")
    if io_binding is not None and not (
            isinstance(io_binding, dict)
            and all(isinstance(k, str) and isinstance(v, str)
                    for k, v in io_binding.items())):
        raise ProtocolError("'io_binding' must map port names to "
                            "memory names")
    name = payload.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("'name' must be a string")
    return {"source": source, "core": core, "options": options,
            "io_binding": io_binding, "name": name}


def job_payload(source: str, core: str, options: CompileOptions,
                io_binding: dict[str, str] | None,
                name: str | None) -> dict[str, Any]:
    """The JSON-able execution payload a worker (local pool or remote
    puller) receives — the inverse of :func:`parse_compile_request`,
    minus the validation it no longer needs."""
    return {
        "wire_version": WIRE_VERSION,
        "source": source,
        "core": core,
        "options": options.to_dict(),
        "io_binding": io_binding,
        "name": name,
    }
