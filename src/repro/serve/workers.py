"""Job execution for the compile server: the worker function + pools.

:func:`execute_compile_job` is the one function every execution style
runs — the server's local pools, and ``repro worker`` processes
pulling over HTTP.  It is module-level and takes/returns plain JSON
dicts so it crosses a :class:`~concurrent.futures.ProcessPoolExecutor`
boundary by pickle and an HTTP boundary by ``json`` with the same
shape.  It never raises: compile failures come back as structured
``{"ok": False, ...}`` reports, because a worker crash must fail one
job, not the pool.

Observability crosses the process boundary by value: the worker runs
under its own live :class:`~repro.obs.Telemetry` and ships the counter
dict home in the report; the server merges it into its own registry.
That is what lets ``GET /v1/stats`` answer "did that second submission
execute any stages?" (``stagecache.*``) even when the compile happened
in a child process.

:class:`WorkerPool` wraps the executor choice: ``"process"`` (the
default — compiles are CPU-bound and the scheduler holds the GIL) or
``"thread"`` (in-process; what the tests use so a ``memory:`` cache
backend and its counters stay visible to the asserting process).
"""

from __future__ import annotations

import asyncio
import time
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Any

from ..errors import ReproError
from ..obs import Telemetry
from ..options import CompileOptions
from .protocol import WIRE_VERSION, check_wire_version


def execute_compile_job(payload: dict[str, Any]) -> dict[str, Any]:
    """Compile one job payload (:func:`~repro.serve.protocol.job_payload`)
    to a completion report.

    The report always carries ``ok``, ``seconds`` and ``counters``;
    success adds ``result`` (``n_cycles``, ``cache`` counts, the
    microcode image dict, per-stage ``fingerprints``), failure adds
    ``error`` and ``error_type``.
    """
    from ..encode.image import program_to_dict
    from ..toolchain import Toolchain

    telemetry = Telemetry()
    start = time.perf_counter()
    try:
        check_wire_version(payload)
        options = CompileOptions.from_dict(payload["options"])
        if options.stop_after is not None:
            options = options.replace(stop_after=None)
        toolchain = Toolchain(payload["core"], options,
                              telemetry=telemetry)
        state = toolchain.run_pipeline(
            payload["source"], io_binding=payload.get("io_binding"))
        compiled = state.as_compiled()
        return {
            "wire_version": WIRE_VERSION,
            "ok": True,
            "seconds": time.perf_counter() - start,
            "counters": dict(telemetry.counters),
            "result": {
                "name": payload.get("name"),
                "core": payload["core"],
                "n_cycles": compiled.n_cycles,
                "cache": state.cache_counts(),
                "fingerprints": dict(state.fingerprints),
                "program": program_to_dict(compiled.binary),
            },
        }
    except ReproError as exc:
        return {
            "wire_version": WIRE_VERSION,
            "ok": False,
            "seconds": time.perf_counter() - start,
            "counters": dict(telemetry.counters),
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
    except Exception as exc:  # noqa: BLE001 - crash → report, not pool death
        return {
            "wire_version": WIRE_VERSION,
            "ok": False,
            "seconds": time.perf_counter() - start,
            "counters": dict(telemetry.counters),
            "error": f"internal error: {exc}",
            "error_type": type(exc).__name__,
            "traceback": traceback.format_exc(),
        }


class WorkerPool:
    """A bounded executor the server dispatches local jobs through."""

    def __init__(self, workers: int = 2, kind: str = "process"):
        if kind not in ("process", "thread"):
            raise ValueError(
                f"executor kind must be 'process' or 'thread', "
                f"got {kind!r}")
        self.workers = max(1, workers)
        self.kind = kind
        self._executor: Executor | None = None

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            if self.kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers)
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-serve")
        return self._executor

    async def run(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Execute one job on the pool without blocking the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.executor, execute_compile_job, payload)

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
