"""The compile server: asyncio HTTP/JSON front-end over the Toolchain.

Standard library only, by design: one :func:`asyncio.start_server`
loop speaking just enough HTTP/1.1 (request line, headers,
``Content-Length`` bodies, ``Connection: close``) to serve JSON — no
web framework, same as the rest of this repo takes no dependencies.

Endpoints (all JSON; every response stamps ``wire_version``)::

    GET  /v1/health                    liveness + served cores + mode
    GET  /v1/stats                     queue/job/counter/cache snapshot
    POST /v1/jobs                      submit one compile  → 202 + job
    POST /v1/batch                     submit many         → 202 + jobs
    GET  /v1/jobs/{id}[?wait=S]        job status (long-poll up to S)
    GET  /v1/jobs/{id}/result          result (202 while not terminal)
    GET  /v1/jobs/{id}/events          NDJSON job transitions (close-
                                       delimited stream)
    GET  /v1/cache/stats               cache-backend stats
    POST /v1/cache/gc                  bound the store (admin)
    POST /v1/work/claim                pull-mode: claim a queued job
    POST /v1/work/{id}/complete        pull-mode: report a claimed job

Load shedding happens at the door: a full pending queue is 503, a
rate-limited peer is 429 (token bucket per peer address, submissions
only — polling is free), a malformed payload is 400.  Each refusal
counts ``serve.rejections``; nothing half-validated reaches the queue.

Execution is either *pool mode* (``workers > 0``: a dispatcher feeds a
local :class:`~repro.serve.workers.WorkerPool`, per-job wall-clock
timeout via ``asyncio.wait_for``) or *pull mode* (``workers == 0``:
jobs wait for ``repro worker`` processes to claim them over HTTP,
leases re-queue work whose claimant died).  Either way the worker's
counter dict is merged into the server's
:class:`~repro.obs.Telemetry`, so ``GET /v1/stats`` shows aggregated
``stagecache.*`` / ``diskcache.*`` truth about cache behavior across
every job — that is how a client proves a re-submission executed zero
stages.

Cache placement is *server policy*: the configured backend spec
(``--cache``) overrides whatever placement the request's options
carry, so every job shares one artifact store and the admin endpoints
operate on the store jobs actually use.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..obs import Telemetry
from ..pipeline.backend import backend_stats, open_backend
from .jobs import JobStore, QueueFullError, UnknownJobError
from .protocol import (
    DONE,
    FAILED,
    TIMEOUT,
    WIRE_VERSION,
    ProtocolError,
    check_wire_version,
    job_payload,
    parse_compile_request,
)
from .workers import WorkerPool

#: HTTP status reason phrases for the handful of codes we emit.
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Status codes that count as load-shedding rejections.
_REJECTIONS = frozenset({400, 404, 405, 413, 429, 503})


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can tune, with serving defaults."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral, read back from Server.port
    #: Local worker slots; 0 switches to pull mode (remote workers).
    workers: int = 2
    #: ``"process"`` or ``"thread"`` (see WorkerPool).
    executor: str = "process"
    #: Pending-queue bound; beyond it submissions get 503.
    max_queue: int = 64
    #: Terminal jobs retained for result polling.
    max_finished: int = 256
    #: Per-job wall-clock limit in pool mode; None disables.
    job_timeout: float | None = 120.0
    #: Submissions/second/peer (token bucket); None disables.
    rate_limit: float | None = None
    rate_burst: int = 10
    #: Cache-backend spec shared by every job (path | ``memory:<name>``);
    #: None leaves requests' own cache placement untouched.
    cache: str | None = None
    #: Restrict served cores to this subset of the registry.
    cores: frozenset[str] | None = None
    max_source_bytes: int = 1 << 20
    max_body_bytes: int = 4 << 20
    #: Pull-mode claim lease; an unreported job re-queues after this.
    lease_seconds: float = 300.0


class _TokenBucket:
    """Per-peer submission rate limiting (monotonic token bucket)."""

    def __init__(self, rate: float, burst: int):
        self.rate = rate
        self.burst = max(1, burst)
        self._buckets: dict[str, tuple[float, float]] = {}

    def allow(self, peer: str) -> bool:
        now = time.monotonic()
        tokens, last = self._buckets.get(peer, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - last) * self.rate)
        if tokens < 1.0:
            self._buckets[peer] = (tokens, now)
            return False
        self._buckets[peer] = (tokens - 1.0, now)
        return True


@dataclass
class _Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    body: Any
    peer: str
    parts: list[str] = field(default_factory=list)


class CompileServer:
    """The asyncio compile service (see the module docstring)."""

    def __init__(self, config: ServerConfig | None = None,
                 telemetry: Telemetry | None = None):
        self.config = config or ServerConfig()
        #: Live by default — a server exists to be observed.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.store = JobStore(max_queue=self.config.max_queue,
                              max_finished=self.config.max_finished,
                              lease_seconds=self.config.lease_seconds)
        self.pool: WorkerPool | None = (
            WorkerPool(self.config.workers, self.config.executor)
            if self.config.workers > 0 else None)
        self.backend = (open_backend(self.config.cache)
                        if self.config.cache is not None else None)
        self._bucket = (_TokenBucket(self.config.rate_limit,
                                     self.config.rate_burst)
                        if self.config.rate_limit else None)
        self._server: asyncio.base_events.Server | None = None
        self._work = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._closing = False
        self.started = time.time()

    # -- lifecycle -----------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listening socket and start the background loops."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_body_bytes + 65536)
        if self.pool is not None:
            self._spawn(self._dispatch_loop())
        else:
            self._spawn(self._lease_loop())

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._tasks):
            task.cancel()
        if self.pool is not None:
            self.pool.shutdown()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- execution: pool mode ------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Feed queued jobs to the local pool, ``workers`` at a time."""
        assert self.pool is not None
        slots = asyncio.Semaphore(self.pool.workers)
        while not self._closing:
            await slots.acquire()
            job = self.store.next_pending()
            while job is None:
                self._work.clear()
                await self._work.wait()
                if self._closing:
                    slots.release()
                    return
                job = self.store.next_pending()

            async def run_one(job=job):
                try:
                    await self._run_job(job)
                finally:
                    slots.release()

            self._spawn(run_one())

    async def _run_job(self, job) -> None:
        assert self.pool is not None
        self.store.mark_running(job)
        try:
            report = await asyncio.wait_for(
                self.pool.run(job.payload), self.config.job_timeout)
        except asyncio.TimeoutError:
            # The pool slot itself cannot be interrupted mid-compile;
            # the job is declared dead and the slot frees when the
            # underlying future resolves.
            self.telemetry.count("serve.timeouts")
            self.store.finish(job, TIMEOUT,
                              error=f"job exceeded the "
                                    f"{self.config.job_timeout}s limit")
            return
        except Exception as exc:  # noqa: BLE001 - pool death → job failure
            self.store.finish(job, FAILED, error=f"executor failure: {exc}")
            self.telemetry.count("serve.jobs_failed")
            return
        self._absorb_report(job, report)

    def _absorb_report(self, job, report: dict[str, Any]) -> None:
        """Fold a worker report into the store and the telemetry."""
        self._merge_counters(report.get("counters") or {})
        if report.get("ok"):
            self.store.finish(job, DONE, result=report.get("result"),
                              seconds=report.get("seconds"))
            self.telemetry.count("serve.jobs_completed")
        else:
            self.store.finish(job, FAILED,
                              error=report.get("error", "worker failure"),
                              seconds=report.get("seconds"))
            self.telemetry.count("serve.jobs_failed")

    def _merge_counters(self, counters: dict[str, Any]) -> None:
        for name, n in counters.items():
            if isinstance(n, int) and n > 0:
                self.telemetry.count(name, n)

    # -- execution: pull mode ------------------------------------------

    async def _lease_loop(self) -> None:
        """Re-queue claimed jobs whose worker went silent."""
        interval = max(1.0, self.config.lease_seconds / 4)
        while not self._closing:
            await asyncio.sleep(interval)
            self.store.reap_leases()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader, writer)
            if request is None:
                return
            self.telemetry.count("serve.requests")
            await self._route(request, writer)
        except (ProtocolError, json.JSONDecodeError) as exc:
            await self._send(writer, 400, {"error": str(exc)})
        except QueueFullError as exc:
            await self._send(writer, 503, {"error": str(exc)})
        except UnknownJobError as exc:
            await self._send(writer, 404, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - a bad request must not kill the loop
            await self._send(writer, 500, {"error": f"internal error: {exc}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("ascii").split()
        except ValueError:
            raise ProtocolError("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body_bytes:
            await self._send(writer, 413, {
                "error": f"body exceeds the "
                         f"{self.config.max_body_bytes}-byte limit"})
            return None
        body: Any = None
        if length:
            raw_body = await reader.readexactly(length)
            body = json.loads(raw_body.decode("utf-8"))
        split = urlsplit(target)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "?"
        return _Request(method=method.upper(), path=split.path,
                        query=parse_qs(split.query), body=body, peer=peer)

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    obj: dict[str, Any]) -> None:
        if status in _REJECTIONS:
            self.telemetry.count("serve.rejections")
        obj.setdefault("wire_version", WIRE_VERSION)
        payload = json.dumps(obj).encode("utf-8")
        reason = _REASONS.get(status, "?")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        writer.write(head + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, request: _Request,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in request.path.split("/") if p]
        request.parts = parts
        if len(parts) < 2 or parts[0] != "v1":
            raise UnknownJobError(f"no such endpoint {request.path!r}")
        method, head = request.method, parts[1]
        if head == "health" and method == "GET":
            await self._send(writer, 200, self._health())
        elif head == "stats" and method == "GET":
            await self._send(writer, 200, self._stats())
        elif head == "jobs" and method == "POST" and len(parts) == 2:
            await self._submit(request, writer)
        elif head == "batch" and method == "POST" and len(parts) == 2:
            await self._submit_batch(request, writer)
        elif head == "jobs" and method == "GET" and len(parts) == 3:
            await self._job_status(request, writer, parts[2])
        elif (head == "jobs" and method == "GET" and len(parts) == 4
                and parts[3] == "result"):
            job = self.store.get(parts[2])
            status = 200 if job.terminal else 202
            await self._send(writer, status, job.to_dict())
        elif (head == "jobs" and method == "GET" and len(parts) == 4
                and parts[3] == "events"):
            await self._stream_events(writer, parts[2])
        elif head == "cache" and len(parts) == 3 and parts[2] == "stats" \
                and method == "GET":
            await self._send(writer, 200, self._cache_stats())
        elif head == "cache" and len(parts) == 3 and parts[2] == "gc" \
                and method == "POST":
            await self._cache_gc(request, writer)
        elif head == "work" and len(parts) == 3 and parts[2] == "claim" \
                and method == "POST":
            await self._claim(request, writer)
        elif (head == "work" and method == "POST" and len(parts) == 4
                and parts[3] == "complete"):
            await self._complete(request, writer, parts[2])
        else:
            await self._send(writer, 405 if len(parts) >= 2 else 404,
                             {"error": f"cannot {method} {request.path}"})

    # -- handlers ------------------------------------------------------

    def _health(self) -> dict[str, Any]:
        from .. import __version__
        from ..arch.registry import list_cores
        served = frozenset(list_cores())
        if self.config.cores is not None:
            served &= self.config.cores
        return {
            "ok": True,
            "version": __version__,
            "mode": "pool" if self.pool is not None else "pull",
            "workers": self.config.workers,
            "cores": sorted(served),
            "uptime": time.time() - self.started,
        }

    def _stats(self) -> dict[str, Any]:
        return {
            "jobs": self.store.state_counts(),
            "queue_depth": len(self.store.pending),
            "counters": dict(self.telemetry.counters),
            "cache": self._cache_stats()["cache"],
        }

    def _cache_stats(self) -> dict[str, Any]:
        return {"cache": (backend_stats(self.backend)
                          if self.backend is not None else None)}

    def _accept(self, body: Any):
        """Validate one submission body into a queued Job."""
        parsed = parse_compile_request(
            body, allowed_cores=self.config.cores,
            max_source_bytes=self.config.max_source_bytes)
        options = parsed["options"]
        if self.config.cache is not None:
            # Cache placement is server policy (module docstring).
            options = options.replace(disk_cache=True,
                                      cache_dir=self.config.cache)
        payload = job_payload(parsed["source"], parsed["core"], options,
                              parsed["io_binding"], parsed["name"])
        job = self.store.submit(parsed["core"], parsed["name"], options,
                                payload)
        self.telemetry.count("serve.jobs")
        self._work.set()
        return job

    async def _submit(self, request: _Request,
                      writer: asyncio.StreamWriter) -> None:
        if self._bucket is not None and not self._bucket.allow(request.peer):
            await self._send(writer, 429, {"error": "rate limit exceeded"})
            return
        job = self._accept(request.body)
        await self._send(writer, 202, job.to_dict(include_result=False))

    async def _submit_batch(self, request: _Request,
                            writer: asyncio.StreamWriter) -> None:
        if self._bucket is not None and not self._bucket.allow(request.peer):
            await self._send(writer, 429, {"error": "rate limit exceeded"})
            return
        body = request.body
        if not isinstance(body, dict):
            raise ProtocolError("batch body must be a JSON object")
        check_wire_version(body)
        entries = body.get("jobs")
        if not isinstance(entries, list) or not entries:
            raise ProtocolError("'jobs' must be a non-empty array")
        if len(entries) > self.config.max_queue:
            raise QueueFullError(
                f"batch of {len(entries)} exceeds the queue bound "
                f"({self.config.max_queue})")
        # Validate the whole batch before queuing any of it: a batch
        # is accepted atomically or refused atomically.
        parsed = [parse_compile_request(
            entry, allowed_cores=self.config.cores,
            max_source_bytes=self.config.max_source_bytes)
            for entry in entries]
        if len(self.store.pending) + len(parsed) > self.config.max_queue:
            raise QueueFullError(
                f"queue full ({len(self.store.pending)} pending, "
                f"batch of {len(parsed)} refused)")
        jobs = [self._accept(entry) for entry in entries]
        await self._send(writer, 202, {
            "jobs": [job.to_dict(include_result=False) for job in jobs]})

    async def _job_status(self, request: _Request,
                          writer: asyncio.StreamWriter,
                          job_id: str) -> None:
        job = self.store.get(job_id)
        wait = request.query.get("wait")
        if wait and not job.terminal:
            try:
                deadline = min(60.0, float(wait[0]))
            except ValueError:
                raise ProtocolError("'wait' must be a number of "
                                    "seconds") from None
            end = time.monotonic() + deadline
            while not job.terminal:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    break
                await job.wait_change(remaining)
        await self._send(writer, 200, job.to_dict(include_result=False))

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job_id: str) -> None:
        """NDJSON job transitions; the closed connection is the
        delimiter (stdlib-simple on both ends)."""
        job = self.store.get(job_id)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        while True:
            snapshot = job.to_dict(include_result=job.terminal)
            writer.write(json.dumps(snapshot).encode("utf-8") + b"\n")
            await writer.drain()
            if job.terminal:
                return
            await job.wait_change(timeout=15.0)

    async def _cache_gc(self, request: _Request,
                        writer: asyncio.StreamWriter) -> None:
        if self.backend is None:
            raise ProtocolError("this server has no cache backend "
                                "configured")
        body = request.body or {}
        check_wire_version(body)
        max_bytes = body.get("max_bytes")
        min_age = float(body.get("min_age", 0.0))
        with self.telemetry.span("serve.cache_gc"):
            removed = self.backend.gc(max_bytes, min_age=min_age)
        await self._send(writer, 200, {
            "removed": removed, **self._cache_stats()})

    async def _claim(self, request: _Request,
                     writer: asyncio.StreamWriter) -> None:
        body = request.body or {}
        check_wire_version(body)
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            raise ProtocolError("'worker' must name the claimant")
        self.store.reap_leases()
        job = self.store.claim(worker)
        if job is None:
            await self._send(writer, 200, {"job": None})
            return
        self.telemetry.count("serve.claims")
        await self._send(writer, 200, {
            "job": {"id": job.id, "payload": job.payload,
                    "lease_seconds": self.config.lease_seconds}})

    async def _complete(self, request: _Request,
                        writer: asyncio.StreamWriter,
                        job_id: str) -> None:
        body = request.body or {}
        check_wire_version(body)
        worker = body.get("worker")
        report = body.get("report")
        if not isinstance(worker, str) or not isinstance(report, dict):
            raise ProtocolError("'worker' and 'report' are required")
        job = self.store.get(job_id)
        self.store.complete(job_id, worker, report)
        self._merge_counters(report.get("counters") or {})
        self.telemetry.count("serve.jobs_completed" if job.state == DONE
                             else "serve.jobs_failed")
        await self._send(writer, 200, job.to_dict(include_result=False))


# ----------------------------------------------------------------------
# Embedding helpers (tests, the smoke job, notebooks)

class ServerHandle:
    """A server running on a background thread's event loop.

    ``with start_in_thread(config) as handle:`` gives synchronous
    code — tests, ``tools/serve_smoke.py`` — a live server plus its
    ``url``, torn down cleanly on exit.
    """

    def __init__(self, server: CompileServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.server.close(),
                                                  self.loop)
        try:
            future.result(timeout=10)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)
            self.loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def start_in_thread(config: ServerConfig | None = None,
                    telemetry: Telemetry | None = None) -> ServerHandle:
    """Start a :class:`CompileServer` on a daemon thread; returns once
    the socket is bound (``handle.url`` is ready to hit)."""
    server = CompileServer(config, telemetry=telemetry)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError("compile server failed to start")
    return ServerHandle(server, loop, thread)
