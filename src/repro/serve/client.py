"""The synchronous client for the compile service, plus the worker loop.

:class:`ServeClient` speaks the server's JSON protocol over plain
:mod:`http.client` — one connection per request (the server closes
after every response anyway), no dependencies, usable from tests, the
CLI and ``tools/serve_smoke.py`` alike.  Server-side refusals surface
as :class:`ServeClientError` carrying the server's message and status.

:func:`run_worker` is the ``repro worker`` engine: claim a queued job
over ``/v1/work/claim``, compile it with the very same
:func:`~repro.serve.workers.execute_compile_job` the server's local
pools run, report back over ``/v1/work/{id}/complete``.  Artifacts are
shared through the cache backend, not the wire: when the worker's
options point at the same store as the server's other workers (the
server stamps its cache spec into every job payload), a stage one
worker computed is a disk hit for the next.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from ..errors import ReproError
from ..options import CompileOptions
from .protocol import TERMINAL_STATES, WIRE_VERSION


class ServeClientError(ReproError):
    """A request the server refused (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServeClient:
    """A synchronous handle on one compile server."""

    def __init__(self, url: str, timeout: float = 30.0):
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ServeClientError(
                f"only http:// servers are supported, got {url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    def _connect(self, timeout: float | None = None):
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)

    def request(self, method: str, path: str,
                body: dict[str, Any] | None = None,
                timeout: float | None = None) -> dict[str, Any]:
        """One JSON round-trip; non-2xx raises :class:`ServeClientError`
        with the server's message."""
        conn = self._connect(timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                stamped = {"wire_version": WIRE_VERSION, **body}
                payload = json.dumps(stamped).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"cannot reach {self.host}:{self.port}: {exc}") from None
        finally:
            conn.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            raise ServeClientError(
                f"non-JSON response (HTTP {response.status})",
                response.status) from None
        if response.status >= 400:
            raise ServeClientError(
                decoded.get("error", f"HTTP {response.status}"),
                response.status)
        decoded["_status"] = response.status
        return decoded

    # -- the service API -----------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request("GET", "/v1/health")

    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/stats")

    def submit(self, source: str, core: str,
               options: CompileOptions | dict[str, Any] | None = None,
               io_binding: dict[str, str] | None = None,
               name: str | None = None) -> dict[str, Any]:
        """Submit one compile; returns the queued job rendering."""
        if isinstance(options, CompileOptions):
            options = options.to_dict()
        return self.request("POST", "/v1/jobs", {
            "source": source, "core": core, "options": options or {},
            "io_binding": io_binding, "name": name})

    def submit_batch(self,
                     requests: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Submit many compiles atomically; returns the job renderings."""
        normalized = []
        for entry in requests:
            entry = dict(entry)
            if isinstance(entry.get("options"), CompileOptions):
                entry["options"] = entry["options"].to_dict()
            normalized.append(entry)
        return self.request("POST", "/v1/batch",
                            {"jobs": normalized})["jobs"]

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        """Job status; ``wait`` long-polls up to that many seconds."""
        suffix = f"?wait={wait}" if wait else ""
        poll_timeout = self.timeout + (wait or 0)
        return self.request("GET", f"/v1/jobs/{job_id}{suffix}",
                            timeout=poll_timeout)

    def result(self, job_id: str) -> dict[str, Any]:
        """The full job rendering, result included (202 → not done yet,
        signalled by a non-terminal ``state``)."""
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: str, timeout: float = 120.0) -> dict[str, Any]:
        """Long-poll a job to a terminal state and return its result
        rendering; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"job {job_id} still running after {timeout}s")
            status = self.job(job_id, wait=min(10.0, remaining))
            if status["state"] in TERMINAL_STATES:
                return self.result(job_id)

    def events(self, job_id: str,
               timeout: float = 120.0) -> Iterator[dict[str, Any]]:
        """The job's NDJSON transition stream, decoded record by record
        (ends when the job reaches a terminal state)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    message = raw.decode("utf-8", "replace")
                raise ServeClientError(message or f"HTTP {response.status}",
                                       response.status)
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def cache_stats(self) -> dict[str, Any]:
        return self.request("GET", "/v1/cache/stats")

    def cache_gc(self, max_bytes: int | None = None,
                 min_age: float = 0.0) -> dict[str, Any]:
        return self.request("POST", "/v1/cache/gc",
                            {"max_bytes": max_bytes, "min_age": min_age})

    # -- pull mode -----------------------------------------------------

    def claim(self, worker: str) -> dict[str, Any] | None:
        """Claim one queued job; None when the queue is empty."""
        return self.request("POST", "/v1/work/claim",
                            {"worker": worker})["job"]

    def complete(self, job_id: str, worker: str,
                 report: dict[str, Any]) -> dict[str, Any]:
        return self.request("POST", f"/v1/work/{job_id}/complete",
                            {"worker": worker, "report": report})


def run_worker(url: str, name: str = "worker", poll: float = 0.5,
               max_jobs: int | None = None,
               max_idle: float | None = None,
               on_job=None) -> int:
    """The ``repro worker`` loop: claim → compile → report, forever.

    Returns the number of jobs completed.  Stops after ``max_jobs``
    jobs, after ``max_idle`` seconds without work, or when the server
    goes away after having been reachable (a drained smoke run ends
    itself instead of spinning).
    """
    from .workers import execute_compile_job

    client = ServeClient(url)
    completed = 0
    idle_since = time.monotonic()
    while max_jobs is None or completed < max_jobs:
        try:
            claimed = client.claim(name)
        except ServeClientError:
            if completed or (max_idle is not None
                             and time.monotonic() - idle_since > max_idle):
                break
            raise
        if claimed is None:
            if (max_idle is not None
                    and time.monotonic() - idle_since > max_idle):
                break
            time.sleep(poll)
            continue
        report = execute_compile_job(claimed["payload"])
        if on_job is not None:
            on_job(claimed["id"], report)
        try:
            client.complete(claimed["id"], name, report)
        except ServeClientError:
            # Stale lease or vanished server; the job is no longer ours.
            pass
        completed += 1
        idle_since = time.monotonic()
    return completed
