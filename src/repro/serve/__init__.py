"""Compile-as-a-service: the ``repro serve`` subsystem.

An asyncio HTTP/JSON front-end over :class:`repro.toolchain.Toolchain`
— submit sources over the wire, poll or stream job progress, share
compiled artifacts through a pluggable cache backend, and scale out
with pull-mode ``repro worker`` processes.  Standard library only.

See ``docs/serving.md`` for the protocol and operations guide.

    from repro.serve import ServerConfig, ServeClient, start_in_thread

    with start_in_thread(ServerConfig(cache="memory:demo",
                                      executor="thread")) as handle:
        client = ServeClient(handle.url)
        job = client.submit(source_text, "audio")
        result = client.wait(job["id"])
"""

from __future__ import annotations

from .client import ServeClient, ServeClientError, run_worker
from .jobs import Job, JobStore, QueueFullError, UnknownJobError
from .protocol import (
    TERMINAL_STATES,
    WIRE_VERSION,
    ProtocolError,
    parse_compile_request,
)
from .server import (
    CompileServer,
    ServerConfig,
    ServerHandle,
    start_in_thread,
)
from .workers import WorkerPool, execute_compile_job

__all__ = [
    "CompileServer",
    "Job",
    "JobStore",
    "ProtocolError",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "ServerConfig",
    "ServerHandle",
    "TERMINAL_STATES",
    "UnknownJobError",
    "WIRE_VERSION",
    "WorkerPool",
    "execute_compile_job",
    "parse_compile_request",
    "run_worker",
    "start_in_thread",
]
