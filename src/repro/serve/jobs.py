"""Job bookkeeping for the compile server: states, queue, claims.

One :class:`JobStore` lives inside the server's event loop, so it
needs no locks — every mutation happens on that loop.  What it does
need is *wakeups*: a status poll with ``wait=`` and the NDJSON event
stream both park on a job until something changes.  Each :class:`Job`
carries an :class:`asyncio.Event` that is pulsed (set, then replaced)
on every transition, so any number of waiters observe every change
without the store tracking them.

The pending queue is bounded (``max_queue``): a full queue refuses new
submissions with :class:`QueueFullError` — backpressure at the door,
translated to HTTP 503 by the server — rather than accepting work it
cannot start.  The same queue feeds both execution styles: the local
worker pools pop from it, and pull-mode remote workers (``repro
worker``) claim from it over ``/v1/work/claim`` with a lease that
re-queues the job if the claimant never reports back.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError
from ..options import CompileOptions
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    WIRE_VERSION,
)


class QueueFullError(ReproError):
    """The pending queue is at capacity; the submission was refused."""


class UnknownJobError(ReproError):
    """No job with the requested id exists on this server."""


@dataclass
class Job:
    """One submitted compilation, from request to terminal state."""

    id: str
    core: str
    name: str | None
    options: CompileOptions
    #: The JSON-able execution payload (:func:`protocol.job_payload`).
    payload: dict[str, Any]
    state: str = QUEUED
    submitted: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    #: Worker-reported compile wall-clock, not queue wait.
    seconds: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    #: Pull-mode claimant name, while claimed.
    worker: str | None = None
    #: Monotonic deadline after which a claimed job is re-queued.
    lease_deadline: float | None = None
    _change: asyncio.Event = field(default_factory=asyncio.Event,
                                   repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def pulse(self) -> None:
        """Wake every waiter; subsequent waits see a fresh event."""
        event, self._change = self._change, asyncio.Event()
        event.set()

    async def wait_change(self, timeout: float | None = None) -> bool:
        """Park until the next transition (or timeout).  Returns True
        if a change was observed."""
        if self.terminal:
            return True
        event = self._change
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """The wire rendering (see :mod:`repro.serve.protocol`)."""
        rendered: dict[str, Any] = {
            "wire_version": WIRE_VERSION,
            "id": self.id,
            "name": self.name,
            "core": self.core,
            "state": self.state,
            "options": self.options.to_dict(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "seconds": self.seconds,
            "error": self.error,
        }
        rendered["result"] = self.result if include_result else None
        return rendered


class JobStore:
    """Every job this server has seen, plus the bounded pending queue."""

    def __init__(self, max_queue: int = 64, max_finished: int = 256,
                 lease_seconds: float = 300.0):
        self.max_queue = max_queue
        self.max_finished = max_finished
        self.lease_seconds = lease_seconds
        self.jobs: dict[str, Job] = {}
        self.pending: deque[Job] = deque()
        self._ids = itertools.count(1)
        #: Terminal job ids in finish order, for bounded retention.
        self._finished_order: deque[str] = deque()

    def __len__(self) -> int:
        return len(self.jobs)

    def submit(self, core: str, name: str | None,
               options: CompileOptions,
               payload: dict[str, Any]) -> Job:
        """Queue a validated request; raises :class:`QueueFullError`
        when the pending queue is at capacity."""
        if len(self.pending) >= self.max_queue:
            raise QueueFullError(
                f"queue full ({self.max_queue} jobs pending)")
        job = Job(id=f"j-{next(self._ids):06d}", core=core, name=name,
                  options=options, payload=payload)
        self.jobs[job.id] = job
        self.pending.append(job)
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job {job_id!r}") from None

    def next_pending(self) -> Job | None:
        """Pop the oldest queued job for local execution."""
        while self.pending:
            job = self.pending.popleft()
            if job.state == QUEUED:
                return job
        return None

    def mark_running(self, job: Job, worker: str | None = None) -> None:
        job.state = RUNNING
        job.started = time.time()
        job.worker = worker
        job.pulse()

    def finish(self, job: Job, state: str,
               result: dict[str, Any] | None = None,
               error: str | None = None,
               seconds: float | None = None) -> None:
        """Move a job to a terminal state and wake its waiters."""
        assert state in TERMINAL_STATES, state
        job.state = state
        job.finished = time.time()
        job.result = result
        job.error = error
        job.seconds = seconds
        job.lease_deadline = None
        job.pulse()
        self._finished_order.append(job.id)
        self._trim_finished()

    def _trim_finished(self) -> None:
        while len(self._finished_order) > self.max_finished:
            dropped = self._finished_order.popleft()
            self.jobs.pop(dropped, None)

    # -- pull mode (remote workers) ------------------------------------

    def claim(self, worker: str) -> Job | None:
        """Hand the oldest queued job to a remote worker under a lease."""
        job = self.next_pending()
        if job is None:
            return None
        self.mark_running(job, worker=worker)
        job.lease_deadline = time.monotonic() + self.lease_seconds
        return job

    def reap_leases(self) -> int:
        """Re-queue claimed jobs whose lease expired (worker died)."""
        now = time.monotonic()
        requeued = 0
        for job in self.jobs.values():
            if (job.state == RUNNING and job.lease_deadline is not None
                    and now > job.lease_deadline):
                job.state = QUEUED
                job.started = None
                job.worker = None
                job.lease_deadline = None
                self.pending.append(job)
                job.pulse()
                requeued += 1
        return requeued

    def complete(self, job_id: str, worker: str,
                 report: dict[str, Any]) -> Job:
        """Apply a pull-mode worker's completion report.

        Stale reports (the lease expired and the job was re-queued or
        re-claimed by someone else) are refused — exactly-once
        completion from the store's point of view.
        """
        job = self.get(job_id)
        if job.terminal:
            raise UnknownJobError(f"job {job_id!r} already finished")
        if job.worker != worker:
            raise UnknownJobError(
                f"job {job_id!r} is not claimed by {worker!r}")
        if report.get("ok"):
            self.finish(job, DONE, result=report.get("result"),
                        seconds=report.get("seconds"))
        else:
            self.finish(job, FAILED, error=report.get("error",
                                                      "worker failure"),
                        seconds=report.get("seconds"))
        return job

    # -- stats ---------------------------------------------------------

    def state_counts(self) -> dict[str, int]:
        counts = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, FAILED, TIMEOUT, CANCELLED)}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
