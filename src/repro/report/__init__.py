"""Reporting: the paper's figures as text artifacts, plus the
telemetry timeline renderer."""

from .occupation import OccupationRow, occupation_chart, occupation_rows
from .tables import (
    batch_report,
    class_table_report,
    conflict_report,
    exploration_report,
    gantt_chart,
    optimization_report,
    summary_report,
)
from .timeline import timeline

__all__ = [
    "OccupationRow",
    "batch_report",
    "class_table_report",
    "conflict_report",
    "exploration_report",
    "gantt_chart",
    "occupation_chart",
    "occupation_rows",
    "optimization_report",
    "summary_report",
    "timeline",
]
