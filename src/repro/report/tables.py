"""Textual reports: RT class tables (figures 5/8), conflict graphs
(figure 6), optimizer statistics, schedule Gantt charts and
compilation summaries."""

from __future__ import annotations

from ..core.conflict_graph import ConflictGraph
from ..core.rtclass import ClassTable
from ..opt import OptReport
from ..sched.schedule import Schedule


def class_table_report(table: ClassTable, title: str = "RT Class identification") -> str:
    """Render a class table like the paper's figure 8 insert::

        RT Class identification
        IPB    - Read          A
        RAM    - Read          E
               - Write         F
    """
    lines = [title]
    last_opu = None
    for cls in table.classes:
        opu = cls.opu if cls.opu != last_opu else ""
        usages = cls.pretty_usages()
        lines.append(f"{opu:<8} - {usages:<28} {cls.name}")
        last_opu = cls.opu
    return "\n".join(lines)


def conflict_report(graph: ConflictGraph,
                    cover: list[frozenset[str]] | None = None) -> str:
    """Conflict graph plus (optionally) its clique cover, figure-6 style."""
    lines = [graph.pretty()]
    if cover is not None:
        pretty = ", ".join("{" + ", ".join(sorted(c)) + "}" for c in cover)
        lines.append(f"clique cover ({len(cover)} cliques): {pretty}")
        resources = ", ".join(
            "".join(sorted(clique)) for clique in cover
        )
        lines.append(f"artificial resources: {resources}")
    return "\n".join(lines)


def gantt_chart(schedule: Schedule, max_cycles: int | None = None) -> str:
    """One line per instruction cycle, listing the issued transfers."""
    lines = [f"schedule: {schedule.length} cycles"]
    for cycle, instruction in enumerate(schedule.instructions()):
        if max_cycles is not None and cycle >= max_cycles:
            lines.append(f"  ... ({schedule.length - cycle} more cycles)")
            break
        ops = ", ".join(f"{rt.opu}.{rt.operation}" for rt in instruction)
        lines.append(f"  {cycle:3d}: {ops if ops else '(nop)'}")
    return "\n".join(lines)


def optimization_report(report: OptReport) -> str:
    """Per-pass optimizer statistics, one line per executed pass::

        optimizer report (-O2, 2 iterations, 41 -> 28 nodes)
          fold       1 rewrite   [folds 1]
          cse        5 rewrites  [delay_merged 4, param_merged 1]
          dce        12 removed
    """
    header = (
        f"optimizer report (-O{report.level}, "
        f"{report.iterations} iteration{'s' if report.iterations != 1 else ''}, "
        f"{report.nodes_before} -> {report.nodes_after} nodes)"
    )
    lines = [header]
    for stats in report.passes:
        if not stats.changed:
            continue
        work = []
        if stats.rewrites:
            work.append(f"{stats.rewrites} rewrite"
                        f"{'s' if stats.rewrites != 1 else ''}")
        if stats.removed:
            work.append(f"{stats.removed} removed")
        detail = ""
        if stats.detail:
            detail = "  [" + ", ".join(
                f"{k} {v}" for k, v in sorted(stats.detail.items())
            ) + "]"
        lines.append(f"  {stats.name:<10} {', '.join(work)}{detail}")
    if len(lines) == 1:
        lines.append("  (no rewrites)")
    return "\n".join(lines)


def exploration_report(points, budget: int | None = None,
                       front=None, axes=None) -> str:
    """Render a design-space sweep as the phase-1 feedback table.

    One row per candidate allocation: unit counts, storage sizing
    (register-file/RAM/ROM words and the merge variant), OPU and
    register-file totals, per-application schedule lengths, the worst
    length, a Pareto marker (``*`` = no other candidate is at least as
    small and as fast) and — instead of silently dropping them — the
    failure reason of every infeasible candidate.  Pass ``front`` (from
    :func:`repro.arch.pareto_front`) to reuse an already-computed
    Pareto front, or ``axes`` (see :data:`repro.arch.STORAGE_AXES`) to
    compute one over the right cost axes for a multi-dimensional sweep
    — otherwise the classic (worst length, OPU count) pair is used.
    """
    from ..arch.explore import PARETO_AXES, pareto_front

    app_names: list[str] = []
    for point in points:
        for name in point.schedule_lengths:
            if name not in app_names:
                app_names.append(name)
    if front is None:
        front = pareto_front(list(points), axes=axes or PARETO_AXES)
    front = {id(p) for p in front}
    merge_width = max(
        [5] + [len(p.allocation.merge_variant) for p in points
               if p.allocation.merge_variant != "none"]
    )
    width = max([9] + [len(name) + 2 for name in app_names])
    header = (f"{'mult':>4} {'alu':>4} {'ram':>4} {'rf':>4} {'ramw':>5} "
              f"{'romw':>5} {'merge':>{merge_width}} {'OPUs':>5} {'RFs':>4} "
              + "".join(f"{name:>{width}}" for name in app_names)
              + f" {'worst':>6}"
              + (f" {'fits':>5}" if budget is not None else "")
              + "  pareto")
    lines = [header]
    for point in points:
        a = point.allocation
        merge = a.merge_variant if a.merge_variant != "none" else "-"
        prefix = (f"{a.n_mult:>4} {a.n_alu:>4} {a.n_ram:>4} {a.rf_size:>4} "
                  f"{a.ram_size:>5} {a.rom_size:>5} {merge:>{merge_width}} "
                  f"{point.n_opus:>5} {point.n_rfs:>4} ")
        if not point.feasible:
            reasons = "; ".join(
                f"{app}: {reason}" for app, reason in point.failures.items()
            )
            lines.append(f"{prefix} infeasible — {reasons}")
            continue
        cells = "".join(
            f"{point.schedule_lengths.get(name, '-'):>{width}}"
            for name in app_names
        )
        row = f"{prefix}{cells} {point.worst_length:>6}"
        if budget is not None:
            fits = "yes" if point.worst_length <= budget else "no"
            row += f" {fits:>5}"
        row += "       *" if id(point) in front else ""
        lines.append(row)
    return "\n".join(lines)


def summary_report(compiled) -> str:
    """One-paragraph compile summary (for examples and benches)."""
    program = compiled.rt_program
    histogram = program.opu_histogram()
    ops = ", ".join(f"{k}: {v}" for k, v in sorted(histogram.items()))
    cover = ", ".join(
        "".join(sorted(c)) for c in compiled.conflict_model.cover
    ) or "(none)"
    budget = compiled.schedule.budget
    budget_text = f" (budget {budget})" if budget is not None else ""
    lines = [
        f"application  : {compiled.dfg.name}",
        f"core         : {compiled.core.name}",
    ]
    report = getattr(compiled, "opt_report", None)
    if report is not None:
        if report.level == 0:
            opt_text = "-O0 (disabled)"
        else:
            opt_text = (
                f"-O{report.level}, {report.nodes_before} -> "
                f"{report.nodes_after} nodes ({report.summary()})"
            )
        lines.append(f"optimizer    : {opt_text}")
    lines += [
        f"transfers    : {len(program.rts)} RTs [{ops}]",
        f"classes      : {len(compiled.conflict_model.table)} "
        f"({', '.join(compiled.conflict_model.table.names)})",
        f"cover        : {cover}",
        f"schedule     : {compiled.schedule.length} cycles{budget_text}",
        f"word width   : {compiled.binary.word_width} bits, "
        f"{len(compiled.binary.words)} words",
    ]
    return "\n".join(lines)


def batch_report(result) -> str:
    """Render a :class:`~repro.pipeline.session.BatchResult` as the
    per-application outcome table of the ``batch`` CLI command.

    One row per application: schedule length, how many stages actually
    executed versus were restored from the memory/disk cache tiers,
    wall-clock seconds, and the error for applications that failed.
    """
    name_width = max([len(e.name) for e in result.entries] + [len("application")])
    header = (f"{'application':<{name_width}}  cycles  executed  "
              f"memory  disk  seconds  status")
    lines = [header, "-" * len(header)]
    for entry in result.entries:
        if entry.state is not None:
            state = entry.state
            cycles = (str(state.schedule.length)
                      if "schedule" in state.artifacts else "-")
            counts = state.cache_counts()
            executed, memory, disk = (counts["executed"], counts["memory"],
                                      counts["disk"])
            status = "ok"
        else:
            cycles, executed, memory, disk = "-", "-", "-", "-"
            status = entry.error or "failed"
        lines.append(
            f"{entry.name:<{name_width}}  {cycles:>6}  {executed!s:>8}  "
            f"{memory!s:>6}  {disk!s:>4}  {entry.seconds:7.3f}  {status}"
        )
    return "\n".join(lines)
