"""Human-readable rendering of a telemetry registry.

:func:`timeline` turns a :class:`~repro.obs.core.Telemetry` (or its
:meth:`~repro.obs.core.Telemetry.to_dict` rendering) into the text the
CLI's ``--timings`` flag prints: the span tree with durations and
share-of-root percentages, then the counters and any recorded events.
The Chrome-trace export (:func:`repro.obs.write_chrome_trace`) is the
machine-readable sibling.
"""

from __future__ import annotations

from typing import Any

#: Tags rendered inline next to a span, in this order.
_SHOWN_TAGS = ("cache_source", "core", "application", "stage",
               "fingerprint")


def _span_line(span: dict[str, Any], depth: int, root_duration: float,
               lines: list[str]) -> None:
    indent = "  " * depth
    share = ""
    if depth and root_duration > 0:
        share = f" {100.0 * span['duration'] / root_duration:5.1f}%"
    tags = span.get("tags", {})
    shown = [f"{k}={tags[k]}" for k in _SHOWN_TAGS
             if tags.get(k) is not None and k != "stage"]
    extra = f"  [{', '.join(shown)}]" if shown else ""
    label = f"{indent}{span['name']}"
    lines.append(
        f"{label:<32} {span['duration'] * 1e3:9.3f} ms{share}{extra}"
    )
    for child in span.get("children", []):
        _span_line(child, depth + 1, root_duration, lines)


def timeline(telemetry) -> str:
    """The span tree, counters and events of one registry, as text."""
    data = telemetry if isinstance(telemetry, dict) else telemetry.to_dict()
    spans = data.get("spans", [])
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    events = data.get("events", [])

    lines: list[str] = ["telemetry timeline"]
    if not spans:
        lines.append("  (no spans recorded)")
    for root in spans:
        _span_line(root, 1, root.get("duration", 0.0), lines)
    if counters or gauges:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<28} {counters[name]}")
        for name in sorted(gauges):
            lines.append(f"  {name:<28} {gauges[name]} (gauge)")
    if events:
        lines.append(f"events ({len(events)})")
        for event in events:
            fields = ", ".join(
                f"{k}={v}" for k, v in event.items()
                if k not in ("name", "time")
            )
            lines.append(
                f"  {event['time'] * 1e3:9.3f} ms  {event['name']}"
                + (f"  {fields}" if fields else "")
            )
    return "\n".join(lines)
