"""Occupation distribution chart (paper, figure 9).

Renders the schedule's per-OPU occupation in the paper's ASCII format::

    92%  MULT       |   **********************************************
     3%  IPB        |  *                     *
    ----------------|-----|----|----|----|----|----|----|----|----|---
                -2  0    5   10   15   20   25   30   35   40   45

Percentages are busy-cycles over the schedule length, truncated like
the paper's (58/63 → 92%, 59/63 → 93%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sched.schedule import Schedule


@dataclass(frozen=True)
class OccupationRow:
    name: str
    busy: int
    total: int
    cycles: frozenset[int]

    @property
    def percent(self) -> int:
        if self.total == 0:
            return 0
        return (self.busy * 100) // self.total


def occupation_rows(
    schedule: Schedule,
    opu_order: list[str] | None = None,
    display_names: dict[str, str] | None = None,
) -> list[OccupationRow]:
    """Per-OPU occupation of a schedule, in display order."""
    busy = schedule.opu_busy_cycles()
    names = opu_order if opu_order is not None else sorted(busy)
    display_names = display_names or {}
    rows = []
    for name in names:
        cycles = busy.get(name, set())
        rows.append(OccupationRow(
            name=display_names.get(name, name),
            busy=len(cycles),
            total=schedule.length,
            cycles=frozenset(cycles),
        ))
    return rows


def occupation_chart(
    schedule: Schedule,
    opu_order: list[str] | None = None,
    display_names: dict[str, str] | None = None,
) -> str:
    """The figure-9-style ASCII chart."""
    rows = occupation_rows(schedule, opu_order, display_names)
    width = schedule.length
    name_width = max((len(r.name) for r in rows), default=4) + 2
    lines = []
    for row in rows:
        bar = "".join(
            "*" if cycle in row.cycles else " " for cycle in range(width)
        )
        lines.append(f"{row.percent:3d}%  {row.name:<{name_width}}|{bar}")
    ruler = "-" * (6 + name_width) + "|"
    ticks = []
    for cycle in range(width):
        ticks.append("|" if cycle % 5 == 0 else "-")
    lines.append(ruler + "".join(ticks))
    labels = [" " * (7 + name_width)]
    position = 0
    for cycle in range(0, width, 5):
        label = str(cycle)
        pad = cycle - position
        labels.append(" " * pad + label)
        position = cycle + len(label)
    lines.append("".join(labels))
    return "\n".join(lines)
