"""Instruction assembly: from a schedule to binary microcode.

The assembler turns a validated schedule plus register allocation into
the program ROM image of figure 4: one instruction word per cycle, a
leading IDLE word synchronising the time-loop to the start signal and a
JUMP back to it in the last body word.

Pipelined OPUs are exposed architecturally: an operation issued at
cycle ``t`` with latency ``L`` reads its operands from word ``t`` and
its destination fields (write enable / address / mux select) live in
word ``t + L - 1``.  The usage model has already guaranteed these field
slots are free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.controller import CtrlOp
from ..arch.library import CoreSpec
from ..errors import EncodingError
from ..rtgen.program import RTProgram
from ..rtgen.rt import RT
from ..sched.regalloc import Allocation
from ..sched.schedule import Schedule
from .fields import CTRL_OPCODES, InstructionFormat, derive_format, opcode_table


@dataclass
class EncodedProgram:
    """Binary microcode plus everything the simulator needs."""

    core: CoreSpec
    format: InstructionFormat
    words: list[int]
    n_body: int
    body_offset: int
    rom_words: tuple[int, ...]
    acu_moduli: dict[str, int]
    #: (input OPU name, body cycle) -> logical input port
    input_map: dict[tuple[str, int], str]
    #: (output OPU name, body cycle) -> logical output port
    output_map: dict[tuple[str, int], str]
    #: register file -> (pinned register, initial value)
    initial_registers: dict[str, list[tuple[int, int]]]
    mode: str = "loop"
    #: body traversals per start signal (mode="repeat")
    repeat_count: int = 1

    @property
    def word_width(self) -> int:
        return self.format.width

    def listing(self) -> str:
        """A human-readable assembly listing of all words."""
        lines = [
            f"; core {self.core.name}: {len(self.words)} words x "
            f"{self.format.width} bits"
        ]
        decode = {v: k for k, v in CTRL_OPCODES.items()}
        for index, word in enumerate(self.words):
            fields = self.format.decode(word)
            ctrl = decode[fields["ctrl.op"]]
            active = []
            for opu_name, ops in opcode_table(self.core).items():
                opcode = fields.get(f"{opu_name}.op", 0)
                if opcode:
                    name = next(n for n, c in ops.items() if c == opcode)
                    active.append(f"{opu_name}.{name}")
            body = " | ".join(active) if active else "nop"
            arg = fields.get("ctrl.arg", 0)
            ctrl_text = ctrl.value + (f" {arg}" if ctrl in
                                      (CtrlOp.JUMP, CtrlOp.CJMP, CtrlOp.LOOP)
                                      else "")
            lines.append(f"{index:4d}: [{ctrl_text:<10}] {body}")
        return "\n".join(lines)


def assemble(
    program: RTProgram,
    schedule: Schedule,
    allocation: Allocation,
    mode: str = "loop",
    repeat_count: int = 1,
) -> EncodedProgram:
    """Encode a scheduled RT program into binary microcode.

    ``mode="loop"`` builds the time-loop program (IDLE, body, JUMP
    back); ``mode="once"`` ends with HALT instead of the JUMP (finite
    test programs); ``mode="repeat"`` wraps the body in a zero-overhead
    hardware loop (figure 4's stack) running ``repeat_count`` times per
    start signal — block processing: each traversal consumes/produces
    one sample per IO stream.
    """
    if mode not in ("loop", "once", "repeat"):
        raise EncodingError(f"unknown program mode {mode!r}")
    if mode == "repeat":
        if repeat_count < 1:
            raise EncodingError("repeat_count must be >= 1")
        if not program.core.controller.supports_loops:
            raise EncodingError(
                "mode='repeat' needs a controller with a loop stack"
            )
    core = program.core
    fmt = derive_format(core)
    opcodes = opcode_table(core)
    dp = core.datapath

    # Word 0 is the IDLE synchronisation word; repeat mode adds a LOOP
    # word before the body and an ENDL-carrying tail after it.
    body_offset = 2 if mode == "repeat" else 1
    tail_words = 1 if mode in ("once", "repeat") else 0
    n_words = body_offset + schedule.length + tail_words
    if n_words > core.controller.program_size:
        raise EncodingError(
            f"program needs {n_words} words but the controller stores "
            f"{core.controller.program_size}"
        )
    assignments: list[dict[str, int]] = [dict() for _ in range(n_words)]
    assignments[0]["ctrl.op"] = CTRL_OPCODES[CtrlOp.IDLE]
    if mode == "repeat":
        assignments[1]["ctrl.op"] = CTRL_OPCODES[CtrlOp.LOOP]
        assignments[1]["ctrl.arg"] = repeat_count

    input_map: dict[tuple[str, int], str] = {}
    output_map: dict[tuple[str, int], str] = {}

    for rt, cycle in schedule.cycle_of.items():
        word = assignments[body_offset + cycle]
        _merge(word, f"{rt.opu}.op", opcodes[rt.opu][rt.operation], rt)
        opu = dp.opu(rt.opu)
        for operand, port in zip(rt.operands, _operand_ports(rt, opu)):
            if port is None:
                continue
            if operand.is_register:
                register = allocation.lookup(operand.register_file, operand.value)
                _merge(word, f"{rt.opu}.p{port}.addr", register, rt)
            else:
                imm_field = f"{rt.opu}.p{port}.imm"
                width = fmt.field(imm_field).width
                _merge(word, imm_field, operand.value & ((1 << width) - 1), rt)
        write_word = assignments[body_offset + cycle + rt.latency - 1]
        for dest in rt.destinations:
            register = allocation.lookup(dest.register_file, dest.value)
            _merge(write_word, f"{dest.register_file}.wr_en", 1, rt)
            _merge(write_word, f"{dest.register_file}.wr_addr", register, rt)
            if dest.mux is not None:
                mux = dp.muxes[dest.mux]
                select = mux.input_index(dp.opu(rt.opu).bus)
                _merge(write_word, f"{dest.register_file}.mux", select, rt)
        if opu.kind.is_io:
            if rt.io_port is None:
                raise EncodingError(f"IO transfer {rt!r} lacks a port name")
            if opu.kind.name == "INPUT":
                input_map[(rt.opu, cycle)] = rt.io_port
            else:
                output_map[(rt.opu, cycle)] = rt.io_port

    last_body = body_offset + schedule.length - 1
    if mode == "loop":
        assignments[last_body]["ctrl.op"] = CTRL_OPCODES[CtrlOp.JUMP]
        assignments[last_body]["ctrl.arg"] = 0
    elif mode == "repeat":
        assignments[last_body]["ctrl.op"] = CTRL_OPCODES[CtrlOp.ENDL]
        assignments[-1]["ctrl.op"] = CTRL_OPCODES[CtrlOp.JUMP]
        assignments[-1]["ctrl.arg"] = 0
    else:
        assignments[-1]["ctrl.op"] = CTRL_OPCODES[CtrlOp.HALT]

    words = [fmt.encode(values) for values in assignments]

    initial_registers: dict[str, list[tuple[int, int]]] = {}
    for carry in program.loop_carries:
        initial_registers.setdefault(carry.register_file, []).append(
            (carry.register, carry.initial)
        )

    return EncodedProgram(
        core=core,
        format=fmt,
        words=words,
        n_body=schedule.length,
        body_offset=body_offset,
        rom_words=program.rom.words if program.rom is not None else (),
        acu_moduli=dict(program.acu_moduli),
        input_map=input_map,
        output_map=output_map,
        initial_registers=initial_registers,
        mode=mode,
        repeat_count=repeat_count if mode == "repeat" else 1,
    )


def _merge(word: dict[str, int], field_name: str, value: int, rt: RT) -> None:
    existing = word.get(field_name)
    if existing is not None and existing != value:
        raise EncodingError(
            f"field {field_name!r} set twice with different values "
            f"({existing} vs {value}) while encoding {rt!r}; the schedule "
            f"violates the usage model"
        )
    word[field_name] = value


def _operand_ports(rt: RT, opu) -> list[int]:
    """Input-port index of each operand, in the RT's operand order.

    The generator stores operands in consecutive port order from port 0
    (immediates included on their immediate ports); unary operations
    use port 0.
    """
    del opu
    return list(range(len(rt.operands)))
