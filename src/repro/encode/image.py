"""Microcode image (de)serialization.

An :class:`~repro.encode.assembler.EncodedProgram` plus its core is the
complete deployable artifact of the flow — the program ROM contents of
figure 4 and the machine configuration the simulator (or silicon)
needs.  This module persists both as one JSON document, so a compiled
program can be archived, diffed and re-run without recompiling.
"""

from __future__ import annotations

import json
from typing import Any

from ..arch.serialize import core_from_dict, core_to_dict
from ..errors import EncodingError
from .assembler import EncodedProgram
from .fields import derive_format

IMAGE_FORMAT_VERSION = 1


def program_to_dict(program: EncodedProgram) -> dict[str, Any]:
    return {
        "image_format_version": IMAGE_FORMAT_VERSION,
        "core": core_to_dict(program.core),
        "words": [hex(word) for word in program.words],
        "word_width": program.word_width,
        "n_body": program.n_body,
        "body_offset": program.body_offset,
        "rom_words": list(program.rom_words),
        "acu_moduli": dict(program.acu_moduli),
        "input_map": [
            {"opu": opu, "cycle": cycle, "port": port}
            for (opu, cycle), port in sorted(program.input_map.items())
        ],
        "output_map": [
            {"opu": opu, "cycle": cycle, "port": port}
            for (opu, cycle), port in sorted(program.output_map.items())
        ],
        "initial_registers": {
            rf: [[register, value] for register, value in inits]
            for rf, inits in program.initial_registers.items()
        },
        "mode": program.mode,
        "repeat_count": program.repeat_count,
    }


def program_from_dict(data: dict[str, Any]) -> EncodedProgram:
    version = data.get("image_format_version")
    if version != IMAGE_FORMAT_VERSION:
        raise EncodingError(
            f"unsupported microcode image version {version!r} "
            f"(this library reads version {IMAGE_FORMAT_VERSION})"
        )
    core = core_from_dict(data["core"])
    fmt = derive_format(core)
    if fmt.width != data["word_width"]:
        raise EncodingError(
            f"image word width {data['word_width']} does not match the "
            f"core's derived format ({fmt.width} bits); core and image "
            f"disagree"
        )
    return EncodedProgram(
        core=core,
        format=fmt,
        words=[int(word, 16) for word in data["words"]],
        n_body=data["n_body"],
        body_offset=data["body_offset"],
        rom_words=tuple(data["rom_words"]),
        acu_moduli=dict(data["acu_moduli"]),
        input_map={
            (entry["opu"], entry["cycle"]): entry["port"]
            for entry in data["input_map"]
        },
        output_map={
            (entry["opu"], entry["cycle"]): entry["port"]
            for entry in data["output_map"]
        },
        initial_registers={
            rf: [(register, value) for register, value in inits]
            for rf, inits in data["initial_registers"].items()
        },
        mode=data["mode"],
        repeat_count=data["repeat_count"],
    )


def dump_program(program: EncodedProgram) -> str:
    """Serialize a microcode image to a JSON string."""
    return json.dumps(program_to_dict(program), indent=2)


def load_program(text: str) -> EncodedProgram:
    """Load a microcode image from :func:`dump_program` output."""
    return program_from_dict(json.loads(text))
