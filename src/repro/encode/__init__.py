"""Instruction encoding and controller program generation
(paper, step 3 of figure 1b: "scheduling & instruction encoding")."""

from .assembler import EncodedProgram, assemble
from .fields import (
    CTRL_DECODE,
    CTRL_OPCODES,
    Field,
    InstructionFormat,
    derive_format,
    opcode_table,
)
from .image import dump_program, load_program, program_from_dict, program_to_dict

__all__ = [
    "CTRL_DECODE",
    "CTRL_OPCODES",
    "EncodedProgram",
    "Field",
    "InstructionFormat",
    "assemble",
    "derive_format",
    "dump_program",
    "load_program",
    "opcode_table",
    "program_from_dict",
    "program_to_dict",
]
