"""Instruction-word field layout, derived from the datapath.

The VLIW instruction word of an in-house core is "horizontal": one
control field plus, per OPU, an opcode field and register-address /
immediate fields for its input ports, and per register file a
write-enable, write-address and (if present) multiplexer-select field.
The layout is a pure function of the core description, so the encoder
and the simulator always agree.

Field naming
------------
``ctrl.op``, ``ctrl.arg``, ``ctrl.flag`` — controller;
``<opu>.op`` — opcode (0 = NOP);
``<opu>.p<i>.addr`` — register address of input port *i*;
``<opu>.p<i>.imm`` — immediate of input port *i*;
``<rf>.wr_en`` / ``<rf>.wr_addr`` / ``<rf>.mux`` — destination side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.controller import ControllerSpec, CtrlOp
from ..arch.library import CoreSpec
from ..arch.opu import OpuKind
from ..errors import EncodingError

#: Fixed controller opcode encoding (3 bits).
CTRL_OPCODES: dict[CtrlOp, int] = {
    CtrlOp.CONT: 0,
    CtrlOp.IDLE: 1,
    CtrlOp.JUMP: 2,
    CtrlOp.CJMP: 3,
    CtrlOp.LOOP: 4,
    CtrlOp.ENDL: 5,
    CtrlOp.HALT: 6,
}
CTRL_DECODE = {v: k for k, v in CTRL_OPCODES.items()}


@dataclass(frozen=True)
class Field:
    name: str
    width: int
    offset: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


class InstructionFormat:
    """Bit layout of one core's instruction word."""

    def __init__(self, fields: list[tuple[str, int]]):
        self.fields: dict[str, Field] = {}
        offset = 0
        for name, width in fields:
            if width < 1:
                raise EncodingError(f"field {name!r} has width {width}")
            if name in self.fields:
                raise EncodingError(f"duplicate field {name!r}")
            self.fields[name] = Field(name, width, offset)
            offset += width
        self.width = offset

    def encode(self, values: dict[str, int]) -> int:
        word = 0
        for name, value in values.items():
            field = self.field(name)
            if not 0 <= value <= field.mask:
                raise EncodingError(
                    f"value {value} does not fit field {name!r} "
                    f"({field.width} bits)"
                )
            word |= value << field.offset
        return word

    def decode(self, word: int) -> dict[str, int]:
        if word < 0 or word >= (1 << self.width):
            raise EncodingError(f"word {word:#x} wider than {self.width} bits")
        return {
            name: (word >> field.offset) & field.mask
            for name, field in self.fields.items()
        }

    def field(self, name: str) -> Field:
        try:
            return self.fields[name]
        except KeyError:
            raise EncodingError(f"unknown instruction field {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.fields


def opcode_table(core: CoreSpec) -> dict[str, dict[str, int]]:
    """Per-OPU operation → opcode (0 is reserved for NOP)."""
    table: dict[str, dict[str, int]] = {}
    for opu in core.datapath.opus.values():
        table[opu.name] = {
            name: index + 1
            for index, name in enumerate(sorted(opu.operations))
        }
    return table


def derive_format(core: CoreSpec) -> InstructionFormat:
    """Compute the instruction word layout of ``core``."""
    dp = core.datapath
    controller: ControllerSpec = core.controller
    fields: list[tuple[str, int]] = [
        ("ctrl.op", 3),
        ("ctrl.arg", max(controller.address_bits, 10)),
    ]
    if controller.supports_conditionals:
        fields.append(("ctrl.flag", max(1, controller.flag_bits)))

    ram_sizes = [
        opu.memory_size for opu in dp.opus.values() if opu.kind is OpuKind.RAM
    ]
    address_width = max(
        [(size - 1).bit_length() or 1 for size in ram_sizes], default=8
    )

    for opu in dp.opus.values():
        op_bits = max(1, len(opu.operations).bit_length())
        fields.append((f"{opu.name}.op", op_bits))
        arity = max(op.arity for op in opu.operations.values())
        for index in range(arity):
            port = opu.ports[index]
            if port.accepts_immediate:
                width = (
                    core.data_width
                    if opu.kind is OpuKind.CONST
                    else address_width
                )
                fields.append((f"{opu.name}.p{index}.imm", width))
            elif port.register_file is not None:
                fields.append(
                    (f"{opu.name}.p{index}.addr",
                     port.register_file.address_bits())
                )
    for rf in dp.register_files.values():
        fields.append((f"{rf.name}.wr_en", 1))
        fields.append((f"{rf.name}.wr_addr", rf.address_bits()))
    for mux_name, mux in dp.muxes.items():
        fields.append((f"{mux.register_file.name}.mux",
                       max(1, (len(mux.inputs) - 1).bit_length())))
    return InstructionFormat(fields)
