"""Abstract syntax tree of the application source language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Expr:
    line: int


@dataclass(frozen=True)
class NameExpr(Expr):
    """A reference to a local signal, parameter or input port."""

    name: str


@dataclass(frozen=True)
class DelayExpr(Expr):
    """``state @ k`` — the state's value ``k`` iterations ago."""

    state: str
    delay: int


@dataclass(frozen=True)
class CallExpr(Expr):
    """An operation call, e.g. ``mlt(d2, x0)``."""

    operation: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Statement:
    line: int


@dataclass(frozen=True)
class LocalAssign(Statement):
    """``x := expr;`` — bind (or re-bind) a local signal name."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class CommitAssign(Statement):
    """``x = expr;`` — write a state or an output port."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class ParamDecl:
    name: str
    value: float
    line: int


@dataclass(frozen=True)
class StateDecl:
    name: str
    depth: int
    line: int


@dataclass
class Program:
    """A parsed application: declarations plus one time-loop body."""

    name: str
    params: list[ParamDecl] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    states: list[StateDecl] = field(default_factory=list)
    body: list[Statement] = field(default_factory=list)
