"""Python-embedded builder for time-loop applications.

The textual frontend (:mod:`repro.lang.parser`) and the workload
generators (:mod:`repro.apps`) both construct their data-flow graphs
through this builder; it is also the convenient way to write
applications in tests.

Example — the paper's treble section (section 7)::

    b = DfgBuilder("treble")
    d1, d2, e1 = b.param("d1", 0.4), b.param("d2", -0.2), b.param("e1", 0.3)
    u = b.state("u", depth=2)
    v = b.state("v", depth=2)
    b.write(u, b.input("IN"))
    x0 = b.delay(u, 2)
    m = b.op("mult", d2, x0)
    a = b.op("pass", m)
    x2 = b.delay(v, 1)
    m = b.op("mult", e1, x2)
    a = b.op("add", m, a)
    x1 = b.delay(u, 1)
    m = b.op("mult", d1, x1)
    rd = b.op("add_clip", m, a)
    b.write(v, rd)
    b.output("out", rd)
    dfg = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SemanticError
from .dfg import Dfg, Node, NodeKind, StateSpec


@dataclass(frozen=True)
class Ref:
    """An opaque handle to a DFG value (node id) or state."""

    node_id: int


@dataclass(frozen=True)
class StateRef:
    name: str


class DfgBuilder:
    """Incrementally build and validate a :class:`Dfg`."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: list[Node] = []
        self._params: dict[str, float] = {}
        self._param_nodes: dict[str, int] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._states: dict[str, StateSpec] = {}

    # ------------------------------------------------------------------

    def _add(self, kind: NodeKind, name: str, args: tuple[int, ...] = (),
             delay: int = 0, label: str | None = None) -> Ref:
        node = Node(id=len(self._nodes), kind=kind, name=name, args=args,
                    delay=delay, label=label)
        self._nodes.append(node)
        return Ref(node.id)

    def param(self, name: str, value: float) -> Ref:
        """Declare (or re-reference) a coefficient.

        Multiple references to one parameter share a single PARAM node,
        so a coefficient used twice is fetched once per use site but
        occupies one ROM word.
        """
        if name in self._params:
            if self._params[name] != value:
                raise SemanticError(
                    f"parameter {name!r} redefined with a different value"
                )
            return Ref(self._param_nodes[name])
        self._params[name] = value
        ref = self._add(NodeKind.PARAM, name)
        self._param_nodes[name] = ref.node_id
        return ref

    def input(self, port: str) -> Ref:
        """Read one sample from input port ``port`` this iteration."""
        if port not in self._inputs:
            self._inputs.append(port)
        return self._add(NodeKind.INPUT, port)

    def output(self, port: str, value: Ref) -> None:
        """Write ``value`` to output port ``port`` this iteration."""
        if port in self._outputs:
            raise SemanticError(f"output port {port!r} written twice")
        self._outputs.append(port)
        self._add(NodeKind.OUTPUT, port, (value.node_id,))

    def state(self, name: str, depth: int) -> StateRef:
        """Declare a delayed signal with history window ``depth``."""
        if depth < 1:
            raise SemanticError(f"state {name!r}: depth must be >= 1")
        if name in self._states:
            raise SemanticError(f"state {name!r} declared twice")
        self._states[name] = StateSpec(name, depth)
        return StateRef(name)

    def delay(self, state: StateRef, k: int, label: str | None = None) -> Ref:
        """Read ``state`` as it was ``k`` iterations ago (``s@k``)."""
        return self._add(NodeKind.DELAY, state.name, delay=k, label=label)

    def op(self, operation: str, *args: Ref, label: str | None = None) -> Ref:
        """A dataflow operation on previously-built values."""
        if not args:
            raise SemanticError(f"operation {operation!r} needs operands")
        return self._add(
            NodeKind.OP, operation, tuple(a.node_id for a in args), label=label
        )

    def write(self, state: StateRef, value: Ref) -> None:
        """Commit this iteration's value of ``state`` (``s = expr``)."""
        self._add(NodeKind.STATE_WRITE, state.name, (value.node_id,))

    # ------------------------------------------------------------------

    def build(self) -> Dfg:
        dfg = Dfg(
            name=self.name,
            nodes=list(self._nodes),
            params=dict(self._params),
            inputs=list(self._inputs),
            outputs=list(self._outputs),
            states=dict(self._states),
        )
        dfg.validate()
        return dfg
