"""Tokenizer for the paper-style application source (section 7).

The surface syntax follows the fragment printed in the paper::

    /* Treble section */
    x0 := u@2;            /* U delayed over 2 frames */
    m  := mlt(d2, x0);
    ...
    v  = rd;

extended with the declarations the fragment presupposes (``app``,
``param``, ``input``, ``output``, ``state``, ``loop``).  Comments are
C-style ``/* ... */`` or line comments starting with ``#``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..errors import SourceError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"       # signed decimal, possibly fractional
    ASSIGN = ":="
    EQUALS = "="
    AT = "@"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    EOF = "eof"


KEYWORDS = {"app", "param", "input", "output", "state", "loop"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def is_keyword(self) -> bool:
        return self.kind is TokenKind.IDENT and self.text in KEYWORDS


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>/\*.*?\*/|\#[^\n]*)
  | (?P<number>-?\d+\.\d+|-?\.\d+|-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<assign>:=)
  | (?P<sym>[=@(){},;])
    """,
    re.VERBOSE | re.DOTALL,
)

_SYMBOLS = {
    "=": TokenKind.EQUALS,
    "@": TokenKind.AT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
}


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`SourceError` on junk."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise SourceError(
                f"unexpected character {text[position]!r}", line, column
            )
        column = match.start() - line_start + 1
        lexeme = match.group(0)
        if match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, lexeme, line, column))
        elif match.lastgroup == "ident":
            tokens.append(Token(TokenKind.IDENT, lexeme, line, column))
        elif match.lastgroup == "assign":
            tokens.append(Token(TokenKind.ASSIGN, lexeme, line, column))
        elif match.lastgroup == "sym":
            tokens.append(Token(_SYMBOLS[lexeme], lexeme, line, column))
        # whitespace and comments are skipped but tracked for line numbers
        newlines = lexeme.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + lexeme.rfind("\n") + 1
        position = match.end()
    tokens.append(Token(TokenKind.EOF, "", line, len(text) - line_start + 1))
    return tokens
