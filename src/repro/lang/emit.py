"""DFG → source-text emitter (the inverse of the parser).

Applications built programmatically (the audio generator, exploration
workloads) can be printed back as paper-style source.  Useful for
inspection, for archiving the exact program a core was verified with,
and — in tests — for the parse/emit round-trip property that pins the
frontend's semantics.
"""

from __future__ import annotations

from ..errors import SemanticError
from .dfg import Dfg, NodeKind


def emit_source(dfg: Dfg) -> str:
    """Render a DFG as source text that parses back to the same graph.

    Every operation result gets a fresh local name (``t<n>``); delays,
    inputs and parameters are referenced inline.  The emitted program
    is in *scheduling-friendly order* — the DFG's own node order.
    """
    lines: list[str] = [f"app {dfg.name};"]
    if dfg.params:
        # Plain decimal notation: the source grammar has no exponent
        # syntax.  17 decimals preserve every coefficient that survives
        # fixed-point quantisation.
        rendered = ", ".join(
            f"{name} = {value:.17f}" for name, value in dfg.params.items()
        )
        lines.append(f"param {rendered};")
    if dfg.inputs:
        lines.append(f"input {', '.join(dfg.inputs)};")
    if dfg.outputs:
        lines.append(f"output {', '.join(dfg.outputs)};")
    if dfg.states:
        rendered = ", ".join(
            f"{spec.name}({spec.depth})" for spec in dfg.states.values()
        )
        lines.append(f"state {rendered};")
    lines.append("loop {")

    names: dict[int, str] = {}
    counter = 0

    def reference(node_id: int) -> str:
        node = dfg.node(node_id)
        if node.kind is NodeKind.INPUT:
            return node.name
        if node.kind is NodeKind.PARAM:
            return node.name
        if node.kind is NodeKind.DELAY:
            return f"{node.name}@{node.delay}"
        if node_id in names:
            return names[node_id]
        raise SemanticError(
            f"node n{node_id} referenced before a name was assigned"
        )

    for node in dfg.nodes:
        if node.kind is NodeKind.OP:
            nonloc = f"t{counter}"
            counter += 1
            names[node.id] = nonloc
            args = ", ".join(reference(a) for a in node.args)
            lines.append(f"  {nonloc} := {node.name}({args});")
        elif node.kind is NodeKind.STATE_WRITE:
            lines.append(f"  {node.name} = {reference(node.args[0])};")
        elif node.kind is NodeKind.OUTPUT:
            lines.append(f"  {node.name} = {reference(node.args[0])};")
        # INPUT / PARAM / DELAY nodes materialise at their uses.
    lines.append("}")
    return "\n".join(lines)
