"""Application frontend: source language, data-flow IR and reference
interpreter for time-loop DSP applications (paper, section 7)."""

from .ast import (
    CallExpr,
    CommitAssign,
    DelayExpr,
    LocalAssign,
    NameExpr,
    ParamDecl,
    Program,
    StateDecl,
)
from .builder import DfgBuilder, Ref, StateRef
from .dfg import Dfg, Node, NodeKind, StateSpec
from .emit import emit_source
from .lexer import Token, TokenKind, tokenize
from .parser import lower, parse, parse_source
from .reference import run_reference

__all__ = [
    "CallExpr",
    "CommitAssign",
    "DelayExpr",
    "Dfg",
    "DfgBuilder",
    "LocalAssign",
    "NameExpr",
    "Node",
    "NodeKind",
    "ParamDecl",
    "Program",
    "Ref",
    "StateDecl",
    "StateRef",
    "StateSpec",
    "Token",
    "TokenKind",
    "emit_source",
    "lower",
    "parse",
    "parse_source",
    "run_reference",
    "tokenize",
]
