"""Data-flow graph IR of a time-loop application.

The paper's source language (section 7) is applicative straight-line
code inside an implicit *time-loop* — "the repetitive part of the (DSP)
application".  Signals are single-assignment per iteration; *states*
(delayed signals such as ``u`` and ``v`` of figure 7) carry values
across iterations and are read with the delay operator ``u@2``.

Node kinds
----------
``INPUT``   — read one sample from an input port (IPB).
``OUTPUT``  — write one sample to an output port (OPB).
``PARAM``   — a named coefficient (quantised to the core's fixed-point
              format; fetched from ROM or the program-constant unit).
``DELAY``   — read state ``s`` as it was ``k`` iterations ago (k >= 1).
``OP``      — a dataflow operation (``mult``, ``add``, ``add_clip``,
              ``pass``, ``pass_clip``, ``sub``, or any ASU operation).
``STATE_WRITE`` — commit the value of state ``s`` for this iteration.

Delay semantics: within one iteration, ``s@k`` always refers to the
value committed ``k`` iterations earlier — never to this iteration's
write, regardless of textual order.  Histories start at zero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SemanticError


class NodeKind(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    PARAM = "param"
    DELAY = "delay"
    OP = "op"
    STATE_WRITE = "state_write"


@dataclass
class Node:
    """One DFG node.  ``args`` are node ids of the consumed values."""

    id: int
    kind: NodeKind
    name: str                      # port / param / state / operation name
    args: tuple[int, ...] = ()
    delay: int = 0                 # for DELAY nodes
    label: str | None = None       # the source signal name, if any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f"@{self.delay}" if self.kind is NodeKind.DELAY else ""
        args = f"({', '.join(map(str, self.args))})" if self.args else ""
        return f"n{self.id}:{self.kind.value}:{self.name}{extra}{args}"


@dataclass(frozen=True)
class StateSpec:
    """A delayed signal: its maximum delay defines the history window."""

    name: str
    depth: int


@dataclass
class Dfg:
    """A validated time-loop application."""

    name: str
    nodes: list[Node]
    params: dict[str, float]
    inputs: list[str]
    outputs: list[str]
    states: dict[str, StateSpec]
    #: Lazily-built consumer index (node id -> consuming nodes).  Keyed
    #: on the node-list length so append/remove rebuilds automatically;
    #: same-length in-place edits must call :meth:`invalidate_consumers`.
    _consumer_cache: dict[int, tuple[Node, ...]] | None = field(
        default=None, init=False, repr=False, compare=False)
    _consumer_cache_len: int = field(
        default=-1, init=False, repr=False, compare=False)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def producers(self) -> dict[int, Node]:
        """Map node id → node (all nodes produce at most one value)."""
        return {n.id: n for n in self.nodes}

    def consumer_index(self) -> dict[int, tuple[Node, ...]]:
        """Map node id → the nodes reading its value, in definition
        order (each consumer listed once, even when it reads the value
        on several operand positions).

        Built in one O(nodes + edges) sweep and cached; repeated
        consumer queries — the optimizer and the RT generator's route
        planning ask for every node's readers — stay linear instead of
        the quadratic per-node scan.
        """
        if (self._consumer_cache is None
                or self._consumer_cache_len != len(self.nodes)):
            index: dict[int, list[Node]] = {n.id: [] for n in self.nodes}
            for node in self.nodes:
                for arg in dict.fromkeys(node.args):
                    index[arg].append(node)
            self._consumer_cache = {
                node_id: tuple(readers) for node_id, readers in index.items()
            }
            self._consumer_cache_len = len(self.nodes)
        return self._consumer_cache

    def invalidate_consumers(self) -> None:
        """Drop the cached consumer index after in-place node edits."""
        self._consumer_cache = None
        self._consumer_cache_len = -1

    def consumers(self, node_id: int) -> list[Node]:
        return list(self.consumer_index().get(node_id, ()))

    def op_histogram(self) -> dict[str, int]:
        """Count OP nodes per operation name (workload profile)."""
        histogram: dict[str, int] = {}
        for node in self.nodes:
            if node.kind is NodeKind.OP:
                histogram[node.name] = histogram.get(node.name, 0) + 1
        return histogram

    def validate(self) -> None:
        """Check single-assignment, delay bounds and dangling references."""
        ids = set()
        state_writes: dict[str, int] = {}
        for node in self.nodes:
            if node.id in ids:
                raise SemanticError(f"duplicate node id {node.id}")
            for arg in node.args:
                if arg not in ids:
                    raise SemanticError(
                        f"node n{node.id} ({node.name}) uses n{arg} before "
                        f"its definition"
                    )
            ids.add(node.id)
            if node.kind is NodeKind.DELAY:
                spec = self.states.get(node.name)
                if spec is None:
                    raise SemanticError(f"delay of unknown state {node.name!r}")
                if not 1 <= node.delay <= spec.depth:
                    raise SemanticError(
                        f"delay {node.name}@{node.delay} outside the state's "
                        f"window [1, {spec.depth}]"
                    )
            if node.kind is NodeKind.STATE_WRITE:
                if node.name not in self.states:
                    raise SemanticError(f"write to unknown state {node.name!r}")
                if node.name in state_writes:
                    raise SemanticError(
                        f"state {node.name!r} written twice in one iteration"
                    )
                state_writes[node.name] = node.id
            if node.kind is NodeKind.PARAM and node.name not in self.params:
                raise SemanticError(f"unknown parameter {node.name!r}")
            if node.kind is NodeKind.INPUT and node.name not in self.inputs:
                raise SemanticError(f"unknown input port {node.name!r}")
            if node.kind is NodeKind.OUTPUT and node.name not in self.outputs:
                raise SemanticError(f"unknown output port {node.name!r}")
        read_states = {
            n.name for n in self.nodes if n.kind is NodeKind.DELAY
        }
        unwritten = read_states - set(state_writes)
        if unwritten:
            raise SemanticError(
                f"states read but never written: {sorted(unwritten)}"
            )
