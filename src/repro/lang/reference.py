"""Golden reference interpreter for time-loop applications.

Executes a :class:`~repro.lang.dfg.Dfg` directly, iteration by
iteration, with the same fixed-point arithmetic the core uses
(:mod:`repro.fixed`).  The cycle-accurate simulator of compiled code
must produce bit-identical output streams; that equivalence is the
library's strongest end-to-end check.
"""

from __future__ import annotations

from ..errors import SemanticError, SimulationError
from ..fixed import Q15, FixedFormat
from .dfg import Dfg, NodeKind


def run_reference(
    dfg: Dfg,
    inputs: dict[str, list[int]],
    n_iterations: int | None = None,
    fmt: FixedFormat = Q15,
) -> dict[str, list[int]]:
    """Run ``n_iterations`` of the time-loop on fixed-point samples.

    Parameters
    ----------
    inputs:
        Input port name → stream of fixed-point integers.  All streams
        must cover ``n_iterations`` samples.
    n_iterations:
        Defaults to the shortest input stream (or raises if there are
        no inputs and no count is given).

    Returns
    -------
    Output port name → stream of fixed-point integers, one value per
    iteration.
    """
    for port in dfg.inputs:
        if port not in inputs:
            raise SimulationError(f"missing stimulus for input port {port!r}")
    if n_iterations is None:
        if not dfg.inputs:
            raise SimulationError(
                "n_iterations is required for applications without inputs"
            )
        n_iterations = min(len(inputs[p]) for p in dfg.inputs)
    for port in dfg.inputs:
        if len(inputs[port]) < n_iterations:
            raise SimulationError(
                f"input stream {port!r} has {len(inputs[port])} samples; "
                f"{n_iterations} needed"
            )

    params = {name: fmt.from_float(value) for name, value in dfg.params.items()}
    histories: dict[str, list[int]] = {name: [] for name in dfg.states}
    outputs: dict[str, list[int]] = {port: [] for port in dfg.outputs}

    for frame in range(n_iterations):
        values: dict[int, int] = {}
        pending_writes: dict[str, int] = {}
        for node in dfg.nodes:
            if node.kind is NodeKind.INPUT:
                values[node.id] = fmt.wrap(inputs[node.name][frame])
            elif node.kind is NodeKind.PARAM:
                values[node.id] = params[node.name]
            elif node.kind is NodeKind.DELAY:
                history = histories[node.name]
                index = frame - node.delay
                values[node.id] = history[index] if index >= 0 else 0
            elif node.kind is NodeKind.OP:
                args = [values[a] for a in node.args]
                values[node.id] = fmt.apply(node.name, *args)
            elif node.kind is NodeKind.STATE_WRITE:
                pending_writes[node.name] = values[node.args[0]]
            elif node.kind is NodeKind.OUTPUT:
                outputs[node.name].append(values[node.args[0]])
            else:  # pragma: no cover - exhaustive over NodeKind
                raise SemanticError(f"unknown node kind {node.kind}")
        # Commit this iteration's state values: they become s@1 next frame.
        for name in dfg.states:
            committed = pending_writes.get(name)
            previous = histories[name][-1] if histories[name] else 0
            histories[name].append(committed if committed is not None else previous)

    return outputs
