"""Recursive-descent parser and semantic lowering to the DFG.

:func:`parse` produces the :class:`~repro.lang.ast.Program`;
:func:`lower` resolves names and emits a validated
:class:`~repro.lang.dfg.Dfg` through the builder; :func:`parse_source`
does both.

Name resolution rules (matching the paper's programming style):

* ``x := expr`` binds a *local signal*; re-binding the same name (the
  paper re-uses ``m`` and ``a`` freely) simply shadows the previous
  value — every use refers to the latest binding at that point.
* ``s = expr`` commits a *state* (if ``s`` is declared as one) or
  writes an *output port*.
* A bare name refers to, in priority order: the latest local binding,
  a parameter, or an input port (one read per iteration, shared by all
  references).
* ``s@k`` reads a declared state at delay ``k >= 1``.
* ``mlt`` is accepted as an alias for ``mult`` (the paper uses both
  spellings: ``mlt`` in source, MULT for the unit).
"""

from __future__ import annotations

from ..errors import SemanticError, SourceError
from .ast import (
    CallExpr,
    CommitAssign,
    DelayExpr,
    Expr,
    LocalAssign,
    NameExpr,
    ParamDecl,
    Program,
    StateDecl,
    Statement,
)
from .builder import DfgBuilder, Ref, StateRef
from .dfg import Dfg
from .lexer import Token, TokenKind, tokenize

#: Source-level operation aliases.
OPERATION_ALIASES = {"mlt": "mult"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect(self, kind: TokenKind, what: str | None = None) -> Token:
        token = self.current
        if token.kind is not kind:
            expected = what or kind.value
            raise SourceError(
                f"expected {expected}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        token = self.current
        if token.kind is not TokenKind.IDENT or token.text != keyword:
            raise SourceError(
                f"expected {keyword!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def at_keyword(self, keyword: str) -> bool:
        return self.current.kind is TokenKind.IDENT and self.current.text == keyword

    # -- grammar ----------------------------------------------------------

    def parse_program(self) -> Program:
        self.expect_keyword("app")
        name = self.expect(TokenKind.IDENT, "application name").text
        self.expect(TokenKind.SEMI)
        program = Program(name)
        while not self.at_keyword("loop"):
            if self.at_keyword("param"):
                self._parse_params(program)
            elif self.at_keyword("input"):
                self._parse_ports(program.inputs, "input")
            elif self.at_keyword("output"):
                self._parse_ports(program.outputs, "output")
            elif self.at_keyword("state"):
                self._parse_states(program)
            else:
                token = self.current
                raise SourceError(
                    f"expected a declaration or 'loop', found {token.text!r}",
                    token.line,
                    token.column,
                )
        self.expect_keyword("loop")
        self.expect(TokenKind.LBRACE)
        while self.current.kind is not TokenKind.RBRACE:
            program.body.append(self._parse_statement())
        self.expect(TokenKind.RBRACE)
        self.expect(TokenKind.EOF, "end of file")
        return program

    def _parse_params(self, program: Program) -> None:
        self.expect_keyword("param")
        while True:
            name_token = self.expect(TokenKind.IDENT, "parameter name")
            self.expect(TokenKind.EQUALS)
            value_token = self.expect(TokenKind.NUMBER, "parameter value")
            program.params.append(
                ParamDecl(name_token.text, float(value_token.text), name_token.line)
            )
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenKind.SEMI)

    def _parse_ports(self, ports: list[str], which: str) -> None:
        self.expect_keyword(which)
        while True:
            ports.append(self.expect(TokenKind.IDENT, f"{which} port name").text)
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenKind.SEMI)

    def _parse_states(self, program: Program) -> None:
        self.expect_keyword("state")
        while True:
            name_token = self.expect(TokenKind.IDENT, "state name")
            self.expect(TokenKind.LPAREN)
            depth_token = self.expect(TokenKind.NUMBER, "state depth")
            try:
                depth = int(depth_token.text)
            except ValueError:
                raise SourceError(
                    "state depth must be an integer",
                    depth_token.line,
                    depth_token.column,
                ) from None
            self.expect(TokenKind.RPAREN)
            program.states.append(StateDecl(name_token.text, depth, name_token.line))
            if self.current.kind is TokenKind.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenKind.SEMI)

    def _parse_statement(self) -> Statement:
        name_token = self.expect(TokenKind.IDENT, "signal name")
        if self.current.kind is TokenKind.ASSIGN:
            self.advance()
            expr = self._parse_expr()
            self.expect(TokenKind.SEMI)
            return LocalAssign(name_token.line, name_token.text, expr)
        if self.current.kind is TokenKind.EQUALS:
            self.advance()
            expr = self._parse_expr()
            self.expect(TokenKind.SEMI)
            return CommitAssign(name_token.line, name_token.text, expr)
        token = self.current
        raise SourceError(
            f"expected ':=' or '=' after {name_token.text!r}",
            token.line,
            token.column,
        )

    def _parse_expr(self) -> Expr:
        name_token = self.expect(TokenKind.IDENT, "expression")
        if self.current.kind is TokenKind.LPAREN:
            self.advance()
            args: list[Expr] = [self._parse_expr()]
            while self.current.kind is TokenKind.COMMA:
                self.advance()
                args.append(self._parse_expr())
            self.expect(TokenKind.RPAREN)
            operation = OPERATION_ALIASES.get(name_token.text, name_token.text)
            return CallExpr(name_token.line, operation, tuple(args))
        if self.current.kind is TokenKind.AT:
            self.advance()
            delay_token = self.expect(TokenKind.NUMBER, "delay count")
            try:
                delay = int(delay_token.text)
            except ValueError:
                raise SourceError(
                    "delay must be an integer",
                    delay_token.line,
                    delay_token.column,
                ) from None
            return DelayExpr(name_token.line, name_token.text, delay)
        return NameExpr(name_token.line, name_token.text)


def parse(text: str) -> Program:
    """Parse source text into a :class:`Program` (syntax only)."""
    return _Parser(tokenize(text)).parse_program()


def lower(program: Program) -> Dfg:
    """Resolve names and lower a parsed program to a validated DFG."""
    builder = DfgBuilder(program.name)
    params: dict[str, Ref] = {}
    for decl in program.params:
        params[decl.name] = builder.param(decl.name, decl.value)
    states: dict[str, StateRef] = {}
    for decl in program.states:
        states[decl.name] = builder.state(decl.name, decl.depth)
    locals_: dict[str, Ref] = {}
    input_reads: dict[str, Ref] = {}

    def resolve(expr: Expr) -> Ref:
        if isinstance(expr, NameExpr):
            if expr.name in locals_:
                return locals_[expr.name]
            if expr.name in params:
                return params[expr.name]
            if expr.name in program.inputs:
                if expr.name not in input_reads:
                    input_reads[expr.name] = builder.input(expr.name)
                return input_reads[expr.name]
            if expr.name in states:
                raise SemanticError(
                    f"state {expr.name!r} must be read with a delay "
                    f"(use {expr.name}@1)",
                    expr.line,
                )
            raise SemanticError(f"unknown name {expr.name!r}", expr.line)
        if isinstance(expr, DelayExpr):
            if expr.state in states:
                return builder.delay(states[expr.state], expr.delay)
            raise SemanticError(
                f"delay of undeclared state {expr.state!r}", expr.line
            )
        if isinstance(expr, CallExpr):
            args = [resolve(a) for a in expr.args]
            return builder.op(expr.operation, *args)
        raise SemanticError(f"unhandled expression {expr!r}", expr.line)

    for statement in program.body:
        if isinstance(statement, LocalAssign):
            if statement.name in states or statement.name in program.outputs:
                raise SemanticError(
                    f"{statement.name!r} is a state/output; use '=' to "
                    f"commit it",
                    statement.line,
                )
            locals_[statement.name] = resolve(statement.expr)
        elif isinstance(statement, CommitAssign):
            value = resolve(statement.expr)
            if statement.name in states:
                builder.write(states[statement.name], value)
            elif statement.name in program.outputs:
                builder.output(statement.name, value)
            else:
                raise SemanticError(
                    f"{statement.name!r} is neither a state nor an output "
                    f"port; use ':=' for local signals",
                    statement.line,
                )
        else:  # pragma: no cover - exhaustive over Statement
            raise SemanticError(f"unhandled statement {statement!r}")
    return builder.build()


def parse_source(text: str) -> Dfg:
    """Parse and lower application source text in one step."""
    return lower(parse(text))
