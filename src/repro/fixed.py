"""Saturating fixed-point arithmetic shared by the whole tool chain.

The audio core computes on two's-complement fractional fixed point
(Q15 by default: 16-bit words, 15 fraction bits).  The *same* functions
are used by the golden reference interpreter (:mod:`repro.lang`) and by
the cycle-accurate core simulator (:mod:`repro.sim`), so end-to-end
equivalence checks compare bit-exact integers, never floats.

Conventions
-----------
* Values travel as Python ints in ``[-2**(w-1), 2**(w-1) - 1]``.
* ``add``/``sub``/``pass`` wrap around (plain two's complement).
* ``add_clip``/``pass_clip`` saturate — the paper's *clip actions*.
* ``mult`` is the classic DSP fractional multiply:
  ``(a * b) >> frac`` followed by wrap-around.  The single overflow
  case (-1.0 × -1.0) wraps to -1.0, as hardware multipliers without a
  saturation stage do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FixedFormat:
    """A two's-complement fixed-point format."""

    width: int = 16
    frac_bits: int = 15

    def __post_init__(self) -> None:
        if self.width < 2:
            raise ValueError("fixed-point width must be >= 2")
        if not 0 <= self.frac_bits < self.width:
            raise ValueError("fraction bits must be in [0, width)")

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    # -- conversions ----------------------------------------------------

    def wrap(self, value: int) -> int:
        """Reduce to the representable range with two's-complement wrap."""
        mask = (1 << self.width) - 1
        value &= mask
        if value > self.max_value:
            value -= 1 << self.width
        return value

    def clip(self, value: int) -> int:
        """Saturate to the representable range (the paper's clip)."""
        if value > self.max_value:
            return self.max_value
        if value < self.min_value:
            return self.min_value
        return value

    def from_float(self, x: float) -> int:
        """Quantise a real coefficient; saturates at the rails."""
        return self.clip(round(x * self.scale))

    def to_float(self, value: int) -> float:
        return value / self.scale

    # -- arithmetic ------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        return self.wrap(a + b)

    def add_clip(self, a: int, b: int) -> int:
        return self.clip(a + b)

    def sub(self, a: int, b: int) -> int:
        return self.wrap(a - b)

    def sub_clip(self, a: int, b: int) -> int:
        return self.clip(a - b)

    def mult(self, a: int, b: int) -> int:
        return self.wrap((a * b) >> self.frac_bits)

    def pass_(self, a: int) -> int:
        return self.wrap(a)

    def pass_clip(self, a: int) -> int:
        return self.clip(a)

    def asr(self, a: int, shift: int) -> int:
        """Arithmetic shift right: scaling by ``2**-shift`` with floor
        rounding — bit-identical to ``mult`` by the power-of-two
        coefficient ``2**(frac_bits - shift)``."""
        return self.wrap(a >> shift)

    def apply(self, operation: str, *args: int) -> int:
        """Dispatch by operation usage name (shared op semantics table).

        ``asr<k>`` names (shift distance encoded in the opcode, see
        :func:`repro.arch.opu.standard_shift_operations`) dispatch to
        :meth:`asr` for any distance.
        """
        handler = _OPERATIONS.get(operation)
        if handler is None:
            if (operation.startswith("asr") and operation[3:].isdigit()
                    and len(args) == 1):
                return self.asr(args[0], int(operation[3:]))
            raise ValueError(f"no fixed-point semantics for operation {operation!r}")
        return handler(self, *args)


def _dispatch_add(fmt: FixedFormat, a: int, b: int) -> int:
    return fmt.add(a, b)


def _dispatch_add_clip(fmt: FixedFormat, a: int, b: int) -> int:
    return fmt.add_clip(a, b)


def _dispatch_sub(fmt: FixedFormat, a: int, b: int) -> int:
    return fmt.sub(a, b)


def _dispatch_mult(fmt: FixedFormat, a: int, b: int) -> int:
    return fmt.mult(a, b)


def _dispatch_pass(fmt: FixedFormat, a: int) -> int:
    return fmt.pass_(a)


def _dispatch_pass_clip(fmt: FixedFormat, a: int) -> int:
    return fmt.pass_clip(a)


_OPERATIONS = {
    "add": _dispatch_add,
    "add_clip": _dispatch_add_clip,
    "sub": _dispatch_sub,
    "mult": _dispatch_mult,
    "pass": _dispatch_pass,
    "pass_clip": _dispatch_pass_clip,
}


def has_semantics(operation: str) -> bool:
    """Whether :meth:`FixedFormat.apply` can interpret ``operation``.

    True for the shared semantics table plus the ``asr<k>`` opcode
    family.  The random-DFG generator (:mod:`repro.gen`) uses this to
    restrict its draws from a core's OPU library to operations the
    golden reference can execute — custom ASU operations without
    fixed-point semantics cannot be differentially checked.
    """
    return operation in _OPERATIONS or (
        operation.startswith("asr") and operation[3:].isdigit()
    )

#: The default format of the library cores.
Q15 = FixedFormat(width=16, frac_bits=15)
