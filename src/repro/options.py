"""Typed compile options: one declaration of every knob the compiler has.

:class:`CompileOptions` is the single source of truth for the
compiler's tunables — optimization level, cycle budget, cover
algorithm, execution mode, scheduler jitter, partial-compilation stop
point and persistent-cache placement.  The same object serves four
audiences:

* **library users** construct it directly (it is frozen and validated
  at construction, so an invalid combination can never travel);
* **the stage cache** derives its content keys from
  :meth:`CompileOptions.fingerprint`, a stable digest of the fields
  that determine compiled output — identical options hash identically
  across processes and machines;
* **serialization** uses :meth:`to_dict`/:meth:`from_dict` — the
  options echo in ``--json`` CLI output, batch manifests and any
  future remote-worker protocol all share this one schema;
* **the CLI** declares its compile-related flags exactly once through
  :meth:`add_to_parser`/:meth:`from_args`, so every subcommand agrees
  on names, types and defaults by construction.

Placement fields (``cache_dir``, ``disk_cache``) and the partial-stop
field (``stop_after``) deliberately do **not** enter the fingerprint:
they change where artifacts are stored or how far the chain runs,
never what any stage computes.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable

from .errors import OptionsError

#: Machine-independent optimization levels (:mod:`repro.opt`).
OPT_LEVELS = (0, 1, 2)

#: Edge-clique-cover algorithms for instruction-set imposition.
COVER_ALGORITHMS = ("greedy", "exact", "edge")

#: Program execution modes the assembler can emit.
MODES = ("loop", "once", "repeat")

#: Stage-boundary verification levels (:mod:`repro.analyze`).
#: ``off`` = trust the pipeline; ``boundaries`` = run the stage
#: verifiers after every boundary; ``strict`` = boundaries plus the
#: machine-code lint of the final image.
VERIFY_LEVELS = ("off", "boundaries", "strict")

#: Bump when the fingerprint's composition changes, so cache keys from
#: older checkouts can never collide with newer ones.
OPTIONS_FINGERPRINT_VERSION = 1

#: The JSON *wire* schema version :meth:`CompileOptions.to_dict` emits
#: and :meth:`CompileOptions.from_dict` accepts.  Bump on any breaking
#: change to the serialized shape (renamed field, changed meaning): a
#: newer client talking to an older server — or a stale batch manifest
#: replayed against a newer checkout — then fails loudly with an
#: :class:`OptionsError` instead of silently misreading the payload.
OPTIONS_SCHEMA_VERSION = 1

#: The fields that determine compiled output (and therefore enter the
#: fingerprint).  ``stop_after``/``cache_dir``/``disk_cache`` are
#: excluded by design: a partial compile's stage keys must equal the
#: full compile's, and cache placement must never invalidate a cache.
SEMANTIC_FIELDS = ("opt", "budget", "cover", "mode", "repeat",
                   "restarts", "seed")

#: Old keyword names (``compile_application`` and the pre-Toolchain
#: sessions) -> :class:`CompileOptions` field.
LEGACY_KWARGS = {
    "opt_level": "opt",
    "cover_algorithm": "cover",
    "repeat_count": "repeat",
    "budget": "budget",
    "mode": "mode",
    "restarts": "restarts",
    "seed": "seed",
    "stop_after": "stop_after",
}


def _stage_names() -> tuple[str, ...]:
    # Imported lazily: repro.pipeline imports this module (the request
    # carries a CompileOptions), so a module-level import would cycle.
    from .pipeline.stages import STAGE_NAMES

    return STAGE_NAMES


@dataclass(frozen=True)
class CompileOptions:
    """Every compile knob, validated and frozen.

    ============  =======================================================
    field         meaning (CLI flag)
    ============  =======================================================
    opt           machine-independent optimization level 0/1/2 (``-O``)
    budget        time-loop cycle budget, ``None`` = unconstrained
                  (``--budget``, must be >= 1)
    cover         edge-clique-cover algorithm (``--cover``)
    mode          program execution mode (``--mode``)
    repeat        repetition count for ``mode="repeat"`` (``--repeat``,
                  must be >= 1)
    restarts      extra jittered list-scheduler attempts
    seed          scheduler jitter seed
    stop_after    partial compilation: stop after this stage
                  (``--stop-after``)
    verify        stage-boundary verification: off/boundaries/strict
                  (``--verify``; read-only checks, never enters the
                  fingerprint)
    cache_dir     persistent stage-cache directory, ``None`` = the
                  ``$REPRO_CACHE_DIR`` / ``~/.cache/repro`` default
                  (``--cache-dir``)
    disk_cache    keep the persistent on-disk cache tier
                  (``--no-disk-cache`` clears it)
    ============  =======================================================
    """

    opt: int = 1
    budget: int | None = None
    cover: str = "greedy"
    mode: str = "loop"
    repeat: int = 1
    restarts: int = 0
    seed: int = 0
    stop_after: str | None = None
    verify: str = "off"
    cache_dir: str | None = None
    disk_cache: bool = True

    def __post_init__(self) -> None:
        # Bools are ints to isinstance() but not to the fingerprint's
        # canonical JSON (True != 1 there), so every integer field
        # rejects them — otherwise two "equal" options could produce
        # different stage-cache keys.
        if isinstance(self.opt, bool) or self.opt not in OPT_LEVELS:
            raise OptionsError(
                f"opt must be one of {OPT_LEVELS}, got {self.opt!r}")
        if self.budget is not None and (not isinstance(self.budget, int)
                                        or isinstance(self.budget, bool)
                                        or self.budget < 1):
            raise OptionsError(
                f"budget must be >= 1 (or None for unconstrained), "
                f"got {self.budget!r}")
        if self.cover not in COVER_ALGORITHMS:
            raise OptionsError(
                f"cover must be one of {COVER_ALGORITHMS}, "
                f"got {self.cover!r}")
        if self.mode not in MODES:
            raise OptionsError(
                f"mode must be one of {MODES}, got {self.mode!r}")
        if not isinstance(self.repeat, int) or isinstance(self.repeat, bool) \
                or self.repeat < 1:
            raise OptionsError(f"repeat must be >= 1, got {self.repeat!r}")
        if not isinstance(self.restarts, int) \
                or isinstance(self.restarts, bool) or self.restarts < 0:
            raise OptionsError(
                f"restarts must be >= 0, got {self.restarts!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise OptionsError(f"seed must be an int, got {self.seed!r}")
        if self.stop_after is not None and \
                self.stop_after not in _stage_names():
            raise OptionsError(
                f"unknown stage {self.stop_after!r}: expected one of "
                f"{', '.join(_stage_names())}")
        if self.verify not in VERIFY_LEVELS:
            raise OptionsError(
                f"verify must be one of {VERIFY_LEVELS}, "
                f"got {self.verify!r}")

    # ------------------------------------------------------------------
    # Value semantics

    def replace(self, **changes: Any) -> "CompileOptions":
        """A copy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able dict of every field plus the wire-schema
        stamp — the one options schema JSON consumers (``batch
        --json``, ``explore --json``, the serve wire protocol) see."""
        payload = {"schema_version": OPTIONS_SCHEMA_VERSION}
        payload.update(dataclasses.asdict(self))
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompileOptions":
        """Inverse of :meth:`to_dict`; missing fields take their
        defaults, unknown fields are an error (typo safety).

        ``schema_version`` is optional (a pre-stamp payload reads as
        the current version) but when present must match
        :data:`OPTIONS_SCHEMA_VERSION` — a payload written by an
        incompatible wire schema is refused with a clear error, never
        half-read.
        """
        data = dict(data)
        version = data.pop("schema_version", OPTIONS_SCHEMA_VERSION)
        if version != OPTIONS_SCHEMA_VERSION:
            raise OptionsError(
                f"unsupported options schema_version {version!r} "
                f"(this build speaks version {OPTIONS_SCHEMA_VERSION})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise OptionsError(
                f"unknown option field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})")
        return cls(**data)

    @classmethod
    def from_legacy_kwargs(cls, **kwargs: Any) -> "CompileOptions":
        """Funnel the pre-Toolchain keyword spelling (``opt_level=``,
        ``cover_algorithm=``, ``repeat_count=`` ...) into options."""
        fields: dict[str, Any] = {}
        for name, value in kwargs.items():
            field = LEGACY_KWARGS.get(name)
            if field is None:
                raise OptionsError(
                    f"unknown compile option {name!r} "
                    f"(known: {', '.join(sorted(LEGACY_KWARGS))})")
            fields[field] = value
        return cls(**fields)

    @classmethod
    def merge_legacy(cls, options: "CompileOptions | None",
                     **legacy: Any) -> "CompileOptions":
        """Fold an ``options=`` object and legacy keywords into one.

        With no ``options``, the legacy keywords build (and validate) a
        new instance.  With ``options``, any legacy keyword departing
        from its default is refused — mixing the spellings would
        silently drop values.  Defaults come from the class itself so
        the guard cannot drift; both the session wrappers and the
        explorer share this one rule.
        """
        if options is None:
            return cls.from_legacy_kwargs(**legacy)
        defaults = cls()
        conflicts = sorted(
            name for name, value in legacy.items()
            if value != getattr(defaults, LEGACY_KWARGS[name])
        )
        if conflicts:
            raise OptionsError(
                f"pass options= or the legacy keyword(s) "
                f"{', '.join(conflicts)}, not both")
        return options

    # ------------------------------------------------------------------
    # Content fingerprinting (feeds the stage-cache keys)

    def fingerprint(self, *names: str) -> str:
        """Stable content digest of the named semantic fields (all of
        :data:`SEMANTIC_FIELDS` when none are named).

        Stage keys chain subset fingerprints — e.g. the schedule stage
        keys on ``fingerprint("budget", "restarts", "seed")`` — so a
        changed budget invalidates scheduling but not the lowered
        prefix.  The digest is a SHA-256 over canonical JSON: equal
        options produce equal keys in any process on any machine.
        """
        names = names or SEMANTIC_FIELDS
        unknown = sorted(set(names) - set(SEMANTIC_FIELDS))
        if unknown:
            raise OptionsError(
                f"non-semantic field(s) in fingerprint: "
                f"{', '.join(unknown)} (semantic: "
                f"{', '.join(SEMANTIC_FIELDS)})")
        payload = {name: getattr(self, name) for name in sorted(names)}
        rendered = json.dumps(
            ["options", OPTIONS_FINGERPRINT_VERSION, payload],
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(rendered.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # The one CLI declaration of compile-related flags

    @staticmethod
    def add_to_parser(
        parser: argparse.ArgumentParser,
        include: Iterable[str] = ("opt", "budget", "cover", "mode",
                                  "repeat", "stop_after", "verify",
                                  "cache"),
    ) -> None:
        """Install the compile-option flags on an argparse parser.

        ``include`` names the flag groups a subcommand exposes (every
        group by default); names, types, defaults and help text come
        from this single declaration, so no subcommand can drift.
        Range validation happens in the argparse types — a bad value is
        a *usage* error (exit code 2), before any compilation starts.
        """
        groups = set(include)
        unknown = groups - set(_FLAG_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown option flag group(s) {sorted(unknown)} "
                f"(known: {sorted(_FLAG_GROUPS)})")
        for name in _FLAG_GROUP_ORDER:
            if name in groups:
                _FLAG_GROUPS[name](parser)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "CompileOptions":
        """Build options from a parsed CLI namespace.

        Reads whichever of the :meth:`add_to_parser` destinations the
        subcommand installed; absent groups take the library defaults
        — except the disk cache, which is only enabled for subcommands
        that declared the cache flags (``run`` compiles cold).
        """
        defaults = cls()
        return cls(
            opt=getattr(args, "opt", defaults.opt),
            budget=getattr(args, "budget", defaults.budget),
            cover=getattr(args, "cover", defaults.cover),
            mode=getattr(args, "mode", defaults.mode),
            repeat=getattr(args, "repeat", defaults.repeat),
            stop_after=getattr(args, "stop_after", None) or None,
            verify=getattr(args, "verify", defaults.verify),
            cache_dir=getattr(args, "cache_dir", None),
            disk_cache=not getattr(args, "no_disk_cache", True),
        )


def positive_int(text: str) -> int:
    """argparse type for flags whose values must be >= 1 (``--budget``,
    ``--repeat``): a violation is a usage error (exit code 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


_DEFAULTS = CompileOptions()


def _add_opt(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-O", "--opt", type=int, choices=list(OPT_LEVELS),
        default=_DEFAULTS.opt,
        help=f"machine-independent optimization level "
             f"(default {_DEFAULTS.opt})")


def _add_budget(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget", type=positive_int, default=_DEFAULTS.budget,
        metavar="N",
        help="time-loop cycle budget (>= 1; default: unconstrained)")


def _add_cover(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cover", default=_DEFAULTS.cover, choices=list(COVER_ALGORITHMS),
        help=f"edge-clique-cover algorithm (default {_DEFAULTS.cover})")


def _add_mode(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mode", default=_DEFAULTS.mode, choices=list(MODES),
        help=f"program execution mode (default {_DEFAULTS.mode})")


def _add_repeat(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--repeat", type=positive_int, default=_DEFAULTS.repeat,
        metavar="N",
        help=f"repetition count for --mode repeat "
             f"(>= 1; default {_DEFAULTS.repeat})")


def _add_stop_after(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stop-after", default=None, choices=list(_stage_names()),
        help="partial compilation: stop after this stage and print the "
             "per-stage fingerprints")


def _add_verify(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify", default=_DEFAULTS.verify, choices=list(VERIFY_LEVELS),
        help="stage-boundary verification: run the repro.analyze "
             "invariant checks after each stage (boundaries) and lint "
             "the encoded image too (strict); see docs/analysis.md "
             f"(default {_DEFAULTS.verify})")


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="SPEC",
        help="persistent-cache backend spec: a directory (default "
             "$REPRO_CACHE_DIR or ~/.cache/repro) or memory:<name> "
             "for a process-shared in-memory backend")


def _add_cache(parser: argparse.ArgumentParser) -> None:
    _add_cache_dir(parser)
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read or write the persistent stage cache")


#: Flag group name -> installer; the order flags appear in ``--help``.
#: ``cache_dir`` is the backend-spec flag alone — what admin verbs
#: (``repro cache``) expose without the compile-facing ``--no-disk-cache``.
_FLAG_GROUP_ORDER = ("budget", "opt", "cover", "mode", "repeat",
                     "stop_after", "verify", "cache", "cache_dir")
_FLAG_GROUPS = {
    "opt": _add_opt,
    "budget": _add_budget,
    "cover": _add_cover,
    "mode": _add_mode,
    "repeat": _add_repeat,
    "stop_after": _add_stop_after,
    "verify": _add_verify,
    "cache": _add_cache,
    "cache_dir": _add_cache_dir,
}
