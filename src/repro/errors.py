"""Exception hierarchy for the repro code generator.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Sub-hierarchies mirror the compiler phases
of the paper (figure 1b): architecture definition, source frontend, RT
generation, instruction-set modelling, scheduling, encoding and
simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class OptionsError(ReproError, ValueError):
    """A compile option is out of range or inconsistent.

    Also a :class:`ValueError`: options are plain values, and callers
    that validate them generically should not need the repro hierarchy.
    """


class ArchitectureError(ReproError):
    """The datapath/controller description violates the target style."""


class ConnectivityError(ArchitectureError):
    """A required path through the datapath does not exist."""


class SourceError(ReproError):
    """The application source is malformed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            location = f" ({location})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticError(SourceError):
    """The application source is well-formed but meaningless."""


class BindingError(ReproError):
    """An operation cannot be assigned to any OPU of the core."""


class RoutingError(ReproError):
    """A value cannot be routed to the register file a consumer reads."""


class InstructionSetError(ReproError):
    """The instruction set violates the construction rules (sect. 6.2)."""


class ClassificationError(ReproError):
    """An RT cannot be assigned to exactly one RT class (sect. 6.1)."""


class SchedulingError(ReproError):
    """No schedule satisfying all constraints was found."""


class BudgetExceededError(SchedulingError):
    """A schedule exists but not within the requested cycle budget."""

    def __init__(self, achieved: int, budget: int):
        super().__init__(
            f"schedule needs {achieved} cycles but the budget is {budget}; "
            f"rewrite the source or relax the budget (paper, sect. 4)"
        )
        self.achieved = achieved
        self.budget = budget


class RegisterPressureError(SchedulingError):
    """A register file cannot hold all simultaneously-live values."""


class EncodingError(ReproError):
    """The scheduled program cannot be encoded into instruction words."""


class SimulationError(ReproError):
    """The core simulator hit an inconsistent machine state."""


class VerificationError(ReproError):
    """A stage verifier found an illegal pipeline artifact.

    Raised by ``Toolchain`` when compiling under ``verify=boundaries``
    or ``verify=strict``; carries the full finding list so callers can
    report structured diagnostics instead of parsing the message.
    """

    def __init__(self, message: str, findings=()):
        super().__init__(message)
        self.findings = list(findings)
