"""Dependence analysis over register transfers.

Edges constrain issue cycles: ``cycle(dst) >= cycle(src) + delay``
(within one iteration; the ``distance`` field marks loop-carried edges
used only by the folding scheduler, where the constraint becomes
``cycle(dst) >= cycle(src) + delay - II * distance``).

Edge kinds
----------
* **RAW** — a value read must have been produced: delay = producer
  latency.
* **WAR (loop carry)** — the next iteration's incarnation of a pinned
  register (e.g. the frame pointer) may be written in the same cycle as
  the last read, but not earlier: delay = 0.  Register files read at
  the start of a cycle and are written at its end.
* **MEM** — conservative ordering of RAM transfers touching the same
  symbolic location (write→read and write→write: delay 1; read→write:
  delay 0).  The frame-interleaved delay-line layout guarantees
  distinct locations within one iteration, so real programs generate
  none of these — the edges exist for safety and for tests.
* **CARRY (distance 1)** — producer of a loop-carried value feeds its
  readers in the *next* iteration; only the folding scheduler uses
  these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..rtgen.program import RTProgram
from ..rtgen.rt import RT


class EdgeKind(enum.Enum):
    RAW = "raw"
    WAR = "war"
    MEM = "mem"
    CARRY = "carry"


@dataclass(frozen=True)
class Edge:
    src: RT
    dst: RT
    delay: int
    kind: EdgeKind
    distance: int = 0


@dataclass
class DependenceGraph:
    rts: list[RT]
    edges: list[Edge]

    def successors(self, rt: RT) -> list[Edge]:
        return [e for e in self.edges if e.src is rt and e.distance == 0]

    def predecessors(self, rt: RT) -> list[Edge]:
        return [e for e in self.edges if e.dst is rt and e.distance == 0]

    def critical_path_length(self) -> int:
        priority = compute_priorities(self)
        return max(priority.values(), default=0)


def build_dependence_graph(program: RTProgram,
                           rts: list[RT] | None = None) -> DependenceGraph:
    """Analyse ``rts`` (default: the program's own transfer list).

    Passing modified RTs (after instruction-set imposition / merging)
    is the normal flow — the value and memory annotations survive the
    rewriting, so the analysis is identical.
    """
    if rts is None:
        rts = program.rts
    edges: list[Edge] = []

    producers: dict[int, RT] = {}
    for rt in rts:
        for dest in rt.destinations:
            producers.setdefault(dest.value, rt)

    live_ins = program.live_in_values()
    carry_new = program.loop_new_values()

    # RAW: value producers feed readers.
    readers: dict[int, list[RT]] = {}
    for rt in rts:
        for value in rt.read_values:
            readers.setdefault(value, []).append(rt)
            producer = producers.get(value)
            if producer is not None and producer is not rt:
                edges.append(Edge(producer, rt, producer.latency, EdgeKind.RAW))

    # WAR on loop-carried registers: the new incarnation must not be
    # written before the old one's last read.
    for carry in program.loop_carries:
        writer = producers.get(carry.new)
        if writer is None:
            continue
        for reader in readers.get(carry.old, []):
            if reader is not writer:
                edges.append(Edge(reader, writer, 0, EdgeKind.WAR))
        # CARRY (distance 1): this iteration's writer feeds next
        # iteration's readers — used by the folding scheduler only.
        for reader in readers.get(carry.old, []):
            if reader is not writer:
                edges.append(
                    Edge(writer, reader, writer.latency, EdgeKind.CARRY, distance=1)
                )

    # MEM: program order per symbolic location.
    last_write: dict[str, RT] = {}
    last_reads: dict[str, list[RT]] = {}
    for rt in rts:
        location = rt.memory_location
        if location is None:
            continue
        if rt.memory_effect == "read":
            writer = last_write.get(location)
            if writer is not None:
                edges.append(Edge(writer, rt, 1, EdgeKind.MEM))
            last_reads.setdefault(location, []).append(rt)
        elif rt.memory_effect == "write":
            writer = last_write.get(location)
            if writer is not None:
                edges.append(Edge(writer, rt, 1, EdgeKind.MEM))
            for reader in last_reads.get(location, []):
                edges.append(Edge(reader, rt, 0, EdgeKind.MEM))
            last_reads[location] = []
            last_write[location] = rt

    _ = live_ins, carry_new  # documented above; kept for readability
    return DependenceGraph(rts=list(rts), edges=edges)


def compute_priorities(graph: DependenceGraph) -> dict[RT, int]:
    """Longest path (in cycles) from each RT to any sink.

    The classic list-scheduling priority: transfers on the critical
    path first.  Computed over distance-0 edges (the block body).
    """
    successors: dict[RT, list[Edge]] = {rt: [] for rt in graph.rts}
    indegree_out: dict[RT, int] = {rt: 0 for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        successors[edge.src].append(edge)
        indegree_out[edge.src] += 1

    priority: dict[RT, int] = {}

    order: list[RT] = []
    # Kahn's algorithm on the reversed graph (process sinks first).
    remaining = {rt: len(successors[rt]) for rt in graph.rts}
    stack = [rt for rt, n in remaining.items() if n == 0]
    predecessors: dict[RT, list[Edge]] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        predecessors[edge.dst].append(edge)
    while stack:
        rt = stack.pop()
        order.append(rt)
        priority[rt] = max(
            (priority[e.dst] + e.delay for e in successors[rt]),
            default=rt.latency - 1,
        )
        for edge in predecessors[rt]:
            remaining[edge.src] -= 1
            if remaining[edge.src] == 0:
                stack.append(edge.src)
    if len(order) != len(graph.rts):
        from ..errors import SchedulingError
        raise SchedulingError(
            "dependence cycle among register transfers within one "
            "iteration (is a state read at delay 0?)"
        )
    return priority
