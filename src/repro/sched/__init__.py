"""Scheduling: ordering register transfers into VLIW instructions
(paper, step 3 of figure 1b, plus the section-8 future work)."""

from .baselines import dynamic_check_schedule, vertical_schedule
from .dependence import (
    DependenceGraph,
    Edge,
    EdgeKind,
    build_dependence_graph,
    compute_priorities,
)
from .exact import ExactSchedulerStats, exact_schedule
from .folding import FoldedSchedule, modulo_schedule, recurrence_mii, resource_mii
from .interval import (
    ExecutionInterval,
    execution_intervals,
    tighten_with_decision,
)
from .bipartite import (
    exclusive_groups_by_opu,
    hall_window_check,
    maximum_matching,
    resource_feasible,
)
from .list_scheduler import compact_lifetimes, list_schedule
from .regalloc import Allocation, Interval, allocate_registers, compute_intervals
from .schedule import ReservationTable, Schedule

__all__ = [
    "Allocation",
    "DependenceGraph",
    "Edge",
    "EdgeKind",
    "ExactSchedulerStats",
    "ExecutionInterval",
    "FoldedSchedule",
    "Interval",
    "ReservationTable",
    "Schedule",
    "allocate_registers",
    "build_dependence_graph",
    "compact_lifetimes",
    "compute_intervals",
    "compute_priorities",
    "dynamic_check_schedule",
    "exact_schedule",
    "exclusive_groups_by_opu",
    "execution_intervals",
    "hall_window_check",
    "list_schedule",
    "maximum_matching",
    "modulo_schedule",
    "recurrence_mii",
    "resource_feasible",
    "resource_mii",
    "tighten_with_decision",
    "vertical_schedule",
]
