"""Time-loop folding by iterative modulo scheduling (paper, section 7:
"This could be reduced a few cycles if the time-loop could be folded
which is not supported by the current system").

Folding overlaps consecutive time-loop iterations: the block repeats
every *initiation interval* (II) cycles, with resource bookings taken
modulo II.  The lower bound on II is

* **ResMII** — the busiest resource's operation count, and
* **RecMII** — the longest loop-carried dependence cycle (distance-1
  CARRY edges back into the block).

The scheduler below is a compact iterative modulo scheduler (Rau-style)
sufficient to demonstrate the paper's "a few cycles" claim; it reports
the achieved II next to the unfolded schedule length.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from ..rtgen.rt import RT
from .dependence import DependenceGraph, compute_priorities


@dataclass
class FoldedSchedule:
    """A modulo schedule: issue cycles plus the initiation interval."""

    cycle_of: dict[RT, int]
    initiation_interval: int
    length: int                     # span of one iteration's issue slots

    def validate(self, graph: DependenceGraph) -> None:
        ii = self.initiation_interval
        slots: dict[tuple[str, int], str] = {}
        for rt, cycle in self.cycle_of.items():
            for use in rt.uses:
                key = (use.resource, (cycle + use.offset) % ii)
                existing = slots.get(key)
                if existing is not None and existing != use.usage:
                    raise SchedulingError(
                        f"modulo resource conflict on {use.resource}"
                    )
                slots[key] = use.usage
        for edge in graph.edges:
            src = self.cycle_of[edge.src]
            dst = self.cycle_of[edge.dst]
            if dst < src + edge.delay - ii * edge.distance:
                raise SchedulingError(
                    f"modulo dependence violated: {edge.dst!r} at {dst} "
                    f"before {edge.src!r} + {edge.delay} - {ii}*{edge.distance}"
                )


def resource_mii(rts: list[RT]) -> int:
    """Resource-constrained lower bound: the busiest exclusive resource.

    Counts distinct (resource, usage-instance) bookings; same-usage
    sharing cannot happen twice in one modulo slot for *different*
    transfers of the kinds our generator emits (every result has its
    own bus value), so the per-OPU transfer count is the bound.
    """
    counts: dict[str, int] = {}
    for rt in rts:
        counts[rt.opu] = counts.get(rt.opu, 0) + 1
    return max(counts.values(), default=1)


def recurrence_mii(graph: DependenceGraph) -> int:
    """Recurrence lower bound from loop-carried cycles.

    For every elementary cycle through distance-1 edges, II must be at
    least (sum of delays) / (sum of distances).  Our generator emits
    simple carrier cycles (reader -> writer -> next-iteration reader);
    a longest-path sweep per carry edge suffices.
    """
    longest_to: dict[RT, dict[RT, int]] = {}

    def longest_paths(src: RT) -> dict[RT, int]:
        if src in longest_to:
            return longest_to[src]
        distances: dict[RT, int] = {src: 0}
        order = [src]
        index = 0
        successors: dict[RT, list] = {}
        for edge in graph.edges:
            if edge.distance == 0:
                successors.setdefault(edge.src, []).append(edge)
        while index < len(order):
            rt = order[index]
            index += 1
            for edge in successors.get(rt, []):
                candidate = distances[rt] + edge.delay
                if candidate > distances.get(edge.dst, -1):
                    distances[edge.dst] = candidate
                    order.append(edge.dst)
        longest_to[src] = distances
        return distances

    best = 1
    for edge in graph.edges:
        if edge.distance != 1:
            continue
        distances = longest_paths(edge.dst)
        if edge.src in distances:
            cycle_delay = distances[edge.src] + edge.delay
            best = max(best, cycle_delay)  # distance sum is 1
    return best


def modulo_schedule(
    graph: DependenceGraph,
    max_ii: int | None = None,
    budget_hint: int | None = None,
) -> FoldedSchedule:
    """Find the smallest II the iterative modulo scheduler achieves."""
    lower = max(resource_mii(graph.rts), recurrence_mii(graph))
    upper = max_ii if max_ii is not None else (
        budget_hint if budget_hint is not None else lower + len(graph.rts)
    )
    for ii in range(lower, upper + 1):
        folded = _try_ii(graph, ii)
        if folded is not None:
            folded.validate(graph)
            return folded
    raise SchedulingError(
        f"no modulo schedule found with II <= {upper} (lower bound {lower})"
    )


def _try_ii(graph: DependenceGraph, ii: int) -> FoldedSchedule | None:
    priority = compute_priorities(graph)
    predecessors: dict[RT, list] = {rt: [] for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance == 0:
            predecessors[edge.dst].append(edge)
            successors[edge.src].append(edge)

    order = sorted(graph.rts, key=lambda rt: (-priority[rt], rt.uid))
    slots: dict[tuple[str, int], tuple[str, int]] = {}
    cycle_of: dict[RT, int] = {}

    def fits(rt: RT, cycle: int) -> bool:
        for use in rt.uses:
            key = (use.resource, (cycle + use.offset) % ii)
            existing = slots.get(key)
            if existing is not None and (
                existing[0] != use.usage or existing[1] != cycle + use.offset
            ):
                # Same usage only shares within the same absolute cycle;
                # iterations are distinct instances.
                return False
        return True

    def place(rt: RT, cycle: int) -> None:
        for use in rt.uses:
            slots[(use.resource, (cycle + use.offset) % ii)] = (
                use.usage, cycle + use.offset,
            )
        cycle_of[rt] = cycle

    def unplace(rt: RT) -> None:
        cycle = cycle_of.pop(rt)
        for use in rt.uses:
            slots.pop((use.resource, (cycle + use.offset) % ii), None)

    max_attempts = len(graph.rts) * 16
    attempts = 0
    pending = list(order)
    while pending:
        attempts += 1
        if attempts > max_attempts:
            return None
        rt = pending.pop(0)
        earliest = max(
            (cycle_of[e.src] + e.delay for e in predecessors[rt]
             if e.src in cycle_of),
            default=0,
        )
        placed = False
        for cycle in range(earliest, earliest + ii):
            if fits(rt, cycle):
                place(rt, cycle)
                placed = True
                break
        if not placed:
            # Evict a conflicting transfer (iterative modulo scheduling).
            cycle = earliest
            victims = [
                other for other in list(cycle_of)
                if any(
                    (cycle_of[other] + uo.offset) % ii == (cycle + uv.offset) % ii
                    and uo.resource == uv.resource
                    for uo in other.uses for uv in rt.uses
                )
            ]
            if not victims:
                return None
            for victim in victims:
                unplace(victim)
                pending.append(victim)
            place(rt, cycle)
        # Dependents placed earlier than allowed must be re-scheduled.
        for edge in successors[rt]:
            if edge.dst in cycle_of and cycle_of[edge.dst] < cycle_of[rt] + edge.delay:
                unplace(edge.dst)
                pending.append(edge.dst)
    # Check distance-1 edges; if violated, fail this II.
    for edge in graph.edges:
        if edge.distance == 1:
            if cycle_of[edge.dst] < cycle_of[edge.src] + edge.delay - ii:
                return None
    length = max(
        cycle + max(rt.latency, rt.max_offset + 1)
        for rt, cycle in cycle_of.items()
    )
    return FoldedSchedule(cycle_of=cycle_of, initiation_interval=ii, length=length)
