"""Post-scheduling register allocation (left-edge, per register file).

Virtual values are bound to physical registers only after scheduling:
the value written by an RT at cycle ``t`` with latency ``L`` occupies a
register of its destination file from the write moment ``t + L - 1``
until its last read.  Register files read at the start of a cycle and
write at its end, so a register freed by a last read at cycle ``c`` can
be rewritten in ``c`` — the classic left-edge sharing rule.

Loop-carried values (the frame pointer) are pinned: the old and new
incarnation share one reserved register, live across the block
boundary, excluded from the general pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RegisterPressureError
from ..obs import current_telemetry
from ..rtgen.program import RTProgram
from .schedule import Schedule


@dataclass(frozen=True)
class Interval:
    """Occupation of one register by one value, [birth, death]."""

    value: int
    register_file: str
    birth: int
    death: int


@dataclass
class Allocation:
    """Physical register numbers per (register file, value)."""

    register_of: dict[tuple[str, int], int]
    pressure: dict[str, int]            # register file -> registers needed
    intervals: dict[str, list[Interval]] = field(default_factory=dict)

    def lookup(self, register_file: str, value: int) -> int:
        return self.register_of[(register_file, value)]


def compute_intervals(program: RTProgram, schedule: Schedule) -> dict[str, list[Interval]]:
    """Lifetime intervals of every (register file, value) pair."""
    born: dict[tuple[str, int], int] = {}
    last_read: dict[tuple[str, int], int] = {}

    for rt, cycle in schedule.cycle_of.items():
        write_moment = cycle + rt.latency - 1
        for dest in rt.destinations:
            key = (dest.register_file, dest.value)
            born[key] = min(born.get(key, write_moment), write_moment)
        for operand in rt.operands:
            if not operand.is_register:
                continue
            key = (operand.register_file, operand.value)
            last_read[key] = max(last_read.get(key, cycle), cycle)

    # Loop-carried values live across the block boundary: the old
    # incarnation from cycle 0, the new one to the end of the block.
    for carry in program.loop_carries:
        old_key = (carry.register_file, carry.old)
        born.setdefault(old_key, 0)
        born[old_key] = 0
        new_key = (carry.register_file, carry.new)
        if new_key in born:
            last_read[new_key] = schedule.length - 1

    intervals: dict[str, list[Interval]] = {}
    for key, birth in born.items():
        register_file, value = key
        death = max(last_read.get(key, birth), birth)
        intervals.setdefault(register_file, []).append(
            Interval(value, register_file, birth, death)
        )
    # Live-in values that are only read (no producer in the block).
    for key in last_read:
        if key not in born:
            register_file, value = key
            intervals.setdefault(register_file, []).append(
                Interval(value, register_file, 0, last_read[key])
            )
    for file_intervals in intervals.values():
        file_intervals.sort(key=lambda i: (i.birth, i.death, i.value))
    return intervals


def allocate_registers(
    program: RTProgram,
    schedule: Schedule,
    capacities: dict[str, int] | None = None,
) -> Allocation:
    """Left-edge allocation; raises on register-file overflow.

    ``capacities`` overrides the datapath's register-file sizes (used
    for merged files whose capacity is the sum of the parts).
    """
    datapath = program.core.datapath
    if capacities is None:
        capacities = {rf.name: rf.size for rf in datapath.register_files.values()}

    pinned: dict[tuple[str, int], int] = {}
    reserved: dict[str, set[int]] = {}
    for carry in program.loop_carries:
        pinned[(carry.register_file, carry.old)] = carry.register
        pinned[(carry.register_file, carry.new)] = carry.register
        reserved.setdefault(carry.register_file, set()).add(carry.register)

    intervals = compute_intervals(program, schedule)
    obs = current_telemetry()
    obs.count("sched.regalloc.intervals",
              sum(len(v) for v in intervals.values()))
    register_of: dict[tuple[str, int], int] = {}
    pressure: dict[str, int] = {}

    for register_file, file_intervals in intervals.items():
        capacity = capacities.get(register_file)
        if capacity is None:
            raise RegisterPressureError(
                f"no capacity known for register file {register_file!r}"
            )
        blocked = reserved.get(register_file, set())
        free_at: dict[int, int] = {}   # register -> cycle it frees (exclusive)
        used = 0
        for interval in file_intervals:
            key = (register_file, interval.value)
            if key in pinned:
                register_of[key] = pinned[key]
                continue
            chosen = None
            for register in sorted(free_at):
                if free_at[register] <= interval.birth:
                    chosen = register
                    break
            if chosen is None:
                chosen = next(
                    r for r in range(capacity + len(blocked)
                                     + len(file_intervals) + 1)
                    if r not in blocked and r not in free_at
                )
            free_at[chosen] = interval.death  # freed by the last read
            register_of[key] = chosen
            used = max(used, chosen + 1)
        # Register indices already skip the pinned ones, so the space
        # needed is the max index in use (pinned included).
        needed = max([used] + [r + 1 for r in blocked])
        pressure[register_file] = needed
        if needed > capacity:
            obs.count("sched.regalloc.overflows")
            raise RegisterPressureError(
                f"register file {register_file!r} needs {needed} registers "
                f"but has {capacity}; lengthen the schedule, enlarge the "
                f"file, or rewrite the source (paper, section 3: design "
                f"iterations)"
            )
    return Allocation(register_of=register_of, pressure=pressure,
                      intervals=intervals)
