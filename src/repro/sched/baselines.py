"""Baseline code generators for the evaluation benches.

``vertical_schedule``
    One RT per instruction, in dependence order — the "vertical mcode"
    a non-parallelising compiler emits.  Its length (≈ the RT count)
    against the VLIW schedule's shows why "existing compilers generate
    code of which the efficiency is not sufficient" (section 2).

``dynamic_check_schedule``
    A list scheduler that does *not* use the artificial conflict
    resources.  Instead it re-validates the instruction set on every
    placement attempt: the classes present in the candidate cycle plus
    the new RT's class must form an allowed instruction type.  It finds
    the same schedules as the static model (the legality test is
    equivalent) but pays the set lookup on the scheduler's hot path —
    the cost the paper's static modelling avoids.
"""

from __future__ import annotations

from ..core.instruction_set import InstructionSet
from ..core.rtclass import ClassTable
from ..errors import BudgetExceededError, SchedulingError
from ..rtgen.rt import RT
from .dependence import DependenceGraph, compute_priorities
from .schedule import ReservationTable, Schedule


def vertical_schedule(graph: DependenceGraph) -> Schedule:
    """One transfer per cycle, topologically ordered."""
    priority = compute_priorities(graph)
    predecessors: dict[RT, list] = {rt: [] for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        predecessors[edge.dst].append(edge)
        successors[edge.src].append(edge)
    pending = {rt: len(predecessors[rt]) for rt in graph.rts}
    ready = sorted(
        (rt for rt, n in pending.items() if n == 0),
        key=lambda rt: (-priority[rt], rt.uid),
    )
    cycle_of: dict[RT, int] = {}
    earliest: dict[RT, int] = {rt: 0 for rt in graph.rts}
    cycle = 0
    while ready:
        rt = next((r for r in ready if earliest[r] <= cycle), None)
        if rt is None:
            cycle += 1
            continue
        ready.remove(rt)
        cycle = max(cycle, earliest[rt])
        cycle_of[rt] = cycle
        for edge in successors[rt]:
            earliest[edge.dst] = max(earliest[edge.dst], cycle + edge.delay)
            pending[edge.dst] -= 1
            if pending[edge.dst] == 0:
                ready.append(edge.dst)
                ready.sort(key=lambda r: (-priority[r], r.uid))
        cycle += 1
    if len(cycle_of) != len(graph.rts):
        raise SchedulingError("vertical scheduler left transfers unscheduled")
    length = max(
        c + max(rt.latency, rt.max_offset + 1) for rt, c in cycle_of.items()
    )
    return Schedule(cycle_of=cycle_of, length=length)


def dynamic_check_schedule(
    graph: DependenceGraph,
    table: ClassTable,
    instruction_set: InstructionSet,
    budget: int | None = None,
) -> Schedule:
    """List scheduling with on-the-fly instruction-set legality checks.

    ``graph`` must be built over *unmodified* RTs (no artificial
    resources); the instruction set is enforced dynamically instead.
    """
    table.classify_program(graph.rts)
    priority = compute_priorities(graph)
    predecessors: dict[RT, list] = {rt: [] for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        predecessors[edge.dst].append(edge)
        successors[edge.src].append(edge)

    pending = {rt: len(predecessors[rt]) for rt in graph.rts}
    ready = [rt for rt, n in pending.items() if n == 0]
    earliest = {rt: 0 for rt in graph.rts}
    cycle_of: dict[RT, int] = {}
    classes_at: dict[int, set[str]] = {}
    reservation = ReservationTable()

    cycle = 0
    horizon = sum(max(1, rt.latency) for rt in graph.rts) + 1
    length = 0
    while len(cycle_of) < len(graph.rts):
        if cycle > horizon:
            raise SchedulingError("dynamic-check scheduler exceeded horizon")
        progress = True
        while progress:
            progress = False
            for rt in sorted(ready, key=lambda r: (-priority[r], r.uid)):
                if earliest[rt] > cycle:
                    continue
                if not reservation.fits(rt, cycle):
                    continue
                # The dynamic legality test the static model replaces:
                proposed = classes_at.get(cycle, set()) | {rt.rt_class}
                if not instruction_set.allows(frozenset(proposed)):
                    continue
                reservation.place(rt, cycle)
                classes_at.setdefault(cycle, set()).add(rt.rt_class)
                cycle_of[rt] = cycle
                length = max(length, cycle + rt.max_offset + 1, cycle + rt.latency)
                ready.remove(rt)
                for edge in successors[rt]:
                    pending[edge.dst] -= 1
                    earliest[edge.dst] = max(earliest[edge.dst], cycle + edge.delay)
                    if pending[edge.dst] == 0:
                        ready.append(edge.dst)
                progress = True
        cycle += 1
    if budget is not None and length > budget:
        raise BudgetExceededError(length, budget)
    return Schedule(cycle_of=cycle_of, length=length, budget=budget)
