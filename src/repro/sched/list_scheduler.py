"""Cycle-budgeted priority list scheduling (paper, step 3 of figure 1b).

"The modifications insure that a scheduler only creates mcode
instructions by combining RTs that are physically possible and allowed
in the instruction set."  After RT modification the scheduler is a
*plain* resource-constrained list scheduler — it knows nothing about
instruction sets; it only respects the usage model.

Two priority regimes:

* **Critical path** (no budget): classic longest-path-to-sink order.
* **Deadline + resource criticality** (budget given): transfers are
  taken earliest-ALAP-first, but a transfer whose OPU has no slack left
  (remaining demand ≥ remaining cycles − margin) jumps the queue — a
  92%-occupied resource must almost never idle, which is exactly the
  regime of the paper's 63-of-64-cycle audio schedule.

With ``restarts > 0`` the scheduler re-runs over a small ladder of
margins and deterministic jitters and keeps the shortest result.  With
``minimize=True`` it then walks the budget down one cycle at a time
until scheduling fails, reporting the tightest feasible schedule (the
paper beats its 64-cycle budget by one).
"""

from __future__ import annotations

import random
from collections import Counter

from ..errors import BudgetExceededError, SchedulingError
from ..obs import current_telemetry
from ..rtgen.rt import RT
from .dependence import DependenceGraph, compute_priorities
from .interval import execution_intervals
from .schedule import ReservationTable, Schedule


def list_schedule(
    graph: DependenceGraph,
    budget: int | None = None,
    restarts: int = 8,
    seed: int = 0,
    lifetime_compaction: bool = True,
    minimize: bool = True,
) -> Schedule:
    """Schedule one block; raise :class:`BudgetExceededError` if no
    attempt meets ``budget``."""
    best = _best_for_budget(graph, budget, restarts, seed)
    if best is None:
        # Nothing met the budget: report how close the critical-path
        # heuristic gets.
        fallback = _run_critical_path(graph, None)
        raise BudgetExceededError(fallback.length, budget)
    if budget is not None and minimize:
        obs = current_telemetry()
        while best.length > _resource_bound(graph):
            obs.count("sched.list.tightenings")
            tighter = _best_for_budget(graph, best.length - 1, restarts, seed)
            if tighter is None:
                break
            best = tighter
        best.budget = budget
    if lifetime_compaction:
        best = compact_lifetimes(graph, best)
    return best


def _resource_bound(graph: DependenceGraph) -> int:
    counts = Counter(rt.opu for rt in graph.rts)
    return max(counts.values(), default=1)


def _best_for_budget(
    graph: DependenceGraph, budget: int | None, restarts: int, seed: int
) -> Schedule | None:
    """Shortest schedule over the attempt ladder, or None if the budget
    is never met."""
    rng = random.Random(seed)
    attempts: list[Schedule] = []

    def record(schedule: Schedule | None) -> bool:
        current_telemetry().count("sched.list.attempts")
        if schedule is None:
            return False
        attempts.append(schedule)
        return budget is None or schedule.length <= budget

    if budget is None:
        record(_run_critical_path(graph, None))
    else:
        try:
            done = False
            for margin in (0, 1, 2):
                if record(_run_deadline(graph, budget, margin, None)):
                    done = True
                    break
            if not done:
                record(_run_critical_path(graph, budget))
            if not done:
                for attempt in range(restarts):
                    jitter = {rt: rng.random() * 0.9 for rt in graph.rts}
                    if record(_run_deadline(graph, budget, attempt % 3, jitter)):
                        break
        except SchedulingError:
            # Interval analysis proved the budget infeasible outright.
            return None
    if not attempts:
        return None
    best = min(attempts, key=lambda s: s.length)
    if budget is not None and best.length > budget:
        return None
    best.budget = budget
    return best


def _scheduler_loop(
    graph: DependenceGraph,
    key,
    horizon: int,
    deadline: dict[RT, int] | None,
    on_place=None,
) -> Schedule | None:
    """The shared cycle-by-cycle greedy core of both regimes."""
    predecessors: dict[RT, list] = {rt: [] for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        predecessors[edge.dst].append(edge)
        successors[edge.src].append(edge)
    pending = {rt: len(predecessors[rt]) for rt in graph.rts}
    ready = [rt for rt, n in pending.items() if n == 0]
    earliest = {rt: 0 for rt in graph.rts}
    table = ReservationTable()
    cycle_of: dict[RT, int] = {}
    length = 0
    for cycle in range(horizon + 1):
        if len(cycle_of) == len(graph.rts):
            break
        progress = True
        while progress:
            progress = False
            for rt in sorted(ready, key=lambda r: key(r, cycle)):
                if earliest[rt] > cycle:
                    continue
                if deadline is not None and cycle > deadline[rt]:
                    return None
                if not table.fits(rt, cycle):
                    continue
                table.place(rt, cycle)
                cycle_of[rt] = cycle
                length = max(length, cycle + max(rt.latency, rt.max_offset + 1))
                ready.remove(rt)
                if on_place is not None:
                    on_place(rt)
                for edge in successors[rt]:
                    pending[edge.dst] -= 1
                    earliest[edge.dst] = max(earliest[edge.dst], cycle + edge.delay)
                    if pending[edge.dst] == 0:
                        ready.append(edge.dst)
                progress = True
    if len(cycle_of) != len(graph.rts):
        return None
    return Schedule(cycle_of=cycle_of, length=length)


def _run_critical_path(
    graph: DependenceGraph, budget: int | None
) -> Schedule | None:
    priority = compute_priorities(graph)
    horizon = sum(max(1, rt.latency) for rt in graph.rts) + 1

    def key(rt: RT, cycle: int):
        return (-priority[rt], -len(rt.uses), rt.uid)

    schedule = _scheduler_loop(graph, key, horizon, None)
    if schedule is None:
        raise SchedulingError(
            "list scheduler exceeded its horizon; the conflict model is "
            "unsatisfiable"
        )
    return schedule


def _run_deadline(
    graph: DependenceGraph,
    budget: int,
    margin: int,
    jitter: dict[RT, float] | None,
) -> Schedule | None:
    intervals = execution_intervals(graph, budget)  # raises if infeasible
    critical = compute_priorities(graph)
    demand = Counter(rt.opu for rt in graph.rts)

    def key(rt: RT, cycle: int):
        remaining = budget - cycle
        forced = demand[rt.opu] >= remaining - margin
        alap = intervals[rt].alap + (jitter[rt] if jitter else 0)
        return (not forced, alap, -critical[rt], rt.uid)

    def on_place(rt: RT) -> None:
        demand[rt.opu] -= 1

    deadline = {rt: intervals[rt].alap for rt in graph.rts}
    return _scheduler_loop(graph, key, budget - 1, deadline, on_place)


def compact_lifetimes(graph: DependenceGraph, schedule: Schedule) -> Schedule:
    """Push every RT as late as possible without changing the length.

    Walking the transfers in decreasing issue cycle, each is moved to
    the latest conflict-free cycle that still satisfies its outgoing
    dependences.  Producers drift towards their consumers, shortening
    register lifetimes — important for the small distributed register
    files of the paper's cores.
    """
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        successors[edge.src].append(edge)

    cycle_of = dict(schedule.cycle_of)
    table = ReservationTable()
    for rt, cycle in cycle_of.items():
        table.place(rt, cycle)

    for rt in sorted(cycle_of, key=lambda r: -cycle_of[r]):
        latest = schedule.length - max(rt.latency, rt.max_offset + 1)
        for edge in successors[rt]:
            latest = min(latest, cycle_of[edge.dst] - edge.delay)
        current = cycle_of[rt]
        if latest <= current:
            continue
        table.remove(rt, current)
        target = current
        for candidate in range(latest, current, -1):
            if table.fits(rt, candidate):
                target = candidate
                break
        table.place(rt, target)
        cycle_of[rt] = target
    return Schedule(cycle_of=cycle_of, length=schedule.length,
                    budget=schedule.budget)
