"""Exact cycle-budgeted scheduling by branch and bound.

The scheduler the paper's future-work section sketches: branch on the
cycle of one transfer at a time, propagate execution intervals
(:mod:`repro.sched.interval`) and prune with the Timmer/Jess bipartite
matching feasibility check (:mod:`repro.sched.bipartite`).  Exponential
in the worst case; intended for small blocks and as a certainty anchor
for the heuristic schedulers in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BudgetExceededError, SchedulingError
from ..rtgen.rt import RT
from .bipartite import exclusive_groups_by_opu, resource_feasible
from .dependence import DependenceGraph
from .interval import ExecutionInterval, execution_intervals, tighten_with_decision
from .schedule import ReservationTable, Schedule


@dataclass
class ExactSchedulerStats:
    nodes_visited: int = 0
    prunes_interval: int = 0
    prunes_matching: int = 0
    prunes_resource: int = 0


def exact_schedule(
    graph: DependenceGraph,
    budget: int,
    max_nodes: int = 200_000,
    use_matching_pruning: bool = True,
) -> tuple[Schedule, ExactSchedulerStats]:
    """Find *some* schedule within ``budget`` or prove there is none.

    Raises
    ------
    BudgetExceededError
        When the search space is exhausted without a feasible schedule.
    SchedulingError
        When ``max_nodes`` search nodes were visited without an answer
        (the instance is too large for exact search).
    """
    try:
        intervals = execution_intervals(graph, budget)
    except SchedulingError as exc:
        raise BudgetExceededError(budget + 1, budget) from exc

    groups = exclusive_groups_by_opu(graph.rts)
    stats = ExactSchedulerStats()
    table = ReservationTable()
    assignment: dict[RT, int] = {}

    def pick_next(current: dict[RT, ExecutionInterval]) -> RT | None:
        """Most-constrained-first: smallest remaining interval."""
        unassigned = [rt for rt in graph.rts if rt not in assignment]
        if not unassigned:
            return None
        return min(unassigned, key=lambda rt: (current[rt].width, rt.uid))

    def search(current: dict[RT, ExecutionInterval]) -> bool:
        stats.nodes_visited += 1
        if stats.nodes_visited > max_nodes:
            raise SchedulingError(
                f"exact scheduler gave up after {max_nodes} nodes; "
                f"use the list scheduler for blocks this large"
            )
        rt = pick_next(current)
        if rt is None:
            return True
        window = current[rt]
        for cycle in range(window.asap, window.alap + 1):
            if not table.fits(rt, cycle):
                stats.prunes_resource += 1
                continue
            tightened = tighten_with_decision(current, graph, rt, cycle)
            if tightened is None:
                stats.prunes_interval += 1
                continue
            if use_matching_pruning and not resource_feasible(tightened, groups):
                stats.prunes_matching += 1
                continue
            table.place(rt, cycle)
            assignment[rt] = cycle
            if search(tightened):
                return True
            table.remove(rt, cycle)
            del assignment[rt]
        return False

    if not resource_feasible(intervals, groups):
        raise BudgetExceededError(budget + 1, budget)
    if not search(intervals):
        raise BudgetExceededError(budget + 1, budget)

    length = max(
        cycle + max(rt.latency, rt.max_offset + 1)
        for rt, cycle in assignment.items()
    )
    schedule = Schedule(cycle_of=dict(assignment), length=length, budget=budget)
    schedule.validate(graph)
    return schedule, stats
