"""Schedule representation, validation and instruction extraction."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from ..rtgen.rt import RT
from .dependence import DependenceGraph


class ReservationTable:
    """Resource/usage bookings per absolute cycle.

    Placing an RT books every ``(resource, cycle+offset)`` it uses;
    a booking is compatible when the slot is free or carries the *same*
    usage (the paper's parallelism rule).
    """

    def __init__(self):
        # (resource, cycle) -> [usage, reference count]; same-usage
        # bookings share the slot (multicast, shared register reads).
        self._slots: dict[tuple[str, int], list] = {}

    def fits(self, rt: RT, cycle: int) -> bool:
        for use in rt.uses:
            slot = self._slots.get((use.resource, cycle + use.offset))
            if slot is not None and slot[0] != use.usage:
                return False
        return True

    def place(self, rt: RT, cycle: int) -> None:
        placed: list[tuple[str, int]] = []
        for use in rt.uses:
            key = (use.resource, cycle + use.offset)
            slot = self._slots.get(key)
            if slot is not None and slot[0] != use.usage:
                for done in placed:  # roll back the partial booking
                    self._release(done)
                raise SchedulingError(
                    f"resource conflict placing {rt!r} at cycle {cycle}: "
                    f"{use.resource} already used as {slot[0]!r}, "
                    f"needs {use.usage!r}"
                )
            if slot is None:
                self._slots[key] = [use.usage, 1]
            else:
                slot[1] += 1
            placed.append(key)

    def remove(self, rt: RT, cycle: int) -> None:
        """Undo a placement (backtracking / lifetime compaction)."""
        for use in rt.uses:
            self._release((use.resource, cycle + use.offset))

    def _release(self, key: tuple[str, int]) -> None:
        slot = self._slots.get(key)
        if slot is None:
            return
        slot[1] -= 1
        if slot[1] <= 0:
            del self._slots[key]

    def usage_at(self, resource: str, cycle: int) -> str | None:
        slot = self._slots.get((resource, cycle))
        return slot[0] if slot is not None else None


@dataclass
class Schedule:
    """A complete cycle assignment for one block of RTs."""

    cycle_of: dict[RT, int]
    length: int
    budget: int | None = None

    @property
    def rts(self) -> list[RT]:
        return list(self.cycle_of)

    def instructions(self) -> list[list[RT]]:
        """RTs grouped per issue cycle — the VLIW instructions."""
        grouped: list[list[RT]] = [[] for _ in range(self.length)]
        for rt, cycle in self.cycle_of.items():
            grouped[cycle].append(rt)
        for group in grouped:
            group.sort(key=lambda r: r.uid)
        return grouped

    def resource_busy_cycles(self) -> dict[str, set[int]]:
        """resource name → cycles in which it is occupied."""
        busy: dict[str, set[int]] = {}
        for rt, cycle in self.cycle_of.items():
            for use in rt.uses:
                busy.setdefault(use.resource, set()).add(cycle + use.offset)
        return busy

    def opu_busy_cycles(self) -> dict[str, set[int]]:
        """OPU name → cycles in which it executes an operation."""
        busy: dict[str, set[int]] = {}
        for rt, cycle in self.cycle_of.items():
            busy.setdefault(rt.opu, set()).add(cycle)
        return busy

    def validate(self, graph: DependenceGraph) -> None:
        """Re-check every constraint from scratch (tests lean on this)."""
        table = ReservationTable()
        for rt, cycle in self.cycle_of.items():
            if cycle < 0:
                raise SchedulingError(f"{rt!r} scheduled at negative cycle")
            if cycle + rt.max_offset >= self.length:
                raise SchedulingError(
                    f"{rt!r} at cycle {cycle} spills past the schedule "
                    f"length {self.length}"
                )
            table.place(rt, cycle)  # raises on usage conflicts
        for rt in graph.rts:
            if rt not in self.cycle_of:
                raise SchedulingError(f"{rt!r} was never scheduled")
        for edge in graph.edges:
            if edge.distance != 0:
                continue
            src, dst = self.cycle_of[edge.src], self.cycle_of[edge.dst]
            if dst < src + edge.delay:
                raise SchedulingError(
                    f"dependence violated: {edge.dst!r} at {dst} before "
                    f"{edge.src!r}+{edge.delay} ({edge.kind.value})"
                )
        if self.budget is not None and self.length > self.budget:
            raise SchedulingError(
                f"schedule length {self.length} exceeds budget {self.budget}"
            )
