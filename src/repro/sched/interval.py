"""Execution interval analysis (paper, section 8 / Timmer & Jess [11]).

"A promising technique is being developed using execution interval
analysis to prune the search space of the scheduler."

Given a cycle budget, every RT gets an execution interval
``[ASAP, ALAP]`` from longest-path analysis over the dependence graph.
Empty intervals prove infeasibility outright; tight intervals prune the
exact scheduler's branching and drive the bipartite matching check of
:mod:`repro.sched.bipartite`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from ..rtgen.rt import RT
from .dependence import DependenceGraph


@dataclass(frozen=True)
class ExecutionInterval:
    asap: int
    alap: int

    @property
    def width(self) -> int:
        return self.alap - self.asap + 1

    def contains(self, cycle: int) -> bool:
        return self.asap <= cycle <= self.alap


def execution_intervals(
    graph: DependenceGraph, budget: int
) -> dict[RT, ExecutionInterval]:
    """ASAP/ALAP windows under ``budget``; raises if already infeasible."""
    if budget < 1:
        raise SchedulingError(f"cycle budget must be >= 1, got {budget}")
    order = _topological(graph)
    predecessors: dict[RT, list] = {rt: [] for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        predecessors[edge.dst].append(edge)
        successors[edge.src].append(edge)

    asap: dict[RT, int] = {}
    for rt in order:
        asap[rt] = max(
            (asap[e.src] + e.delay for e in predecessors[rt]), default=0
        )
    alap: dict[RT, int] = {}
    for rt in reversed(order):
        latest_finish = budget - max(rt.latency, rt.max_offset + 1)
        alap[rt] = min(
            (alap[e.dst] - e.delay for e in successors[rt]),
            default=latest_finish,
        )

    intervals: dict[RT, ExecutionInterval] = {}
    for rt in graph.rts:
        if asap[rt] > alap[rt]:
            raise SchedulingError(
                f"{rt!r} has an empty execution interval "
                f"[{asap[rt]}, {alap[rt]}] under budget {budget}: the "
                f"critical path does not fit"
            )
        intervals[rt] = ExecutionInterval(asap[rt], alap[rt])
    return intervals


def tighten_with_decision(
    intervals: dict[RT, ExecutionInterval],
    graph: DependenceGraph,
    rt: RT,
    cycle: int,
) -> dict[RT, ExecutionInterval] | None:
    """Intervals after fixing ``rt`` at ``cycle`` (None if infeasible).

    One propagation sweep: successors' ASAPs and predecessors' ALAPs
    move; the sweep iterates to a fixpoint (graphs are small).
    """
    if not intervals[rt].contains(cycle):
        return None
    updated = dict(intervals)
    updated[rt] = ExecutionInterval(cycle, cycle)
    changed = True
    while changed:
        changed = False
        for edge in graph.edges:
            if edge.distance != 0:
                continue
            src, dst = updated[edge.src], updated[edge.dst]
            new_asap = max(dst.asap, src.asap + edge.delay)
            new_alap = min(src.alap, dst.alap - edge.delay)
            if new_asap > dst.alap or new_alap < src.asap:
                return None
            if new_asap != dst.asap:
                updated[edge.dst] = ExecutionInterval(new_asap, dst.alap)
                changed = True
            if new_alap != src.alap:
                updated[edge.src] = ExecutionInterval(updated[edge.src].asap, new_alap)
                changed = True
    return updated


def _topological(graph: DependenceGraph) -> list[RT]:
    indegree: dict[RT, int] = {rt: 0 for rt in graph.rts}
    successors: dict[RT, list] = {rt: [] for rt in graph.rts}
    for edge in graph.edges:
        if edge.distance != 0:
            continue
        indegree[edge.dst] += 1
        successors[edge.src].append(edge)
    stack = [rt for rt, n in indegree.items() if n == 0]
    order: list[RT] = []
    while stack:
        rt = stack.pop()
        order.append(rt)
        for edge in successors[rt]:
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                stack.append(edge.dst)
    if len(order) != len(graph.rts):
        raise SchedulingError("dependence cycle within one iteration")
    return order
