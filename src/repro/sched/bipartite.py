"""Bipartite matching feasibility pruning (Timmer & Jess, EDAC'95 [11]).

The paper's future-work citation: "Exact Scheduling Strategies based on
Bipartite Graph Matching".  The idea: the RTs executing on one
exclusive resource (an OPU) must occupy pairwise different cycles, each
within its execution interval — a bipartite matching between transfers
and cycles.  If no perfect matching exists, the partial schedule is
infeasible and the branch can be pruned long before the conflict
actually materialises.

For interval-structured bipartite graphs, Hall's condition reduces to a
window check: for every cycle window ``[a, b]``, the number of
transfers whose whole interval lies inside must not exceed the window's
capacity.  We also provide an explicit Hopcroft-Karp matching (used by
tests as an oracle and by callers that want the witness assignment).
"""

from __future__ import annotations

from collections import deque

from ..rtgen.rt import RT
from .interval import ExecutionInterval


def hall_window_check(intervals: list[ExecutionInterval]) -> bool:
    """Unit-job feasibility on one exclusive resource.

    True iff every window [a, b] contains at most ``b - a + 1`` whole
    intervals — by Hall's theorem, exactly when a perfect matching of
    transfers to distinct cycles exists.
    """
    if not intervals:
        return True
    starts = sorted({i.asap for i in intervals})
    ends = sorted({i.alap for i in intervals})
    for a in starts:
        inside = [i for i in intervals if i.asap >= a]
        for b in ends:
            if b < a:
                continue
            count = sum(1 for i in inside if i.alap <= b)
            if count > b - a + 1:
                return False
    return True


def maximum_matching(
    intervals: dict[RT, ExecutionInterval]
) -> dict[RT, int]:
    """Hopcroft-Karp matching of transfers to cycles (witness schedule).

    Returns a maximum matching; it is perfect iff its size equals the
    number of transfers.
    """
    rts = list(intervals)
    cycles = sorted({
        c for interval in intervals.values()
        for c in range(interval.asap, interval.alap + 1)
    })
    cycle_index = {c: i for i, c in enumerate(cycles)}
    adjacency: list[list[int]] = [
        [cycle_index[c] for c in range(intervals[rt].asap, intervals[rt].alap + 1)]
        for rt in rts
    ]
    match_rt: list[int | None] = [None] * len(rts)
    match_cycle: list[int | None] = [None] * len(cycles)
    INF = float("inf")

    def bfs() -> bool:
        distance = [INF] * len(rts)
        queue = deque()
        for u, matched in enumerate(match_rt):
            if matched is None:
                distance[u] = 0
                queue.append(u)
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_cycle[v]
                if w is None:
                    found = True
                elif distance[w] is INF:
                    distance[w] = distance[u] + 1
                    queue.append(w)
        bfs.distance = distance  # type: ignore[attr-defined]
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_cycle[v]
            if w is None or (
                bfs.distance[w] == bfs.distance[u] + 1 and dfs(w)  # type: ignore[attr-defined]
            ):
                match_rt[u] = v
                match_cycle[v] = u
                return True
        bfs.distance[u] = INF  # type: ignore[attr-defined]
        return False

    while bfs():
        for u in range(len(rts)):
            if match_rt[u] is None:
                dfs(u)
    return {
        rts[u]: cycles[v]
        for u, v in enumerate(match_rt)
        if v is not None
    }


def resource_feasible(
    intervals: dict[RT, ExecutionInterval],
    exclusive_groups: dict[str, list[RT]],
) -> bool:
    """Check every exclusive resource group with the Hall window test.

    ``exclusive_groups`` maps a resource (OPU) name to the transfers
    needing it exclusively; within one group each cycle can host at
    most one transfer.
    """
    for rts in exclusive_groups.values():
        if not hall_window_check([intervals[rt] for rt in rts]):
            return False
    return True


def exclusive_groups_by_opu(rts: list[RT]) -> dict[str, list[RT]]:
    """Group transfers by executing OPU — the natural exclusive resource."""
    groups: dict[str, list[RT]] = {}
    for rt in rts:
        groups.setdefault(rt.opu, []).append(rt)
    return groups
