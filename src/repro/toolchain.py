"""The ``Toolchain`` facade: one core + one option set, bound once.

The public face of the retargetable code generator.  A
:class:`Toolchain` binds the three things every compilation needs — a
target core (a :class:`~repro.arch.library.CoreSpec` or a registered
name, see :mod:`repro.arch.registry`), a validated
:class:`~repro.options.CompileOptions`, and a stage cache — and then
every verb is a method::

    from repro import CompileOptions, Toolchain

    toolchain = Toolchain("audio", CompileOptions(budget=64, opt=2))
    program = toolchain.compile(source_text)        # CompiledProgram
    outputs = toolchain.run(source_text, {"i": samples})
    result = toolchain.compile_many(sources)        # BatchResult
    sweep = toolchain.explore(sources, spec, refine=True)

The facade *is* the engine: the stage-chain driver lives here, and the
pre-Toolchain entry points (:func:`repro.pipeline.compile_application`,
``CompileSession``, ``BatchSession``) are thin deprecated wrappers
over it.  By default a toolchain owns a two-tier stage cache (memory
LRU over the persistent on-disk store, honoring
``options.cache_dir``/``options.disk_cache``); pass ``cache=None`` for
the classic cold path or share one :class:`StageCache` between
toolchains to reuse artifacts across them.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from .arch.library import CoreSpec
from .arch.merge import MergeSpec
from .arch.registry import resolve_core
from .errors import ReproError
from .lang.dfg import Dfg
from .obs import Telemetry, current_telemetry, use_telemetry
from .options import CompileOptions
from .pipeline.artifacts import CompileRequest, CompileState
from .pipeline.backend import open_backend
from .pipeline.program import CompiledProgram
from .pipeline.session import (
    _DEFAULT_CACHE,
    BatchEntry,
    BatchResult,
    StageCache,
    _DefaultCache,
)
from .pipeline.stages import PIPELINE_STAGES


class Toolchain:
    """A core + options + cache, bound once; every compiler verb after.

    Parameters
    ----------
    core:
        The target: a :class:`CoreSpec`, a registered core name
        (``"audio"``, ``"fir"``, ... — see
        :func:`repro.arch.registry.list_cores`) or a path to a JSON
        core description.
    options:
        The compile knobs; defaults to ``CompileOptions()``.  Extra
        keyword arguments are option-field overrides, so
        ``Toolchain("audio", budget=64)`` is shorthand for
        ``Toolchain("audio", CompileOptions(budget=64))``.
    cache:
        ``None`` disables caching (no snapshot cost — the classic
        one-shot path); a shared :class:`StageCache` reuses artifacts
        across toolchains.  By default the toolchain owns a private
        cache, disk-backed per ``options.disk_cache``/``cache_dir``.
    telemetry:
        A :class:`repro.obs.Telemetry` this toolchain's verbs report
        spans/counters/events to; ``None`` (the default) reports to the
        process-wide registry (:func:`repro.obs.current_telemetry` —
        the disabled null registry unless one was installed), so
        instrumentation costs nothing until observability is wanted.
    """

    def __init__(
        self,
        core: CoreSpec | str,
        options: CompileOptions | None = None,
        *,
        cache: StageCache | None | _DefaultCache = _DEFAULT_CACHE,
        telemetry: Telemetry | None = None,
        **option_fields: Any,
    ):
        options = options if options is not None else CompileOptions()
        if option_fields:
            options = options.replace(**option_fields)
        self.core: CoreSpec = resolve_core(core)
        self.options: CompileOptions = options
        self.cache: StageCache | None = (
            self._default_cache() if isinstance(cache, _DefaultCache)
            else cache
        )
        self.telemetry: Telemetry | None = telemetry
        self.stages = PIPELINE_STAGES
        #: Lazily-built default candidate memo for :meth:`explore`,
        #: kept on the instance so repeated sweeps reuse evaluations.
        self._explore_cache = None

    def _obs(self) -> Telemetry:
        """The registry this toolchain reports to: the bound one, else
        whatever is currently installed process-wide."""
        return self.telemetry if self.telemetry is not None \
            else current_telemetry()

    def _default_cache(self) -> StageCache:
        if self.options.disk_cache:
            # cache_dir is a *backend spec*: a directory path (or None
            # for the default DiskCache placement), or "memory:<name>"
            # for a process-shared in-memory backend.
            return StageCache(disk=open_backend(self.options.cache_dir))
        return StageCache()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Toolchain(core={self.core.name!r}, "
                f"options={self.options!r})")

    def replace(
        self,
        *,
        core: CoreSpec | str | None = None,
        options: CompileOptions | None = None,
        cache: StageCache | None | _DefaultCache = _DEFAULT_CACHE,
        **option_fields: Any,
    ) -> "Toolchain":
        """A toolchain variant *sharing this one's cache*: same core
        unless overridden, options replaced field-wise.  The shared
        cache is the point — retargeting or re-budgeting reuses every
        artifact the change does not invalidate.

        Exception: when the cache *placement* fields change
        (``disk_cache``/``cache_dir``) and no explicit ``cache`` is
        given, the variant builds a fresh default cache honoring the
        new placement — sharing the old one would silently ignore the
        change.  A ``cache=None`` toolchain stays uncached regardless:
        the user opted out of caching entirely, and placement fields
        have nothing to place."""
        new_options = options if options is not None else self.options
        if option_fields:
            new_options = new_options.replace(**option_fields)
        if isinstance(cache, _DefaultCache):
            placement_changed = (
                new_options.disk_cache != self.options.disk_cache
                or new_options.cache_dir != self.options.cache_dir
            )
            if self.cache is None or not placement_changed:
                cache = self.cache
        return Toolchain(self.core if core is None else core, new_options,
                         cache=cache, telemetry=self.telemetry)

    # ------------------------------------------------------------------
    # The engine: the stage-chain driver

    def run_pipeline(
        self,
        application: Dfg | str,
        *,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
    ) -> CompileState:
        """Run the stage chain, honoring ``options.stop_after``.

        Returns the :class:`CompileState` with every artifact produced
        so far.  With a cache attached, each stage consults its content
        key first: a later run whose chain reaches the same key
        restores the snapshot instead of recomputing — that is what
        makes re-compiles, partial-then-full resumption and cross-
        process warm starts cheap.
        """
        request = CompileRequest(
            application=application, core=self.core, options=self.options,
            io_binding=io_binding, merges=merges,
        )
        state = CompileState(request=request)
        shared = {id(self.core): self.core}
        obs = self._obs()
        app_name = (application.name if isinstance(application, Dfg)
                    else None)
        with use_telemetry(obs), \
                obs.span("compile", core=self.core.name,
                         application=app_name):
            for stage in self.stages:
                if self.cache is None:
                    stage.execute(state)
                    state.completed.append(stage.name)
                    self._verify_boundary(stage.name, state, obs)
                else:
                    key = stage.key(state)
                    state.fingerprints[stage.name] = key
                    # One span covers the whole stage slot — lookup,
                    # then restore *or* execute-and-store
                    # (Stage.execute joins this span rather than
                    # nesting a duplicate) — so the cache tiers' deep-
                    # copy costs are attributed to the stage that pays
                    # them and the tree fully accounts the compile.
                    with obs.span(f"stage:{stage.name}",
                                  stage=stage.name,
                                  fingerprint=key[:16]) as span:
                        restored, source = self.cache.get_entry(
                            key, shared)
                        if restored is not None:
                            span.tag(cache_source=source)
                            state.artifacts = restored
                            state.cache_hits[stage.name] = True
                            state.cache_sources[stage.name] = source
                        else:
                            stage.execute(state)
                            state.cache_hits[stage.name] = False
                            self.cache.put(key, state.artifacts, shared)
                    state.completed.append(stage.name)
                    self._verify_boundary(stage.name, state, obs)
                if stage.name == self.options.stop_after:
                    break
        return state

    def _verify_boundary(self, stage_name: str, state: CompileState,
                         obs: Telemetry) -> None:
        """Run the stage verifier behind ``options.verify``.

        Cache-restored stages are verified exactly like executed ones —
        a poisoned cache entry is precisely the kind of corruption a
        verifier exists to catch.  Error findings raise
        :class:`~repro.errors.VerificationError`; warnings only count.
        """
        if self.options.verify == "off":
            return
        from .analyze import enforce, verify_stage

        findings = verify_stage(stage_name, state,
                                strict=self.options.verify == "strict")
        if findings is None:
            return
        obs.count("verify.checks")
        if findings:
            obs.count("verify.findings", len(findings))
        enforce(findings, f"after stage {stage_name!r}")

    # ------------------------------------------------------------------
    # Verbs

    def compile(
        self,
        application: Dfg | str,
        *,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
    ) -> CompiledProgram:
        """Compile one application (source text or DFG) to microcode.

        Always runs the full chain — a configured ``stop_after`` is
        ignored here (use :meth:`run_pipeline` for partial compiles).
        """
        toolchain = self
        if self.options.stop_after is not None:
            toolchain = self.replace(options=self.options.replace(
                stop_after=None))
        return toolchain.run_pipeline(
            application, io_binding=io_binding, merges=merges,
        ).as_compiled()

    def compile_many(
        self,
        applications: Sequence[Dfg | str],
        *,
        names: Sequence[str] | None = None,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
    ) -> BatchResult:
        """Compile an application set through this toolchain's cache.

        Identical prefixes across the batch — duplicated sources, the
        same application under two option sets in sibling toolchains
        sharing a cache — are computed once and restored everywhere
        else.  A failing application does not abort the batch: its
        error lands on the :class:`BatchEntry`, the rest still compile.
        Honors ``options.stop_after`` (entries then hold partial
        states).
        """
        if names is not None and len(names) != len(applications):
            raise ValueError(
                f"{len(names)} names for {len(applications)} applications"
            )
        result = BatchResult()
        obs = self._obs()
        batch_start = time.perf_counter()
        with use_telemetry(obs), \
                obs.span("batch", core=self.core.name,
                         applications=len(applications)):
            for index, application in enumerate(applications):
                if names is not None:
                    name = names[index]
                elif isinstance(application, Dfg):
                    name = application.name
                else:
                    name = f"app[{index}]"
                start = time.perf_counter()
                entry = BatchEntry(name=name)
                try:
                    entry.state = self.run_pipeline(
                        application, io_binding=io_binding, merges=merges)
                except ReproError as exc:
                    entry.error = f"{type(exc).__name__}: {exc}"
                entry.seconds = time.perf_counter() - start
                result.entries.append(entry)
        result.seconds = time.perf_counter() - batch_start
        return result

    def run(
        self,
        application: Dfg | str,
        inputs: dict[str, list[int]] | list[dict[str, list[int]]],
        n_frames: int | None = None,
        *,
        io_binding: dict[str, str] | None = None,
        merges: MergeSpec | None = None,
        engine: str = "auto",
    ) -> dict[str, list[int]] | list[dict[str, list[int]]]:
        """Compile and execute on the cycle-accurate core simulator.

        ``inputs`` is either one stream dict (returns one output dict)
        or a *batch* — a list of stream dicts, one per stimulus lane —
        in which case the decoded/numpy batch engines step every lane
        through one compiled binary and a list of output dicts comes
        back, in lane order.  ``engine`` picks the execution tier (see
        :func:`repro.sim.batch.resolve_engine`); the simulator emits
        the ``simulate`` span itself, tagged with the engine it chose.
        """
        obs = self._obs()
        with use_telemetry(obs), \
                obs.span("run", core=self.core.name):
            compiled = self.compile(application, io_binding=io_binding,
                                    merges=merges)
            if isinstance(inputs, dict):
                return compiled.run(inputs, n_frames, engine=engine)
            return compiled.run_batch(inputs, n_frames, engine=engine)

    def explore(
        self,
        applications: Iterable[Dfg | str],
        spec,
        *,
        jobs: int | None = None,
        refine: bool = False,
        axes: tuple[str, ...] | None = None,
        cache=_DEFAULT_CACHE,
        progress=None,
    ):
        """Design-space exploration under this toolchain's options.

        ``spec`` is a :class:`~repro.arch.explore.SweepSpec` (or a
        plain allocation list when ``refine`` is off).  The sweep uses
        the bound ``budget``/``opt``, and its candidate memo mirrors
        the stage cache's actual backing: a disk-backed toolchain
        memoizes into *the same* persistent store, a memory-only one
        memoizes in memory, and a ``cache=None`` toolchain runs
        unmemoized (a refined sweep then uses a transient in-call memo
        only, so its two phases never evaluate a candidate twice).
        Pass ``cache=ExploreCache(...)`` explicitly to override.  The
        bound *core* is deliberately not used: exploration synthesizes
        its own intermediate candidates (phase 1 of the paper).

        ``progress`` is an optional callable invoked once per evaluated
        candidate with a dict (``allocation``, ``feasible``, ``cached``,
        ``done``, ``total``) — the same payload the telemetry registry
        records as ``explore.candidate`` events.

        Returns a :class:`~repro.arch.explore.RefinedSweep` when
        ``refine`` is on, else the list of
        :class:`~repro.arch.explore.ExplorationPoint`.
        """
        from .arch.explore import (
            ExploreCache,
            SweepSpec,
            explore,
            explore_refined,
        )
        from .lang.parser import parse_source

        dfgs = [parse_source(app) if isinstance(app, str) else app
                for app in applications]
        if isinstance(cache, _DefaultCache):
            if self.cache is None:
                # Unmemoized; refined sweeps still need a memo for the
                # coarse/fine phases to share, so give them a
                # transient one scoped to this call.
                cache = ExploreCache() if refine else None
            else:
                if self._explore_cache is None:
                    self._explore_cache = ExploreCache(disk=self.cache.disk)
                cache = self._explore_cache
        obs = self._obs()
        with use_telemetry(obs), \
                obs.span("explore", applications=len(dfgs), refine=refine):
            if refine:
                if not isinstance(spec, SweepSpec):
                    raise ValueError("refine=True needs a SweepSpec")
                return explore_refined(dfgs, spec, options=self.options,
                                       jobs=jobs, cache=cache, axes=axes,
                                       progress=progress)
            if axes is not None:
                raise ValueError(
                    "axes= only applies to refine=True sweeps; compute "
                    "pareto_front(points, axes=...) over the returned "
                    "points instead")
            allocations = (spec.allocations() if isinstance(spec, SweepSpec)
                           else list(spec))
            return explore(dfgs, allocations, options=self.options,
                           jobs=jobs, cache=cache, progress=progress)
