"""Operation-to-OPU binding and IO port binding.

The paper's RT generator (reused from Piramid/Cathedral-2) assigns
every dataflow operation to an operation unit before the transfers are
built.  On cores with a single unit per operation kind (the audio core)
binding is forced; where alternatives exist the binder balances the
estimated load, since every OPU is a 1-per-cycle resource and the cycle
budget is tight.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.library import CoreSpec
from ..arch.opu import Opu, OpuKind
from ..errors import BindingError
from ..lang.dfg import Dfg, Node, NodeKind


@dataclass
class Binding:
    """Complete binding of a DFG onto a core's datapath."""

    operation_opu: dict[int, str]       # OP node id -> OPU name
    input_opu: dict[str, str]           # input port name -> INPUT OPU
    output_opu: dict[str, str]          # output port name -> OUTPUT OPU
    state_ram: dict[str, str]           # state name -> RAM holding it
    ram_acu: dict[str, str]             # RAM name -> its address ACU
    rom_opu: str | None                 # coefficient ROM (None: use consts)
    const_opu: str | None               # program-constant unit

    @property
    def rams(self) -> list[str]:
        """RAM OPUs actually holding state, in deterministic order."""
        seen: list[str] = []
        for ram in self.state_ram.values():
            if ram not in seen:
                seen.append(ram)
        return sorted(seen)

    def opu_of_node(self, node: Node) -> str:
        if node.kind is NodeKind.OP:
            return self.operation_opu[node.id]
        if node.kind is NodeKind.INPUT:
            return self.input_opu[node.name]
        if node.kind is NodeKind.OUTPUT:
            return self.output_opu[node.name]
        if node.kind in (NodeKind.DELAY, NodeKind.STATE_WRITE):
            return self.state_ram[node.name]
        if node.kind is NodeKind.PARAM:
            opu = self.rom_opu if self.rom_opu is not None else self.const_opu
            assert opu is not None
            return opu
        raise BindingError(f"cannot bind node kind {node.kind}")


def bind(dfg: Dfg, core: CoreSpec, io_binding: dict[str, str] | None = None,
         live: set[int] | None = None) -> Binding:
    """Bind every DFG node to an OPU of ``core``.

    Parameters
    ----------
    io_binding:
        Explicit port-name → OPU-name assignments for IO ports.  Ports
        not mentioned are assigned round-robin over the matching OPU
        kind in declaration order.
    live:
        Node ids to bind (dead nodes are skipped); defaults to all.
    """
    dp = core.datapath
    io_binding = dict(io_binding or {})

    inputs = [o for o in dp.opus.values() if o.kind is OpuKind.INPUT]
    outputs = [o for o in dp.opus.values() if o.kind is OpuKind.OUTPUT]
    rams = [o for o in dp.opus.values() if o.kind is OpuKind.RAM]
    roms = [o for o in dp.opus.values() if o.kind is OpuKind.ROM]
    acus = [o for o in dp.opus.values() if o.kind is OpuKind.ACU]
    consts = [o for o in dp.opus.values() if o.kind is OpuKind.CONST]

    input_opu = _bind_ports(dfg.inputs, inputs, io_binding, "input")
    output_opu = _bind_ports(dfg.outputs, outputs, io_binding, "output")

    live_states = {
        n.name for n in dfg.nodes
        if n.kind in (NodeKind.DELAY, NodeKind.STATE_WRITE)
        and (live is None or n.id in live)
    }
    if live_states and not rams:
        raise BindingError(
            f"application {dfg.name!r} has delayed state but core "
            f"{core.name!r} has no RAM"
        )
    if live_states and not acus:
        raise BindingError(
            f"application {dfg.name!r} needs RAM addressing but core "
            f"{core.name!r} has no ACU"
        )
    # Partition delay-line state round-robin over the data memories;
    # each memory gets its own address unit (the X/Y dual-memory style:
    # address generation is per memory port), so only as many memories
    # can hold state as there are ACUs to drive them.
    state_ram: dict[str, str] = {}
    ram_acu: dict[str, str] = {}
    if live_states:
        usable = rams[:len(acus)]
        for index, state in enumerate(sorted(live_states)):
            state_ram[state] = usable[index % len(usable)].name
        for index, ram in enumerate(usable):
            ram_acu[ram.name] = acus[index].name
    needs_params = any(
        n.kind is NodeKind.PARAM and (live is None or n.id in live)
        for n in dfg.nodes
    )
    if needs_params and not roms and not consts:
        raise BindingError(
            f"application {dfg.name!r} has coefficients but core "
            f"{core.name!r} has neither a ROM nor a constant unit"
        )
    if roms and not consts:
        raise BindingError(
            f"core {core.name!r} has a ROM but no constant unit to "
            f"generate its addresses"
        )

    load: dict[str, int] = {name: 0 for name in dp.opus}
    operation_opu: dict[int, str] = {}
    for node in dfg.nodes:
        if node.kind is not NodeKind.OP:
            continue
        if live is not None and node.id not in live:
            continue
        candidates = dp.opus_supporting(node.name)
        if not candidates:
            raise BindingError(
                f"no OPU of core {core.name!r} supports operation "
                f"{node.name!r} (node n{node.id})"
            )
        # Keep dataflow operations off the address/constant machinery
        # unless nothing else can run them.
        preferred = [
            c for c in candidates
            if c.kind not in (OpuKind.ACU, OpuKind.CONST, OpuKind.ROM)
        ] or candidates
        chosen = min(preferred, key=lambda o: load[o.name])
        load[chosen.name] += 1
        operation_opu[node.id] = chosen.name

    return Binding(
        operation_opu=operation_opu,
        input_opu=input_opu,
        output_opu=output_opu,
        state_ram=state_ram,
        ram_acu=ram_acu,
        rom_opu=roms[0].name if roms else None,
        const_opu=consts[0].name if consts else None,
    )


def _bind_ports(
    ports: list[str],
    opus: list[Opu],
    explicit: dict[str, str],
    which: str,
) -> dict[str, str]:
    binding: dict[str, str] = {}
    available = [o.name for o in opus]
    for index, port in enumerate(ports):
        if port in explicit:
            if explicit[port] not in available:
                raise BindingError(
                    f"{which} port {port!r} bound to unknown {which} OPU "
                    f"{explicit[port]!r}"
                )
            binding[port] = explicit[port]
        else:
            if not available:
                raise BindingError(
                    f"application uses {which} port {port!r} but the core "
                    f"has no {which} port blocks"
                )
            binding[port] = available[index % len(available)]
    return binding
