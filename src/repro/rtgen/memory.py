"""Delay-line memory layout and address generation.

Delayed signals (``u@2``) live in RAM; "the register files support
single cycle random read and random write" but bulk state does not fit
in them.  The audio core addresses RAM through the ACU's ``addmod``
operation — modulo arithmetic for circular buffers — and figure 9 shows
exactly one ACU operation per RAM access plus one extra per loop
iteration.  The layout below reproduces that profile.

Frame-interleaved circular layout
---------------------------------
Let ``S`` be the number of states and ``W`` the window depth
(``max(depth) + 1``).  State ``s`` (index ``i_s``) written at frame
``f`` occupies slot::

    (f mod W) * S + i_s

All addresses are generated from a single *frame pointer* register
``fp = (f mod W) * S`` with one ``addmod`` each::

    read  s@k : addr = (fp + ((i_s - k*S) mod M)) mod M
    write s   : addr = (fp + i_s) mod M            with M = W * S

and the pointer advances once per iteration: ``fp = (fp + S) mod M``.
Hence #ACU = #RAM + 1, matching the published occupation distribution.
No two distinct accesses of one frame ever touch the same slot, so the
scheduler needs no intra-iteration memory ordering edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RoutingError
from ..lang.dfg import Dfg, StateSpec


@dataclass(frozen=True)
class MemoryLayout:
    """Placement of all delay-line state in one circular RAM region."""

    state_index: dict[str, int]
    n_states: int
    window: int
    modulus: int

    @staticmethod
    def for_dfg(dfg: Dfg, ram_size: int) -> "MemoryLayout":
        return MemoryLayout.for_states(
            sorted(dfg.states.values(), key=lambda s: s.name), ram_size
        )

    @staticmethod
    def for_states(states: list[StateSpec], ram_size: int) -> "MemoryLayout":
        """Layout for the given states in one memory (multi-RAM cores
        call this once per data memory with its partition)."""
        states = sorted(states, key=lambda s: s.name)
        n_states = len(states)
        window = max((s.depth for s in states), default=0) + 1
        modulus = window * n_states
        if modulus > ram_size:
            raise RoutingError(
                f"delay-line state needs {modulus} RAM words "
                f"({n_states} states x window {window}) but the core has "
                f"only {ram_size}"
            )
        index = {s.name: i for i, s in enumerate(states)}
        return MemoryLayout(
            state_index=index,
            n_states=n_states,
            window=window,
            modulus=max(modulus, 1),
        )

    # -- immediates for the ACU -------------------------------------------

    def read_offset(self, state: str, delay: int) -> int:
        """``addmod`` immediate for reading ``state@delay``."""
        index = self._index(state)
        return (index - delay * self.n_states) % self.modulus

    def write_offset(self, state: str) -> int:
        """``addmod`` immediate for writing this frame's value of ``state``."""
        return self._index(state)

    def advance_offset(self) -> int:
        """``addmod`` immediate for the once-per-frame pointer advance."""
        return self.n_states

    # -- concrete addresses (simulator / checks) ---------------------------

    def slot(self, state: str, frame: int) -> int:
        """Absolute RAM slot holding ``state`` written at ``frame``."""
        return (frame % self.window) * self.n_states + self._index(state)

    def frame_pointer(self, frame: int) -> int:
        return (frame % self.window) * self.n_states

    def _index(self, state: str) -> int:
        try:
            return self.state_index[state]
        except KeyError:
            raise RoutingError(f"state {state!r} has no memory layout") from None


@dataclass(frozen=True)
class RomLayout:
    """Placement of quantised coefficients in the program ROM."""

    address: dict[str, int]
    words: tuple[int, ...]

    @staticmethod
    def for_params(param_values: dict[str, int], rom_size: int) -> "RomLayout":
        names = sorted(param_values)
        if len(names) > rom_size:
            raise RoutingError(
                f"{len(names)} coefficients do not fit in a {rom_size}-word ROM"
            )
        address = {name: i for i, name in enumerate(names)}
        words = tuple(param_values[name] for name in names)
        return RomLayout(address=address, words=words)
