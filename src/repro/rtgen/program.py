"""The RT program: output of RT generation, input of everything else.

An :class:`RTProgram` is the paper's intermediate representation after
step 1 (figure 1b): a bag of register transfers over virtual values,
plus the bookkeeping the later phases need — loop-carried values, the
delay-line memory layout, the coefficient ROM image and the ACU modulo
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.library import CoreSpec
from ..lang.dfg import Dfg
from .memory import MemoryLayout, RomLayout
from .rt import RT


@dataclass(frozen=True)
class LoopCarry:
    """A value that survives into the next time-loop iteration.

    ``old`` is the value id read by this iteration (live-in), ``new``
    the id produced for the next one.  Both are pinned to the same
    physical register of ``register_file``; the scheduler adds
    write-after-read edges so the new value never overwrites the old
    one while readers remain.
    """

    register_file: str
    register: int
    old: int
    new: int
    initial: int = 0   # machine start-up value of the pinned register


@dataclass
class RTProgram:
    """All register transfers of one time-loop body."""

    core: CoreSpec
    dfg: Dfg
    rts: list[RT]
    loop_carries: list[LoopCarry] = field(default_factory=list)
    #: data memory (RAM name) -> layout of the states it holds
    memories: dict[str, MemoryLayout] = field(default_factory=dict)
    #: ACU name -> its modulo-register configuration
    acu_moduli: dict[str, int] = field(default_factory=dict)
    rom: RomLayout | None = None
    value_names: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def memory(self) -> MemoryLayout | None:
        """The single data memory's layout (convenience for the common
        one-RAM cores); None when stateless, error when multi-RAM."""
        if not self.memories:
            return None
        if len(self.memories) > 1:
            raise ValueError(
                "program uses several data memories; inspect .memories"
            )
        return next(iter(self.memories.values()))

    def producers(self) -> dict[int, RT]:
        """Virtual value id → producing RT (multicast counts once)."""
        table: dict[int, RT] = {}
        for rt in self.rts:
            for dest in rt.destinations:
                table.setdefault(dest.value, rt)
        return table

    def live_in_values(self) -> dict[int, LoopCarry]:
        return {carry.old: carry for carry in self.loop_carries}

    def loop_new_values(self) -> dict[int, LoopCarry]:
        return {carry.new: carry for carry in self.loop_carries}

    def opu_histogram(self) -> dict[str, int]:
        """RT count per OPU — the raw material of figure 9."""
        histogram: dict[str, int] = {}
        for rt in self.rts:
            histogram[rt.opu] = histogram.get(rt.opu, 0) + 1
        return histogram

    def value_name(self, value: int) -> str:
        return self.value_names.get(value, f"v{value}")

    def pretty(self) -> str:
        """All RTs in the paper's concrete syntax."""
        return "\n\n".join(rt.pretty() for rt in self.rts)
