"""RT generation: lower a DFG onto a core as register transfers.

This is step 1 of the paper's compiler (figure 1b), rebuilt from
scratch over our datapath model.  For every live DFG node it emits the
RT(s) realising it:

==================  =====================================================
DFG node            register transfers
==================  =====================================================
INPUT               ``ipb.read`` → consumer register files
PARAM (ROM core)    ``prg_c.const #addr`` → ROM address register, then
                    ``rom.const`` → coefficient register
PARAM (no ROM)      ``prg_c.const #value`` → consumer register files
DELAY s@k           ``acu.addmod fp,#off`` → address register, then
                    ``ram.read`` → consumer register files
OP                  one RT on the bound OPU
STATE_WRITE s       ``acu.addmod fp,#off`` then ``ram.write``
OUTPUT              ``opb.write``
(per iteration)     ``acu.addmod fp,#S`` — frame-pointer advance
==================  =====================================================

Data routing: a value is written (multicast, one bus occupation) into
every register file its consumers read.  When the producer's bus does
not reach a required file, a single-hop *copy* through a pass-capable
OPU is inserted — the "data routing" repair of the Cathedral school
[Lanneer et al.].  If no copier exists either, a
:class:`~repro.errors.RoutingError` asks the user to rewrite the source
or extend the core, which is exactly the design iteration the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.datapath import Datapath, Route
from ..arch.library import CoreSpec
from ..arch.opu import Operation, Opu
from ..errors import RoutingError
from ..fixed import FixedFormat
from ..lang.dfg import Dfg, Node, NodeKind
from ..obs import current_telemetry
from .binding import Binding, bind
from .memory import MemoryLayout, RomLayout
from .program import LoopCarry, RTProgram
from .rt import RT, Destination, Operand, ResourceUse


def live_nodes(dfg: Dfg) -> set[int]:
    """Backward closure from the sinks (outputs and state writes)."""
    live: set[int] = set()
    worklist = [
        n.id for n in dfg.nodes
        if n.kind in (NodeKind.OUTPUT, NodeKind.STATE_WRITE)
    ]
    while worklist:
        node_id = worklist.pop()
        if node_id in live:
            continue
        live.add(node_id)
        worklist.extend(dfg.node(node_id).args)
    return live


@dataclass
class _Consumer:
    """One read of a value: which node, which argument position."""

    node: Node
    arg_index: int


@dataclass
class _CopyPlan:
    copier: Opu
    target_rf: str
    copy_value: int


class _Generator:
    def __init__(self, dfg: Dfg, core: CoreSpec, binding: Binding,
                 live: set[int]):
        self.dfg = dfg
        self.core = core
        self.dp: Datapath = core.datapath
        self.binding = binding
        self.live = live
        self.fmt = FixedFormat(core.data_width, core.frac_bits)
        self._aux_counter = len(dfg.nodes)
        self.rts: list[RT] = []
        self.loop_carries: list[LoopCarry] = []
        self.value_names: dict[int, str] = {}
        # (consumer node id, arg index) -> (register file name, value id)
        self.operand_source: dict[tuple[int, int], tuple[str, int]] = {}
        # (consumer node id, arg index) -> input port index on the bound OPU
        self.port_of: dict[tuple[int, int], int] = {}
        # value id -> destination register files (direct multicast)
        self.dest_rfs: dict[int, list[str]] = {}
        # value id -> copies through pass-capable OPUs
        self.copies: dict[int, list[_CopyPlan]] = {}
        self.memories: dict[str, MemoryLayout] = {}
        self.acu_moduli: dict[str, int] = {}
        self.rom: RomLayout | None = None
        self.fp_old: dict[str, int] = {}     # RAM name -> frame pointer value

    def new_value(self, name: str) -> int:
        value = self._aux_counter
        self._aux_counter += 1
        self.value_names[value] = name
        return value

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self) -> None:
        self._plan_memory()
        self._assign_ports()
        self._plan_routes()

    def _plan_memory(self) -> None:
        for ram_name in self.binding.rams:
            ram = self.dp.opu(ram_name)
            states = [
                self.dfg.states[state]
                for state, assigned in self.binding.state_ram.items()
                if assigned == ram_name
            ]
            layout = MemoryLayout.for_states(states, ram.memory_size)
            self.memories[ram_name] = layout
            acu_name = self.binding.ram_acu[ram_name]
            existing = self.acu_moduli.get(acu_name)
            if existing is not None and existing != layout.modulus:
                raise RoutingError(
                    f"ACU {acu_name!r} would need two modulo "
                    f"configurations ({existing} and {layout.modulus}); "
                    f"give each data memory its own ACU"
                )
            self.acu_moduli[acu_name] = layout.modulus
        if self.binding.rom_opu is not None:
            live_params = {
                n.name: self.fmt.from_float(self.dfg.params[n.name])
                for n in self.dfg.nodes
                if n.id in self.live and n.kind is NodeKind.PARAM
            }
            if live_params:
                rom = self.dp.opu(self.binding.rom_opu)
                self.rom = RomLayout.for_params(live_params, rom.memory_size)

    def _producer_opu(self, value_node: Node) -> Opu:
        return self.dp.opu(self.binding.opu_of_node(value_node))

    def _assign_ports(self) -> None:
        """Choose the argument → input-port mapping of every consumer."""
        for node in self.dfg.nodes:
            if node.id not in self.live:
                continue
            if node.kind is NodeKind.OP:
                self._assign_op_ports(node)
            elif node.kind is NodeKind.OUTPUT:
                self.port_of[(node.id, 0)] = 0
            elif node.kind is NodeKind.STATE_WRITE:
                # RAM write: port 0 is the address (internal), port 1 data.
                self.port_of[(node.id, 0)] = 1

    def _assign_op_ports(self, node: Node) -> None:
        opu = self.dp.opu(self.binding.operation_opu[node.id])
        operation = opu.operation(node.name)
        if len(node.args) != operation.arity:
            raise RoutingError(
                f"operation {node.name!r} (node n{node.id}) has "
                f"{len(node.args)} operands; OPU {opu.name!r} expects "
                f"{operation.arity}"
            )
        orders = [tuple(range(operation.arity))]
        if operation.commutative and operation.arity == 2:
            orders.append((1, 0))

        def directness(order: tuple[int, ...]) -> int:
            score = 0
            for arg_index, port_index in enumerate(order):
                producer = self._producer_opu(self.dfg.node(node.args[arg_index]))
                port_rf = self.dp.port_register_file(opu, port_index)
                if any(r.register_file is port_rf
                       for r in self.dp.routes_from(producer)):
                    score += 1
            return score

        best = max(orders, key=directness)
        for arg_index, port_index in enumerate(best):
            self.port_of[(node.id, arg_index)] = port_index

    def _plan_routes(self) -> None:
        """Decide destination register files and copies for every value.

        Values are planned in first-use order (the order their first
        live consumer appears); each value's readers come from the
        DFG's cached consumer index.
        """
        index = self.dfg.consumer_index()
        planned: set[int] = set()
        for consumer_node in self.dfg.nodes:
            if consumer_node.id not in self.live:
                continue
            for value in consumer_node.args:
                if value in planned:
                    continue
                planned.add(value)
                readers = [
                    _Consumer(reader, arg_index)
                    for reader in index[value]
                    if reader.id in self.live
                    for arg_index, arg in enumerate(reader.args)
                    if arg == value
                ]
                self._plan_value(value, readers)

    def _plan_value(self, value: int, readers: list[_Consumer]) -> None:
        current_telemetry().count("rtgen.values_routed")
        value_node = self.dfg.node(value)
        producer = self._producer_opu(value_node)
        direct: list[str] = []
        plans: list[_CopyPlan] = []
        reachable = {r.register_file.name for r in self.dp.routes_from(producer)}
        for reader in readers:
            consumer_opu = self.dp.opu(self.binding.opu_of_node(reader.node))
            port_index = self.port_of[(reader.node.id, reader.arg_index)]
            target = self.dp.port_register_file(consumer_opu, port_index).name
            if target in reachable:
                if target not in direct:
                    direct.append(target)
                self.operand_source[(reader.node.id, reader.arg_index)] = (
                    target, value,
                )
                continue
            plan = self._find_copy(plans, producer, target, value_node)
            if plan.copier.ports[0].register_file.name not in direct:
                direct.append(plan.copier.ports[0].register_file.name)
            self.operand_source[(reader.node.id, reader.arg_index)] = (
                target, plan.copy_value,
            )
        self.dest_rfs[value] = direct
        self.copies[value] = plans

    def _find_copy(self, plans: list[_CopyPlan], producer: Opu, target: str,
                   value_node: Node) -> _CopyPlan:
        for plan in plans:
            if plan.target_rf == target:
                return plan
        for copier in self.dp.opus_supporting("pass"):
            if copier is producer:
                continue
            input_rf = copier.ports[0].register_file
            if input_rf is None:
                continue
            producer_reach = {
                r.register_file.name for r in self.dp.routes_from(producer)
            }
            copier_reach = {
                r.register_file.name for r in self.dp.routes_from(copier)
            }
            if input_rf.name in producer_reach and target in copier_reach:
                copy_value = self.new_value(
                    f"copy_{self.value_names.get(value_node.id, value_node.id)}"
                )
                plan = _CopyPlan(copier, target, copy_value)
                plans.append(plan)
                current_telemetry().count("rtgen.copies_inserted")
                return plan
        raise RoutingError(
            f"value of node n{value_node.id} ({value_node.name}) produced on "
            f"OPU {producer.name!r} cannot reach register file {target!r}, "
            f"and no pass-capable OPU can relay it; rewrite the source or "
            f"extend the core's interconnect"
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self) -> None:
        for ram_name in self.memories:
            self.fp_old[ram_name] = self.new_value(f"fp_{ram_name}")
        for node in self.dfg.nodes:
            if node.id not in self.live:
                continue
            handler = {
                NodeKind.INPUT: self._emit_input,
                NodeKind.PARAM: self._emit_param,
                NodeKind.DELAY: self._emit_delay,
                NodeKind.OP: self._emit_op,
                NodeKind.STATE_WRITE: self._emit_state_write,
                NodeKind.OUTPUT: self._emit_output,
            }[node.kind]
            handler(node)
            if node.label:
                self.value_names[node.id] = node.label
        for ram_name in self.memories:
            self._emit_fp_advance(ram_name)

    # -- helpers -----------------------------------------------------------

    def _routes_for(self, opu: Opu, rfs: list[str]) -> list[Route]:
        return [self.dp.route_to(opu, rf) for rf in rfs]

    def _make_rt(
        self,
        opu: Opu,
        operation: Operation,
        operands: list[tuple[Operand, int | None]],
        value: int | None,
        dest_rfs: list[str],
        source: str,
        memory_location: str | None = None,
        memory_effect: str | None = None,
        io_port: str | None = None,
    ) -> RT:
        """Assemble one RT with its full resource/usage path (figure 2).

        ``operands`` pairs each :class:`Operand` with the input-port
        index it enters through (``None`` for immediates on ports).
        """
        uses: list[ResourceUse] = [ResourceUse(opu.name, operation.name)]
        if io_port is not None:
            # The IO pin carries one logical stream's sample per cycle;
            # two streams through one port block must take turns even
            # when they happen to carry the same value.
            uses.append(ResourceUse(f"{opu.name}:pin", io_port))
        if operation.initiation_interval > 1:
            uses.extend(
                ResourceUse(opu.name, operation.name, offset)
                for offset in range(1, operation.initiation_interval)
            )
        for operand, port_index in operands:
            if not operand.is_register or port_index is None:
                continue
            port = opu.ports[port_index]
            rf = port.register_file
            uses.append(
                ResourceUse(rf.read_resource(port), f"v{operand.value}")
            )
        destinations: list[Destination] = []
        if value is not None and dest_rfs:
            result_offset = operation.latency - 1
            uses.append(ResourceUse(opu.buffer_name, "write", result_offset))
            uses.append(ResourceUse(opu.bus.resource, f"v{value}", result_offset))
            for route in self._routes_for(opu, dest_rfs):
                mux_name = mux_usage = None
                if route.mux is not None:
                    mux_name = route.mux.resource
                    mux_usage = route.mux.select_usage(route.bus)
                    uses.append(ResourceUse(mux_name, mux_usage, result_offset))
                uses.append(
                    ResourceUse(
                        route.register_file.write_resource,
                        f"v{value}",
                        result_offset,
                    )
                )
                destinations.append(
                    Destination(
                        register_file=route.register_file.name,
                        value=value,
                        mux=mux_name,
                        mux_usage=mux_usage,
                    )
                )
        rt = RT(
            opu=opu.name,
            operation=operation.name,
            operands=tuple(op for op, _ in operands),
            destinations=tuple(destinations),
            uses=tuple(uses),
            latency=operation.latency,
            source=source,
            memory_location=memory_location,
            memory_effect=memory_effect,
            io_port=io_port,
        )
        self.rts.append(rt)
        return rt

    def _emit_copies(self, node_id: int) -> None:
        for plan in self.copies.get(node_id, ()):  # insert data-routing hops
            copier = plan.copier
            operation = copier.operation("pass")
            input_rf = copier.ports[0].register_file
            self._make_rt(
                copier,
                operation,
                [(Operand.register(input_rf.name, node_id), 0)],
                plan.copy_value,
                [plan.target_rf],
                source=f"route n{node_id}",
            )

    def _dests(self, node_id: int) -> list[str]:
        return self.dest_rfs.get(node_id, [])

    # -- node emitters ------------------------------------------------------

    def _emit_input(self, node: Node) -> None:
        opu = self.dp.opu(self.binding.input_opu[node.name])
        self._make_rt(
            opu, opu.operation("read"), [], node.id, self._dests(node.id),
            source=f"{node.name} (input)",
            io_port=node.name,
        )
        self._emit_copies(node.id)

    def _emit_param(self, node: Node) -> None:
        if self.rom is not None:
            address = self.rom.address[node.name]
            const_opu = self.dp.opu(self.binding.const_opu)
            rom_opu = self.dp.opu(self.binding.rom_opu)
            rom_port_rf = self.dp.port_register_file(rom_opu, 0)
            address_value = self.new_value(f"addr_{node.name}")
            self._make_rt(
                const_opu,
                const_opu.operation("const"),
                [(Operand.immediate(address), None)],
                address_value,
                [rom_port_rf.name],
                source=f"#{node.name} (ROM address)",
            )
            self._make_rt(
                rom_opu,
                rom_opu.operation("const"),
                [(Operand.register(rom_port_rf.name, address_value), 0)],
                node.id,
                self._dests(node.id),
                source=f"{node.name} (coefficient)",
                memory_location=f"rom[{address}]",
                memory_effect="read",
            )
        else:
            const_opu = self.dp.opu(self.binding.const_opu)
            quantised = self.fmt.from_float(self.dfg.params[node.name])
            self._make_rt(
                const_opu,
                const_opu.operation("const"),
                [(Operand.immediate(quantised), None)],
                node.id,
                self._dests(node.id),
                source=f"{node.name} (coefficient)",
            )
        self._emit_copies(node.id)

    def _address_rt(self, ram_name: str, offset: int, label: str) -> int:
        """Emit one ACU address computation; return the address value id."""
        acu = self.dp.opu(self.binding.ram_acu[ram_name])
        acu_rf = self.dp.port_register_file(acu, 0)
        ram = self.dp.opu(ram_name)
        ram_addr_rf = self.dp.port_register_file(ram, 0)
        address_value = self.new_value(label)
        self._make_rt(
            acu,
            acu.operation("addmod"),
            [
                (Operand.register(acu_rf.name, self.fp_old[ram_name]), 0),
                (Operand.immediate(offset), 1),
            ],
            address_value,
            [ram_addr_rf.name],
            source=label,
        )
        return address_value

    def _emit_delay(self, node: Node) -> None:
        ram_name = self.binding.state_ram[node.name]
        offset = self.memories[ram_name].read_offset(node.name, node.delay)
        address_value = self._address_rt(
            ram_name, offset, f"&{node.name}@{node.delay}"
        )
        ram = self.dp.opu(ram_name)
        ram_addr_rf = self.dp.port_register_file(ram, 0)
        self._make_rt(
            ram,
            ram.operation("read"),
            [(Operand.register(ram_addr_rf.name, address_value), 0)],
            node.id,
            self._dests(node.id),
            source=f"{node.name}@{node.delay}",
            memory_location=f"{node.name}@{node.delay}",
            memory_effect="read",
        )
        self._emit_copies(node.id)

    def _emit_op(self, node: Node) -> None:
        opu = self.dp.opu(self.binding.operation_opu[node.id])
        operation = opu.operation(node.name)
        operands: list[tuple[Operand, int | None]] = []
        by_port = sorted(
            range(len(node.args)),
            key=lambda arg_index: self.port_of[(node.id, arg_index)],
        )
        for arg_index in by_port:
            rf, value = self.operand_source[(node.id, arg_index)]
            operands.append(
                (Operand.register(rf, value), self.port_of[(node.id, arg_index)])
            )
        self._make_rt(
            opu, operation, operands, node.id, self._dests(node.id),
            source=f"{node.name} n{node.id}",
        )
        self._emit_copies(node.id)

    def _emit_state_write(self, node: Node) -> None:
        ram_name = self.binding.state_ram[node.name]
        offset = self.memories[ram_name].write_offset(node.name)
        address_value = self._address_rt(ram_name, offset, f"&{node.name}")
        ram = self.dp.opu(ram_name)
        ram_addr_rf = self.dp.port_register_file(ram, 0)
        data_rf, data_value = self.operand_source[(node.id, 0)]
        self._make_rt(
            ram,
            ram.operation("write"),
            [
                (Operand.register(ram_addr_rf.name, address_value), 0),
                (Operand.register(data_rf, data_value), 1),
            ],
            None,
            [],
            source=f"{node.name} = ...",
            memory_location=f"{node.name}@0",
            memory_effect="write",
        )

    def _emit_output(self, node: Node) -> None:
        opu = self.dp.opu(self.binding.output_opu[node.name])
        rf, value = self.operand_source[(node.id, 0)]
        self._make_rt(
            opu,
            opu.operation("write"),
            [(Operand.register(rf, value), 0)],
            None,
            [],
            source=f"{node.name} (output)",
            io_port=node.name,
        )

    def _emit_fp_advance(self, ram_name: str) -> None:
        acu = self.dp.opu(self.binding.ram_acu[ram_name])
        acu_rf = self.dp.port_register_file(acu, 0)
        fp_new = self.new_value(f"fp_{ram_name}'")
        self._make_rt(
            acu,
            acu.operation("addmod"),
            [
                (Operand.register(acu_rf.name, self.fp_old[ram_name]), 0),
                (Operand.immediate(self.memories[ram_name].advance_offset()), 1),
            ],
            fp_new,
            [acu_rf.name],
            source=f"frame pointer advance ({ram_name})",
        )
        self.loop_carries.append(
            LoopCarry(
                register_file=acu_rf.name,
                register=0,
                old=self.fp_old[ram_name],
                new=fp_new,
                initial=0,
            )
        )


def generate_rts(
    dfg: Dfg,
    core: CoreSpec,
    io_binding: dict[str, str] | None = None,
) -> RTProgram:
    """Lower ``dfg`` onto ``core``; the main entry point of this package."""
    dfg.validate()
    live = live_nodes(dfg)
    binding = bind(dfg, core, io_binding, live)
    generator = _Generator(dfg, core, binding, live)
    generator.plan()
    generator.emit()
    return RTProgram(
        core=core,
        dfg=dfg,
        rts=generator.rts,
        loop_carries=generator.loop_carries,
        memories=generator.memories,
        acu_moduli=generator.acu_moduli,
        rom=generator.rom,
        value_names=generator.value_names,
    )
