"""The register-transfer (RT) model (paper, section 3, figure 2).

"RTs correspond to paths in the architecture.  The characteristic
property of RTs is that they start with one or more operands
originating from register files as input for an operation executed on
an operation unit (OPU) which is possibly pipelined.  The result is
transferred through a buffer onto a bus and optionally through a
multiplexer into a destination register."

"Each RT specifies which resources on the path must be activated and
how the resources are occupied. ...  Different RTs with common
resources can be executed in parallel when the common resources have
the same usage."

That one sentence is the entire concurrency model of this compiler:

* the OPU resource gets the operation name as usage — two different
  operations on one OPU conflict;
* the bus gets the produced *value* as usage — carrying the same value
  twice is free (multicast), different values conflict;
* a multiplexer gets its *selection* as usage;
* register-file ports get the accessed register as usage — two reads
  of the same register share the port, reads of different registers
  need different ports;
* the artificial instruction-set resources of section 6.3 get the RT
  *class* as usage — RTs of conflicting classes disagree and can never
  share a cycle.

Values and registers are *virtual* during code generation: every RT
produces at most one virtual value, bound to a physical register of its
destination file(s) only after scheduling (left-edge allocation).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass


class OperandKind(enum.Enum):
    REGISTER = "register"
    IMMEDIATE = "immediate"


@dataclass(frozen=True)
class Operand:
    """One OPU input: a virtual register in a register file, or an
    immediate field of the instruction word."""

    kind: OperandKind
    register_file: str | None = None   # register-file name for REGISTER kind
    value: int | None = None           # virtual value id (REGISTER) or literal (IMMEDIATE)

    @staticmethod
    def register(register_file: str, value: int) -> "Operand":
        return Operand(OperandKind.REGISTER, register_file=register_file, value=value)

    @staticmethod
    def immediate(value: int) -> "Operand":
        return Operand(OperandKind.IMMEDIATE, value=value)

    @property
    def is_register(self) -> bool:
        return self.kind is OperandKind.REGISTER

    def pretty(self) -> str:
        if self.is_register:
            return f"v{self.value}:{self.register_file}"
        return f"#{self.value}"


@dataclass(frozen=True)
class Destination:
    """One fan-out of an RT's result into a register file.

    ``route`` records the physical path (bus → optional mux → file);
    multicast RTs carry several destinations on the same bus.
    """

    register_file: str
    value: int                 # virtual value id written
    mux: str | None = None     # mux resource name, if the path has one
    mux_usage: str | None = None

    def pretty(self) -> str:
        return f"v{self.value}:{self.register_file}"


@dataclass(frozen=True)
class ResourceUse:
    """Occupation of one resource by an RT.

    ``offset`` is the cycle offset relative to the RT's issue cycle;
    operand fetch happens at offset 0, the result write of an operation
    with latency L at offset L - 1 in this model (single-cycle RTs keep
    everything at offset 0, like the paper's audio core).
    """

    resource: str
    usage: str
    offset: int = 0


class RT:
    """A register transfer: one operation plus its complete path usage.

    Instances are created by the RT generator; tests may build them
    directly.  Identity is the unique ``uid`` (RTs are hashable and
    compare by identity so that schedulers can key dictionaries on
    them even when two transfers look identical).
    """

    _uids = itertools.count()

    def __init__(
        self,
        opu: str,
        operation: str,
        operands: tuple[Operand, ...],
        destinations: tuple[Destination, ...],
        uses: tuple[ResourceUse, ...],
        latency: int = 1,
        source: str | None = None,
        memory_location: str | None = None,
        memory_effect: str | None = None,
        io_port: str | None = None,
    ):
        self.uid = next(RT._uids)
        self.opu = opu
        self.operation = operation
        self.operands = operands
        self.destinations = destinations
        self.uses = uses
        self.latency = latency
        #: human-readable origin, e.g. the source line that produced it
        self.source = source
        #: symbolic memory location for RAM/ROM transfers (dependence analysis)
        self.memory_location = memory_location
        #: "read" / "write" / None
        self.memory_effect = memory_effect
        #: logical IO port name for INPUT/OUTPUT transfers
        self.io_port = io_port
        #: RT class name, filled in by repro.core classification
        self.rt_class: str | None = None

    # ------------------------------------------------------------------

    @property
    def value(self) -> int | None:
        """The virtual value this RT produces (None for stores/outputs)."""
        if not self.destinations:
            return None
        return self.destinations[0].value

    @property
    def read_values(self) -> tuple[int, ...]:
        """Virtual values consumed through register operands."""
        return tuple(op.value for op in self.operands if op.is_register)

    def resources_at(self, cycle: int) -> dict[str, str]:
        """resource → usage map at absolute ``cycle`` when issued at 0."""
        return {
            use.resource: use.usage for use in self.uses if use.offset == cycle
        }

    @property
    def max_offset(self) -> int:
        return max((use.offset for use in self.uses), default=0)

    def with_extra_uses(self, extra: tuple[ResourceUse, ...]) -> "RT":
        """A copy of this RT with additional resource usages.

        Used by instruction-set conflict generation (artificial
        resources) and by register-file/bus merging; the copy keeps the
        class annotation but gets a fresh uid.
        """
        clone = RT(
            opu=self.opu,
            operation=self.operation,
            operands=self.operands,
            destinations=self.destinations,
            uses=self.uses + extra,
            latency=self.latency,
            source=self.source,
            memory_location=self.memory_location,
            memory_effect=self.memory_effect,
            io_port=self.io_port,
        )
        clone.rt_class = self.rt_class
        return clone

    def with_uses(self, uses: tuple[ResourceUse, ...]) -> "RT":
        """A copy of this RT with a replaced usage map (merge rewriting)."""
        clone = RT(
            opu=self.opu,
            operation=self.operation,
            operands=self.operands,
            destinations=self.destinations,
            uses=uses,
            latency=self.latency,
            source=self.source,
            memory_location=self.memory_location,
            memory_effect=self.memory_effect,
            io_port=self.io_port,
        )
        clone.rt_class = self.rt_class
        return clone

    # ------------------------------------------------------------------

    def pretty(self) -> str:
        """Render in the paper's concrete syntax (figure 2)::

            Dest_1:reg <- Opr_1:reg, Opr_2:reg
            \\ acu_1       = add,
              bus_1_acu_1 = add(Opr_1, Opr_2);
        """
        dests = ", ".join(
            f"Dest_{i + 1}:{d.pretty()}" for i, d in enumerate(self.destinations)
        )
        oprs = ", ".join(
            f"Opr_{i + 1}:{op.pretty()}" for i, op in enumerate(self.operands)
        )
        head = f"{dests or '(none)'} <- {oprs or '(none)'}"
        body = ",\n  ".join(
            f"{use.resource:<16} = {use.usage}"
            + (f" @+{use.offset}" if use.offset else "")
            for use in self.uses
        )
        return f"{head}\n\\ {body};"

    def __repr__(self) -> str:
        dest = self.destinations[0].pretty() if self.destinations else "-"
        return f"RT#{self.uid}({self.opu}.{self.operation} -> {dest})"

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return self is other


def conflict(a: RT, b: RT, distance: int = 0) -> bool:
    """Do ``a`` (issued at t) and ``b`` (issued at t + distance) collide?

    Two RTs conflict iff some resource is used by both at the same
    absolute cycle with *different* usages (paper, section 3).  With
    single-cycle RTs and distance 0 this is the plain instruction-
    compatibility check; non-zero distances matter for pipelined OPUs.
    """
    for use_a in a.uses:
        for use_b in b.uses:
            if (
                use_a.resource == use_b.resource
                and use_a.offset == use_b.offset + distance
                and use_a.usage != use_b.usage
            ):
                return True
    return False


def conflict_same_cycle(a: RT, b: RT) -> bool:
    """Specialised same-cycle conflict check (the common case)."""
    map_b: dict[tuple[str, int], str] = {
        (use.resource, use.offset): use.usage for use in b.uses
    }
    for use in a.uses:
        usage_b = map_b.get((use.resource, use.offset))
        if usage_b is not None and usage_b != use.usage:
            return True
    return False
