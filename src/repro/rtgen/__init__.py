"""RT generation: from data-flow graphs to register transfers
(paper, sections 3-4, figure 2)."""

from .binding import Binding, bind
from .generator import generate_rts, live_nodes
from .memory import MemoryLayout, RomLayout
from .program import LoopCarry, RTProgram
from .rt import (
    RT,
    Destination,
    Operand,
    OperandKind,
    ResourceUse,
    conflict,
    conflict_same_cycle,
)

__all__ = [
    "Binding",
    "Destination",
    "LoopCarry",
    "MemoryLayout",
    "Operand",
    "OperandKind",
    "RT",
    "RTProgram",
    "ResourceUse",
    "RomLayout",
    "bind",
    "conflict",
    "conflict_same_cycle",
    "generate_rts",
    "live_nodes",
]
