"""Cycle-accurate core simulation.

Two execution tiers share one machine model:

* :mod:`repro.sim.machine` — the scalar oracle.  One instruction word
  at a time, decoded on every cycle; slow, simple, and the semantic
  reference every other engine is asserted bit-identical against.
* :mod:`repro.sim.batch` — the production path.  Decode once into a
  flat :class:`~repro.sim.batch.DecodedPlan`, then step it either one
  lane at a time in pure Python (:class:`~repro.sim.batch.DecodedSimulator`)
  or over whole stimulus/candidate batches as numpy array ops
  (:class:`~repro.sim.batch.BatchSimulator`; numpy is an optional
  extra).  :func:`~repro.sim.batch.run_batch` and
  :func:`~repro.sim.batch.run_programs` pick an engine via
  :func:`~repro.sim.batch.resolve_engine`.
"""

from .batch import (
    ENGINES,
    NUMPY_AVAILABLE,
    BatchSimulator,
    DecodedPlan,
    DecodedSimulator,
    PlanError,
    decode_program,
    resolve_engine,
    run_batch,
    run_programs,
)
from .machine import CoreSimulator, TraceEntry, default_frame_count, run_program

__all__ = [
    "ENGINES",
    "NUMPY_AVAILABLE",
    "BatchSimulator",
    "CoreSimulator",
    "DecodedPlan",
    "DecodedSimulator",
    "PlanError",
    "TraceEntry",
    "decode_program",
    "default_frame_count",
    "resolve_engine",
    "run_batch",
    "run_program",
    "run_programs",
]
