"""Cycle-accurate core simulator: executes the encoded microcode and
must reproduce the reference interpreter bit-exactly."""

from .machine import CoreSimulator, TraceEntry, run_program

__all__ = ["CoreSimulator", "TraceEntry", "run_program"]
