"""Vectorized batch simulation: decode once, step many lanes at a time.

The scalar :class:`~repro.sim.machine.CoreSimulator` re-decodes every
instruction word on every cycle — a ``format.decode`` dict per step,
opcode-table lookups per OPU, string-keyed register files.  That is
the right shape for a *differential oracle* (it independently exercises
the encoding) but hopeless for traffic: candidate evaluation and
stimulus sweeps are simulation-bound.

This module splits execution into two phases:

1. **Decode once** — :func:`decode_program` lowers an
   :class:`~repro.encode.assembler.EncodedProgram` into a
   :class:`DecodedPlan`: per word, the controller op, the active OPU
   micro-ops with preresolved operand sources (register file + address,
   or a sign-extended immediate), fixed-point semantic codes, pipeline
   due-offsets and bus names, and the destination writes with their
   mux-selected source bus.  Nothing is looked up per cycle anymore.
2. **Step batches** — :class:`BatchSimulator` executes one plan over
   ``N`` stimulus lanes simultaneously: register files and memories are
   ``(N, size)`` numpy int arrays, every micro-op is a handful of array
   ops with exact two's-complement wrap semantics matching
   :mod:`repro.fixed`, and conditional control flow (``CJMP``) splits
   the lane set so diverging lanes continue under their own program
   counter with masked (fancy-indexed) writes.  Stacked over M explorer
   candidates that share a control path (identical words, different ROM
   coefficients / initial registers), the same plan steps ``N x M``
   lanes.

:class:`DecodedSimulator` is the pure-Python fallback: the same plan,
stepped one lane at a time — no numpy required, still several times
faster than the scalar loop because the per-cycle decode is gone.

Engine selection (:func:`resolve_engine`): ``"auto"`` picks numpy when
it is importable and the batch is wide enough, else the decoded
fallback; ``REPRO_SIM_ENGINE`` forces a choice process-wide (CI uses it
to prove the fallback); ``"scalar"`` runs the oracle loop.  The scalar
simulator remains the semantics reference — the differential suite
asserts the batch engines match it bit-exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..arch.controller import CtrlOp
from ..arch.opu import OpuKind
from ..encode.assembler import EncodedProgram
from ..encode.fields import CTRL_DECODE, opcode_table
from ..errors import SimulationError
from ..fixed import FixedFormat
from ..obs import current_telemetry

try:  # numpy is an optional extra (setup.py [batch]); never required.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Whether the vectorized engine can run in this process.
NUMPY_AVAILABLE = _np is not None

#: Lane count at which ``"auto"`` prefers the numpy engine over the
#: decoded fallback (below it, per-call array overhead dominates).
NUMPY_MIN_LANES = 8

#: Engine names accepted everywhere an ``engine=`` parameter appears.
ENGINES = ("auto", "scalar", "decoded", "numpy")


class PlanError(SimulationError):
    """The program uses a feature the decoded plan cannot express
    (``engine="auto"`` falls back to the scalar oracle on this)."""


# ---------------------------------------------------------------------------
# Semantic codes: one small int per micro-op meaning, resolved at decode.
# ---------------------------------------------------------------------------

SEM_ADD = 0
SEM_ADD_CLIP = 1
SEM_SUB = 2
SEM_MULT = 3
SEM_PASS = 4
SEM_PASS_CLIP = 5
SEM_ASR = 6
SEM_RAM_READ = 7
SEM_RAM_WRITE = 8
SEM_ROM_READ = 9
SEM_ACU_ADDMOD = 10
SEM_ACU_INCA = 11
SEM_ACU_ADD = 12
SEM_CONST = 13
SEM_INPUT = 14
SEM_OUTPUT = 15

_FIXED_SEMS = {
    "add": SEM_ADD,
    "add_clip": SEM_ADD_CLIP,
    "sub": SEM_SUB,
    "mult": SEM_MULT,
    "pass": SEM_PASS,
    "pass_clip": SEM_PASS_CLIP,
}


@dataclass(frozen=True)
class OpPlan:
    """One active OPU in one instruction word, fully preresolved."""

    opu: str
    sem: int
    #: ``(True, rf_name, address)`` register reads or
    #: ``(False, value, 0)`` immediates, in port order.
    operands: tuple[tuple, ...]
    latency: int
    #: Bus the result matures on (``None`` for RAM/OUTPUT writes).
    bus: str | None
    #: RAM/ROM name for memory sems, IO port for INPUT/OUTPUT sems.
    target: str | None = None
    #: ACU modulus (addmod/inca) or ASR shift distance.
    constant: int = 0
    #: ALU-kind ops drive the datapath flags from their result.
    sets_flags: bool = False


@dataclass(frozen=True)
class WritePlan:
    """One destination-field register write in one instruction word."""

    rf: str
    addr: int
    bus: str


@dataclass(frozen=True)
class WordPlan:
    """One decoded instruction word."""

    index: int
    ctrl: CtrlOp
    arg: int
    flag: int
    ops: tuple[OpPlan, ...]
    writes: tuple[WritePlan, ...]


class DecodedPlan:
    """A flat, preresolved execution plan for one encoded program.

    Everything the per-cycle loop needs, resolved exactly once:
    decoded words, register-file/memory shapes, the fixed-point format
    and the controller envelope.  The plan is immutable and reusable —
    decode once, simulate any number of stimulus batches.
    """

    def __init__(self, program: EncodedProgram):
        core = program.core
        self.program = program
        self.core = core
        self.fmt = FixedFormat(core.data_width, core.frac_bits)
        self.rf_sizes: dict[str, int] = {
            rf.name: rf.size for rf in core.datapath.register_files.values()
        }
        self.ram_sizes: dict[str, int] = {}
        self.rom_contents: dict[str, tuple[int, ...]] = {}
        for opu in core.datapath.opus.values():
            if opu.kind is OpuKind.RAM:
                self.ram_sizes[opu.name] = opu.memory_size
            elif opu.kind is OpuKind.ROM:
                contents = list(program.rom_words)
                contents += [0] * (opu.memory_size - len(contents))
                self.rom_contents[opu.name] = tuple(contents)
        self.initial_registers = {
            rf: tuple(inits)
            for rf, inits in program.initial_registers.items()
        }
        self.stack_depth = core.controller.stack_depth
        self.n_flags = core.controller.n_flags
        opcode_names = {
            opu: {code: name for name, code in table.items()}
            for opu, table in opcode_table(core).items()
        }
        self.words: tuple[WordPlan, ...] = tuple(
            _decode_word(program, index, opcode_names)
            for index in range(len(program.words))
        )

    @property
    def n_words(self) -> int:
        return len(self.words)

    def structure_key(self) -> tuple:
        """Hashable fingerprint of the *control path and datapath
        structure* of this plan — everything except the per-lane data
        (ROM contents, initial register values, CONST immediates such
        as coefficient constants).  Plans with equal keys can be
        stacked into one batch as candidate lanes."""
        def op_key(op: OpPlan):
            if op.sem == SEM_CONST:
                # The immediate value is per-lane candidate data; only
                # its presence/shape is structural.
                return (op.opu, op.sem, len(op.operands), op.latency,
                        op.bus, op.target, op.constant, op.sets_flags)
            return op

        return (
            tuple(sorted(self.rf_sizes.items())),
            tuple(sorted(self.ram_sizes.items())),
            tuple(sorted(self.rom_contents)),   # names only, not contents
            (self.fmt.width, self.fmt.frac_bits),
            (self.stack_depth, self.n_flags),
            self.program.body_offset,
            tuple(
                (w.ctrl, w.arg, w.flag,
                 tuple(op_key(op) for op in w.ops), w.writes)
                for w in self.words
            ),
        )


def _sign_extend(value: int, width: int) -> int:
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def _decode_word(program: EncodedProgram, index: int,
                 opcode_names: dict[str, dict[int, str]]) -> WordPlan:
    core = program.core
    dp = core.datapath
    fields = program.format.decode(program.words[index])
    ctrl = CTRL_DECODE[fields["ctrl.op"]]
    if ctrl not in core.controller.allowed_ops():
        raise PlanError(
            f"controller op {ctrl.value!r} not supported by this core"
        )
    body_cycle = index - program.body_offset

    ops: list[OpPlan] = []
    for opu in dp.opus.values():
        opcode = fields.get(f"{opu.name}.op", 0)
        if opcode == 0:
            continue
        operation_name = opcode_names[opu.name][opcode]
        operation = opu.operation(operation_name)
        operands: list[tuple] = []
        for port_index in range(operation.arity):
            port = opu.ports[port_index]
            if port.accepts_immediate:
                raw = fields.get(f"{opu.name}.p{port_index}.imm", 0)
                if opu.kind is OpuKind.CONST:
                    raw = _sign_extend(raw, core.data_width)
                operands.append((False, raw, 0))
            else:
                operands.append((
                    True, port.register_file.name,
                    fields.get(f"{opu.name}.p{port_index}.addr", 0),
                ))
        sem, target, constant = _resolve_semantics(
            program, opu, operation_name, body_cycle)
        produces = sem not in (SEM_RAM_WRITE, SEM_OUTPUT)
        bus = opu.bus.name if (produces and opu.bus is not None) else None
        ops.append(OpPlan(
            opu=opu.name, sem=sem, operands=tuple(operands),
            latency=operation.latency, bus=bus, target=target,
            constant=constant, sets_flags=opu.kind is OpuKind.ALU,
        ))

    writes: list[WritePlan] = []
    for rf in dp.register_files.values():
        if not fields.get(f"{rf.name}.wr_en", 0):
            continue
        address = fields.get(f"{rf.name}.wr_addr", 0)
        if address >= rf.size:
            raise PlanError(f"register index {address} outside {rf.name!r}")
        writes.append(WritePlan(
            rf=rf.name, addr=address, bus=_selected_bus(dp, rf, fields)))

    return WordPlan(
        index=index, ctrl=ctrl, arg=fields.get("ctrl.arg", 0),
        flag=fields.get("ctrl.flag", 0), ops=tuple(ops),
        writes=tuple(writes),
    )


def _resolve_semantics(program: EncodedProgram, opu, operation_name: str,
                       body_cycle: int) -> tuple[int, str | None, int]:
    """(semantic code, target name, constant) of one (OPU, operation)."""
    kind = opu.kind
    if kind is OpuKind.RAM:
        if operation_name == "read":
            return SEM_RAM_READ, opu.name, 0
        if operation_name == "write":
            return SEM_RAM_WRITE, opu.name, 0
    elif kind is OpuKind.ROM:
        return SEM_ROM_READ, opu.name, 0
    elif kind is OpuKind.ACU:
        modulus = program.acu_moduli.get(opu.name, 1)
        if operation_name == "addmod":
            return SEM_ACU_ADDMOD, None, modulus
        if operation_name == "inca":
            return SEM_ACU_INCA, None, modulus
        if operation_name == "add":
            return SEM_ACU_ADD, None, 0
    elif kind is OpuKind.CONST:
        return SEM_CONST, None, 0
    elif kind is OpuKind.INPUT:
        port = program.input_map.get((opu.name, body_cycle))
        if port is None:
            raise PlanError(
                f"input read on {opu.name!r} at body cycle {body_cycle} "
                f"has no logical port"
            )
        return SEM_INPUT, port, 0
    elif kind is OpuKind.OUTPUT:
        port = program.output_map.get((opu.name, body_cycle))
        if port is None:
            raise PlanError(
                f"output write on {opu.name!r} at body cycle "
                f"{body_cycle} has no logical port"
            )
        return SEM_OUTPUT, port, 0
    # ALU / MULT / ASU (and leftovers): shared fixed-point semantics.
    sem = _FIXED_SEMS.get(operation_name)
    if sem is not None:
        return sem, None, 0
    if operation_name.startswith("asr") and operation_name[3:].isdigit():
        return SEM_ASR, None, int(operation_name[3:])
    raise PlanError(
        f"no fixed-point semantics for operation {operation_name!r}")


def _selected_bus(dp, rf, fields) -> str:
    """The bus a destination write reads — the scalar simulator's
    :meth:`CoreSimulator._selected_bus`, resolved at decode time."""
    mux = dp.muxes.get(f"mux_{rf.name}")
    if mux is not None:
        select = fields.get(f"{rf.name}.mux", 0)
        if select >= len(mux.inputs):
            raise PlanError(f"mux select {select} outside mux of {rf.name!r}")
        return mux.inputs[select].name
    writers = list(rf.writers)
    if not writers:
        raise PlanError(f"register file {rf.name!r} has no writer")
    sink = writers[0]
    for bus in dp.buses.values():
        if sink in bus.sinks:
            return bus.name
    raise PlanError("sink without a bus")


def decode_program(program: EncodedProgram) -> DecodedPlan:
    """Lower an encoded program into a reusable :class:`DecodedPlan`.

    Raises :class:`PlanError` (a :class:`SimulationError`) when the
    program uses something the plan cannot express; ``engine="auto"``
    entry points then fall back to the scalar oracle.
    """
    return DecodedPlan(program)


def _cycle_budget(plan: DecodedPlan, n_frames: int,
                  max_cycles: int | None) -> int:
    """The scalar simulator's settle budget, shared verbatim."""
    if max_cycles is not None:
        return max_cycles
    return (n_frames + 1) * max(plan.n_words * 4, 64)


# ---------------------------------------------------------------------------
# Pure-Python decoded engine: one lane, no per-cycle decode.
# ---------------------------------------------------------------------------

class DecodedSimulator:
    """Steps one lane over a :class:`DecodedPlan` — pure Python.

    Bit-identical to the scalar :class:`CoreSimulator` (the
    differential suite pins this), several times faster because the
    instruction words were decoded exactly once.
    """

    def __init__(self, plan: DecodedPlan):
        self.plan = plan
        self.fmt = plan.fmt
        self.registers: dict[str, list[int]] = {
            name: [0] * size for name, size in plan.rf_sizes.items()
        }
        for rf_name, inits in plan.initial_registers.items():
            for register, value in inits:
                self.registers[rf_name][register] = value
        self.memories: dict[str, list[int]] = {
            name: [0] * size for name, size in plan.ram_sizes.items()
        }
        for name, contents in plan.rom_contents.items():
            self.memories[name] = list(contents)
        self.pc = 0
        self.stack: list[tuple[int, int]] = []
        self.flags = [0] * max(1, plan.n_flags)
        self.cycle = 0
        self.frame = 0
        self.halted = False
        self.start_tokens = 0
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self._input_cursor: dict[str, int] = {}
        self._in_flight: dict[int, list[tuple[str, int]]] = {}

    def load_inputs(self, streams: dict[str, list[int]]) -> None:
        self.inputs = {port: list(values) for port, values in streams.items()}
        self._input_cursor = {port: 0 for port in streams}

    def run_frames(self, n_frames: int,
                   max_cycles: int | None = None) -> dict[str, list[int]]:
        self.start_tokens += n_frames
        budget = _cycle_budget(self.plan, n_frames, max_cycles)
        words = self.plan.words
        n_words = len(words)
        while not self.halted and self.cycle < budget:
            if self.pc >= n_words:
                raise SimulationError(f"PC {self.pc} outside the program")
            word = words[self.pc]
            if word.ctrl is CtrlOp.IDLE and self.start_tokens == 0:
                break
            self.step(word)
        if not self.halted:
            if self.pc >= n_words:
                raise SimulationError(f"PC {self.pc} outside the program")
            word = words[self.pc]
            if not (word.ctrl is CtrlOp.IDLE and self.start_tokens == 0):
                raise SimulationError(
                    f"simulation did not settle within {budget} cycles"
                )
        return {port: list(values) for port, values in self.outputs.items()}

    def step(self, word: WordPlan | None = None) -> None:
        if self.halted:
            raise SimulationError("stepping a halted core")
        if word is None:
            word = self.plan.words[self.pc]
        fmt = self.fmt
        registers = self.registers
        cycle = self.cycle

        produced: list[tuple[str, int, int]] = []
        memory_writes: list[tuple[str, int, int]] = []
        alu_result: int | None = None
        for op in word.ops:
            values = [
                registers[src[1]][src[2]] if src[0] else src[1]
                for src in op.operands
            ]
            sem = op.sem
            if sem == SEM_ADD:
                result = fmt.add(values[0], values[1])
            elif sem == SEM_MULT:
                result = fmt.mult(values[0], values[1])
            elif sem == SEM_SUB:
                result = fmt.sub(values[0], values[1])
            elif sem == SEM_ADD_CLIP:
                result = fmt.add_clip(values[0], values[1])
            elif sem == SEM_PASS:
                result = fmt.pass_(values[0])
            elif sem == SEM_PASS_CLIP:
                result = fmt.pass_clip(values[0])
            elif sem == SEM_ASR:
                result = fmt.asr(values[0], op.constant)
            elif sem == SEM_RAM_READ or sem == SEM_ROM_READ:
                memory = self.memories[op.target]
                address = values[0]
                if not 0 <= address < len(memory):
                    raise SimulationError(
                        f"address {address} outside memory {op.target!r} "
                        f"(size {len(memory)})"
                    )
                result = memory[address]
            elif sem == SEM_RAM_WRITE:
                memory = self.memories[op.target]
                address = values[0]
                if not 0 <= address < len(memory):
                    raise SimulationError(
                        f"address {address} outside memory {op.target!r} "
                        f"(size {len(memory)})"
                    )
                memory_writes.append((op.target, address, values[1]))
                result = None
            elif sem == SEM_ACU_ADDMOD:
                result = (values[0] + values[1]) % op.constant
            elif sem == SEM_ACU_INCA:
                result = (values[0] + 1) % op.constant
            elif sem == SEM_ACU_ADD:
                result = fmt.wrap(values[0] + values[1])
            elif sem == SEM_CONST:
                result = values[0]
            elif sem == SEM_INPUT:
                port = op.target
                cursor = self._input_cursor.get(port, 0)
                stream = self.inputs.get(port, [])
                if cursor >= len(stream):
                    raise SimulationError(f"input stream {port!r} exhausted")
                self._input_cursor[port] = cursor + 1
                result = fmt.wrap(stream[cursor])
            else:  # SEM_OUTPUT
                self.outputs.setdefault(op.target, []).append(values[0])
                result = None
            if result is not None:
                if op.sets_flags:
                    alu_result = result
                if op.bus is not None:
                    produced.append((op.bus, result, cycle + op.latency - 1))

        bus_values: dict[str, int] = {}
        for bus, value in self._in_flight.pop(cycle, []):
            bus_values[bus] = value
        for bus, value, due in produced:
            if due == cycle:
                bus_values[bus] = value
            else:
                self._in_flight.setdefault(due, []).append((bus, value))

        for write in word.writes:
            if write.bus not in bus_values:
                raise SimulationError(
                    f"cycle {cycle}: register file {write.rf!r} expects "
                    f"a value on {write.bus!r} but nothing matured there"
                )
            registers[write.rf][write.addr] = bus_values[write.bus]
        for memory, address, value in memory_writes:
            self.memories[memory][address] = value
        if alu_result is not None and self.plan.n_flags:
            self.flags[0] = 1 if alu_result < 0 else 0
            if self.plan.n_flags > 1:
                self.flags[1] = 1 if alu_result == 0 else 0

        self._advance_pc(word)
        self.cycle += 1

    def _advance_pc(self, word: WordPlan) -> None:
        ctrl = word.ctrl
        if ctrl is CtrlOp.CONT:
            self.pc += 1
        elif ctrl is CtrlOp.IDLE:
            if self.start_tokens > 0:
                self.start_tokens -= 1
                self.frame += 1
                self.pc += 1
        elif ctrl is CtrlOp.JUMP:
            self.pc = word.arg
        elif ctrl is CtrlOp.CJMP:
            if self.flags[word.flag]:
                self.pc = word.arg
            else:
                self.pc += 1
        elif ctrl is CtrlOp.LOOP:
            if len(self.stack) >= self.plan.stack_depth:
                raise SimulationError("loop stack overflow")
            self.stack.append((self.pc + 1, word.arg))
            self.pc += 1
        elif ctrl is CtrlOp.ENDL:
            if not self.stack:
                raise SimulationError("ENDL with empty loop stack")
            address, count = self.stack[-1]
            if count > 1:
                self.stack[-1] = (address, count - 1)
                self.pc = address
            else:
                self.stack.pop()
                self.pc += 1
        elif ctrl is CtrlOp.HALT:
            self.halted = True
        else:  # pragma: no cover - decode rejects unknown ops
            raise SimulationError(f"unhandled controller op {ctrl}")


# ---------------------------------------------------------------------------
# Numpy batch engine: N lanes in lockstep, lane-set splits on divergence.
# ---------------------------------------------------------------------------

class _Context:
    """One lock-stepped lane set: a program counter, loop stack, frame
    tokens and in-flight results shared by every lane in ``lanes``.

    A diverging ``CJMP`` splits a context into two children (taken /
    fall-through lane subsets); contexts never re-merge — each runs to
    its own settle point.  Per-lane *data* stays in the simulator's
    global ``(N, size)`` arrays; a context only slices it by lane."""

    __slots__ = ("lanes", "pc", "cycle", "start_tokens", "frame", "halted",
                 "stack", "in_flight", "cursors", "budget")

    def __init__(self, lanes, pc=0, cycle=0, start_tokens=0, frame=0,
                 stack=None, in_flight=None, cursors=None, budget=0):
        self.lanes = lanes
        self.pc = pc
        self.cycle = cycle
        self.start_tokens = start_tokens
        self.frame = frame
        self.halted = False
        self.stack = stack if stack is not None else []
        self.in_flight = in_flight if in_flight is not None else {}
        self.cursors = cursors if cursors is not None else {}
        self.budget = budget

    def split(self, mask) -> tuple["_Context", "_Context"]:
        """(taken, fall-through) children along a boolean lane mask."""
        positions = _np.nonzero(mask)[0]
        complement = _np.nonzero(~mask)[0]
        children = []
        for selector in (positions, complement):
            child = _Context(
                lanes=self.lanes[selector], pc=self.pc, cycle=self.cycle,
                start_tokens=self.start_tokens, frame=self.frame,
                stack=list(self.stack),
                in_flight={
                    due: [(bus, _slice_lanes(value, selector))
                          for bus, value in entries]
                    for due, entries in self.in_flight.items()
                },
                cursors=dict(self.cursors), budget=self.budget,
            )
            children.append(child)
        return children[0], children[1]


def _slice_lanes(value, selector):
    """Slice a per-lane value (array) or broadcast scalar by position."""
    if isinstance(value, int):
        return value
    return value[selector]


class BatchSimulator:
    """Executes one :class:`DecodedPlan` over ``n_lanes`` stimulus lanes
    as numpy array ops.

    Register files and data memories are ``(n_lanes, size)`` int64
    arrays; each decoded micro-op becomes a gather, a vectorized
    fixed-point kernel and (at end of cycle) a masked scatter.  Exact
    two's-complement wrap semantics match :mod:`repro.fixed` —
    outputs are bit-identical to the scalar oracle.

    ``variants`` optionally stacks per-lane *candidate variants*: a
    list of ``n_lanes`` decoded plans sharing this plan's control path
    (equal :meth:`DecodedPlan.structure_key`) whose ROM contents,
    initial register values and CONST immediates (program coefficients)
    differ per lane — how M explorer candidates ride one batch.
    """

    def __init__(self, plan: DecodedPlan, n_lanes: int,
                 variants: list[DecodedPlan] | None = None):
        if _np is None:
            raise SimulationError(
                "the numpy batch engine needs numpy (pip install "
                "repro[batch]); use engine='decoded' for the pure-Python "
                "fallback"
            )
        if plan.fmt.width > 32:
            raise PlanError(
                f"data width {plan.fmt.width} exceeds the numpy engine's "
                f"int64 headroom; use engine='decoded'"
            )
        if n_lanes < 1:
            raise SimulationError("a batch needs at least one lane")
        if variants is not None and len(variants) != n_lanes:
            raise SimulationError(
                f"{len(variants)} plan variants for {n_lanes} lanes")
        self.plan = plan
        self.n_lanes = n_lanes
        fmt = plan.fmt
        self._half = 1 << (fmt.width - 1)
        self._mask = (1 << fmt.width) - 1
        self._frac = fmt.frac_bits
        self._min = fmt.min_value
        self._max = fmt.max_value

        self.registers = {
            name: _np.zeros((n_lanes, size), dtype=_np.int64)
            for name, size in plan.rf_sizes.items()
        }
        self.memories = {
            name: _np.zeros((n_lanes, size), dtype=_np.int64)
            for name, size in plan.ram_sizes.items()
        }
        #: (word index, op index) -> per-lane CONST immediate values,
        #: populated only when stacking candidate variants.
        self._const_tables: dict[tuple[int, int], _np.ndarray] = {}
        if variants is None:
            for name, contents in plan.rom_contents.items():
                self.memories[name] = _np.tile(
                    _np.array(contents, dtype=_np.int64), (n_lanes, 1))
            for rf_name, inits in plan.initial_registers.items():
                for register, value in inits:
                    self.registers[rf_name][:, register] = value
        else:
            for name, contents in plan.rom_contents.items():
                self.memories[name] = _np.zeros(
                    (n_lanes, len(contents)), dtype=_np.int64)
            for lane, variant in enumerate(variants):
                for name, contents in variant.rom_contents.items():
                    self.memories[name][lane, :] = _np.array(
                        contents, dtype=_np.int64)
                for rf_name, inits in variant.initial_registers.items():
                    for register, value in inits:
                        self.registers[rf_name][lane, register] = value
            for word_index, word in enumerate(plan.words):
                for op_index, op in enumerate(word.ops):
                    if op.sem != SEM_CONST:
                        continue
                    self._const_tables[(word_index, op_index)] = _np.array(
                        [v.words[word_index].ops[op_index].operands[0][1]
                         for v in variants],
                        dtype=_np.int64)
        self.flags = _np.zeros((n_lanes, max(1, plan.n_flags)),
                               dtype=_np.int64)
        self.inputs: dict[str, _np.ndarray] = {}
        self.input_lengths: dict[str, _np.ndarray] = {}
        #: (port, lane index array, per-lane values) in emission order.
        self._out_chunks: list[tuple[str, _np.ndarray, _np.ndarray]] = []
        self._finished: list[_Context] = []
        #: Lane-cycles actually stepped (telemetry: ``sim.cycles``).
        self.lane_cycles = 0
        #: Frames consumed summed over lanes (telemetry: ``sim.frames``).
        self.lane_frames = 0

    # -- fixed-point kernels, vectorized --------------------------------

    def _wrap(self, x):
        return ((x + self._half) & self._mask) - self._half

    def _clip(self, x):
        return _np.clip(x, self._min, self._max)

    # -- stimulus -------------------------------------------------------

    def load_inputs(self, streams: list[dict[str, list[int]]]) -> None:
        """Load one stimulus dict per lane (``len(streams) == n_lanes``).

        Streams may have different lengths per lane; a lane reading past
        its own stream raises exactly like the scalar simulator."""
        if len(streams) != self.n_lanes:
            raise SimulationError(
                f"{len(streams)} stimulus dicts for {self.n_lanes} lanes")
        ports = sorted({port for lanes in streams for port in lanes})
        for port in ports:
            lengths = _np.array(
                [len(lane.get(port, ())) for lane in streams],
                dtype=_np.int64)
            width = int(lengths.max()) if len(lengths) else 0
            table = _np.zeros((self.n_lanes, max(width, 1)), dtype=_np.int64)
            for lane, stream in enumerate(streams):
                values = stream.get(port, ())
                if values:
                    table[lane, :len(values)] = _np.array(
                        values, dtype=_np.int64)
            self.inputs[port] = self._wrap(table)
            self.input_lengths[port] = lengths

    # -- execution ------------------------------------------------------

    def run_frames(self, n_frames: int,
                   max_cycles: int | None = None) -> list[dict[str, list[int]]]:
        """Run ``n_frames`` time-loop iterations on every lane; returns
        one output-stream dict per lane."""
        budget = _cycle_budget(self.plan, n_frames, max_cycles)
        root = _Context(
            lanes=_np.arange(self.n_lanes), start_tokens=n_frames,
            budget=budget,
        )
        work = [root]
        words = self.plan.words
        n_words = len(words)
        while work:
            ctx = work.pop()
            split = None
            while not ctx.halted and ctx.cycle < ctx.budget:
                if ctx.pc >= n_words:
                    raise SimulationError(f"PC {ctx.pc} outside the program")
                word = words[ctx.pc]
                if word.ctrl is CtrlOp.IDLE and ctx.start_tokens == 0:
                    break
                split = self._step(ctx, word)
                if split is not None:
                    work.extend(split)
                    break
            if split is not None:
                continue
            if not ctx.halted:
                if ctx.pc >= n_words:
                    raise SimulationError(f"PC {ctx.pc} outside the program")
                word = words[ctx.pc]
                if not (word.ctrl is CtrlOp.IDLE and ctx.start_tokens == 0):
                    raise SimulationError(
                        f"simulation did not settle within {ctx.budget} "
                        f"cycles"
                    )
            self._finished.append(ctx)
        self.lane_cycles = sum(
            ctx.cycle * len(ctx.lanes) for ctx in self._finished)
        self.lane_frames = sum(
            ctx.frame * len(ctx.lanes) for ctx in self._finished)
        return self._collect_outputs()

    def _step(self, ctx: _Context, word: WordPlan):
        """One cycle for every lane of ``ctx``; returns the two child
        contexts when a CJMP diverges, else ``None``."""
        lanes = ctx.lanes
        registers = self.registers
        produced: list[tuple[str, object, int]] = []
        memory_writes: list[tuple[str, object, object]] = []
        alu_result = None
        for op_index, op in enumerate(word.ops):
            values = [
                registers[src[1]][lanes, src[2]] if src[0] else src[1]
                for src in op.operands
            ]
            sem = op.sem
            if sem == SEM_ADD:
                result = self._wrap(values[0] + values[1])
            elif sem == SEM_MULT:
                result = self._wrap((values[0] * values[1]) >> self._frac)
            elif sem == SEM_SUB:
                result = self._wrap(values[0] - values[1])
            elif sem == SEM_ADD_CLIP:
                result = self._clip(values[0] + values[1])
            elif sem == SEM_PASS:
                result = self._wrap(values[0])
            elif sem == SEM_PASS_CLIP:
                result = self._clip(values[0])
            elif sem == SEM_ASR:
                result = self._wrap(values[0] >> op.constant)
            elif sem == SEM_RAM_READ or sem == SEM_ROM_READ:
                result = self._memory_gather(op.target, lanes, values[0])
            elif sem == SEM_RAM_WRITE:
                memory_writes.append((op.target, values[0], values[1]))
                result = None
            elif sem == SEM_ACU_ADDMOD:
                result = (values[0] + values[1]) % op.constant
            elif sem == SEM_ACU_INCA:
                result = (values[0] + 1) % op.constant
            elif sem == SEM_ACU_ADD:
                result = self._wrap(values[0] + values[1])
            elif sem == SEM_CONST:
                table = self._const_tables.get((word.index, op_index))
                result = values[0] if table is None else table[lanes]
            elif sem == SEM_INPUT:
                result = self._input_read(ctx, op.target)
            else:  # SEM_OUTPUT
                self._out_chunks.append((
                    op.target, lanes, _as_lane_array(values[0], len(lanes))))
                result = None
            if result is not None:
                if op.sets_flags:
                    alu_result = result
                if op.bus is not None:
                    produced.append(
                        (op.bus, result, ctx.cycle + op.latency - 1))

        bus_values: dict[str, object] = {}
        for bus, value in ctx.in_flight.pop(ctx.cycle, []):
            bus_values[bus] = value
        for bus, value, due in produced:
            if due == ctx.cycle:
                bus_values[bus] = value
            else:
                ctx.in_flight.setdefault(due, []).append((bus, value))

        for write in word.writes:
            if write.bus not in bus_values:
                raise SimulationError(
                    f"cycle {ctx.cycle}: register file {write.rf!r} expects "
                    f"a value on {write.bus!r} but nothing matured there"
                )
            registers[write.rf][lanes, write.addr] = bus_values[write.bus]
        for memory, address, value in memory_writes:
            self._memory_scatter(memory, lanes, address, value)
        if alu_result is not None and self.plan.n_flags:
            self.flags[lanes, 0] = _np.asarray(alu_result) < 0
            if self.plan.n_flags > 1:
                self.flags[lanes, 1] = _np.asarray(alu_result) == 0

        ctx.cycle += 1
        return self._advance(ctx, word)

    def _memory_gather(self, name: str, lanes, address):
        memory = self.memories[name]
        size = memory.shape[1]
        addresses = _np.asarray(address)
        if addresses.ndim == 0:
            addresses = _np.full(len(lanes), int(address), dtype=_np.int64)
        bad = (addresses < 0) | (addresses >= size)
        if bad.any():
            offender = int(addresses[bad][0])
            raise SimulationError(
                f"address {offender} outside memory {name!r} (size {size})"
            )
        return memory[lanes, addresses]

    def _memory_scatter(self, name: str, lanes, address, value) -> None:
        memory = self.memories[name]
        size = memory.shape[1]
        addresses = _np.asarray(address)
        if addresses.ndim == 0:
            addresses = _np.full(len(lanes), int(address), dtype=_np.int64)
        bad = (addresses < 0) | (addresses >= size)
        if bad.any():
            offender = int(addresses[bad][0])
            raise SimulationError(
                f"address {offender} outside memory {name!r} (size {size})"
            )
        memory[lanes, addresses] = value

    def _input_read(self, ctx: _Context, port: str):
        cursor = ctx.cursors.get(port, 0)
        lengths = self.input_lengths.get(port)
        if lengths is None or (lengths[ctx.lanes] <= cursor).any():
            raise SimulationError(f"input stream {port!r} exhausted")
        ctx.cursors[port] = cursor + 1
        return self.inputs[port][ctx.lanes, cursor]

    def _advance(self, ctx: _Context, word: WordPlan):
        ctrl = word.ctrl
        if ctrl is CtrlOp.CONT:
            ctx.pc += 1
        elif ctrl is CtrlOp.IDLE:
            if ctx.start_tokens > 0:
                ctx.start_tokens -= 1
                ctx.frame += 1
                ctx.pc += 1
        elif ctrl is CtrlOp.JUMP:
            ctx.pc = word.arg
        elif ctrl is CtrlOp.CJMP:
            taken = self.flags[ctx.lanes, word.flag] != 0
            if taken.all():
                ctx.pc = word.arg
            elif not taken.any():
                ctx.pc += 1
            else:
                child_taken, child_fall = ctx.split(taken)
                child_taken.pc = word.arg
                child_fall.pc = ctx.pc + 1
                return (child_taken, child_fall)
        elif ctrl is CtrlOp.LOOP:
            if len(ctx.stack) >= self.plan.stack_depth:
                raise SimulationError("loop stack overflow")
            ctx.stack.append((ctx.pc + 1, word.arg))
            ctx.pc += 1
        elif ctrl is CtrlOp.ENDL:
            if not ctx.stack:
                raise SimulationError("ENDL with empty loop stack")
            address, count = ctx.stack[-1]
            if count > 1:
                ctx.stack[-1] = (address, count - 1)
                ctx.pc = address
            else:
                ctx.stack.pop()
                ctx.pc += 1
        elif ctrl is CtrlOp.HALT:
            ctx.halted = True
        else:  # pragma: no cover - decode rejects unknown ops
            raise SimulationError(f"unhandled controller op {ctrl}")
        return None

    def _collect_outputs(self) -> list[dict[str, list[int]]]:
        """Per-lane output-stream dicts, in per-lane emission order."""
        results: list[dict[str, list[int]]] = [
            {} for _ in range(self.n_lanes)
        ]
        # Fast path: no divergence means every chunk covers the full
        # lane set in identity order — stack and transpose per port.
        full = all(
            len(lanes) == self.n_lanes and (lanes == _np.arange(
                self.n_lanes)).all()
            for _, lanes, _ in self._out_chunks
        )
        if full:
            by_port: dict[str, list[_np.ndarray]] = {}
            for port, _, values in self._out_chunks:
                by_port.setdefault(port, []).append(values)
            for port, rows in by_port.items():
                matrix = _np.stack(rows, axis=1)          # (N, n_values)
                for lane, row in enumerate(matrix.tolist()):
                    results[lane][port] = row
            return results
        for port, lanes, values in self._out_chunks:
            for lane, value in zip(lanes.tolist(), values.tolist()):
                results[lane].setdefault(port, []).append(value)
        return results


def _as_lane_array(value, n: int):
    array = _np.asarray(value)
    if array.ndim == 0:
        return _np.full(n, int(value), dtype=_np.int64)
    return array.copy()


# ---------------------------------------------------------------------------
# Entry points: engine selection, batched runs, stacked candidate runs.
# ---------------------------------------------------------------------------

def resolve_engine(engine: str, n_lanes: int) -> str:
    """The concrete engine an ``engine=`` parameter resolves to.

    ``"auto"`` consults ``REPRO_SIM_ENGINE`` (so CI can force the
    fallback process-wide), then picks numpy when it is available and
    the batch has at least :data:`NUMPY_MIN_LANES` lanes, else the
    decoded pure-Python engine.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown simulation engine {engine!r} "
            f"(known: {', '.join(ENGINES)})"
        )
    if engine == "auto":
        forced = os.environ.get("REPRO_SIM_ENGINE", "").strip().lower()
        if forced and forced != "auto":
            if forced not in ENGINES:
                raise SimulationError(
                    f"REPRO_SIM_ENGINE={forced!r} is not a known engine "
                    f"({', '.join(ENGINES)})"
                )
            engine = forced
        elif NUMPY_AVAILABLE and n_lanes >= NUMPY_MIN_LANES:
            engine = "numpy"
        else:
            engine = "decoded"
    if engine == "numpy" and not NUMPY_AVAILABLE:
        raise SimulationError(
            "engine='numpy' requested but numpy is not installed "
            "(pip install repro[batch], or use engine='decoded')"
        )
    return engine


def _frame_groups(program: EncodedProgram,
                  inputs: list[dict[str, list[int]]],
                  n_frames: int | None) -> dict[int, list[int]]:
    """Lane indices grouped by their frame count (batch lanes must run
    the same number of frames to stay in lockstep)."""
    from .machine import default_frame_count

    groups: dict[int, list[int]] = {}
    for lane, streams in enumerate(inputs):
        frames = (n_frames if n_frames is not None
                  else default_frame_count(program, streams))
        groups.setdefault(frames, []).append(lane)
    return groups


def _run_scalar_lane(program: EncodedProgram, streams: dict[str, list[int]],
                     n_frames: int | None) -> tuple[dict, int, int]:
    """One lane on the scalar oracle: (outputs, cycles, frames)."""
    from .machine import CoreSimulator, default_frame_count

    frames = (n_frames if n_frames is not None
              else default_frame_count(program, streams))
    simulator = CoreSimulator(program)
    simulator.load_inputs(streams)
    outputs = simulator.run_frames(frames)
    return outputs, simulator.cycle, simulator.frame


def run_batch(
    program: EncodedProgram,
    inputs: list[dict[str, list[int]]],
    n_frames: int | None = None,
    engine: str = "auto",
    plan: DecodedPlan | None = None,
) -> list[dict[str, list[int]]]:
    """Simulate one program over a batch of stimulus lanes.

    ``inputs`` is one stream dict per lane; the result is one output
    dict per lane, in order, bit-identical to running each lane on the
    scalar oracle.  ``n_frames`` applies to every lane (default: each
    lane's own stream-derived frame count; lanes wanting different
    counts are grouped and run per count).  ``engine`` is one of
    :data:`ENGINES`; ``"auto"`` programs that the decoded plan cannot
    express fall back to the scalar loop transparently.  Pass a
    prebuilt ``plan`` to amortize :func:`decode_program` across calls.
    """
    if not inputs:
        return []
    resolved = resolve_engine(engine, len(inputs))
    obs = current_telemetry()
    with obs.span("simulate", engine=resolved, lanes=len(inputs),
                  n_frames=n_frames) as span:
        if resolved != "scalar" and plan is None:
            try:
                plan = decode_program(program)
            except PlanError:
                if engine != "auto":
                    raise
                resolved = "scalar"
                span.tag(engine="scalar", fallback="plan")
        if resolved == "scalar":
            outputs = []
            cycles = frames = 0
            for streams in inputs:
                lane_out, lane_cycles, lane_frames = _run_scalar_lane(
                    program, streams, n_frames)
                outputs.append(lane_out)
                cycles += lane_cycles
                frames += lane_frames
        elif resolved == "decoded":
            outputs = []
            cycles = frames = 0
            from .machine import default_frame_count

            for streams in inputs:
                lane_frames = (n_frames if n_frames is not None
                               else default_frame_count(program, streams))
                simulator = DecodedSimulator(plan)
                simulator.load_inputs(streams)
                outputs.append(simulator.run_frames(lane_frames))
                cycles += simulator.cycle
                frames += simulator.frame
        else:
            outputs = [None] * len(inputs)
            cycles = frames = 0
            for frames_wanted, lanes in sorted(
                    _frame_groups(program, inputs, n_frames).items()):
                simulator = BatchSimulator(plan, len(lanes))
                simulator.load_inputs([inputs[lane] for lane in lanes])
                group_out = simulator.run_frames(frames_wanted)
                for lane, lane_out in zip(lanes, group_out):
                    outputs[lane] = lane_out
                cycles += simulator.lane_cycles
                frames += simulator.lane_frames
        obs.count("sim.cycles", cycles)
        obs.count("sim.frames", frames)
        obs.count("sim.batch_width", len(inputs))
    return outputs


def run_programs(
    programs: list[EncodedProgram],
    inputs: list[dict[str, list[int]]] | dict[str, list[int]],
    n_frames: int | None = None,
    engine: str = "auto",
) -> list[dict[str, list[int]]]:
    """Simulate several program variants, stacking the ones that share
    a control path into single batches.

    ``programs`` is one encoded program per candidate (e.g. the same
    application compiled with different coefficients across explorer
    candidates).  ``inputs`` is either one stream dict shared by every
    program or a per-program list.  Programs whose
    :meth:`DecodedPlan.structure_key` matches — identical control path,
    per-lane ROM contents / initial registers / CONST immediates — are
    executed as lanes of one :class:`BatchSimulator`; the rest run per
    program.  Returns one output dict per program, in order.
    """
    if not programs:
        return []
    if isinstance(inputs, dict):
        inputs = [inputs] * len(programs)
    if len(inputs) != len(programs):
        raise SimulationError(
            f"{len(inputs)} stimulus dicts for {len(programs)} programs")
    resolved = resolve_engine(engine, len(programs))
    if resolved != "numpy":
        return [
            out
            for program, streams in zip(programs, inputs)
            for out in run_batch(program, [streams], n_frames, engine=engine)
        ]

    # Group by structural plan: equal keys share one decoded control
    # path and differ only in per-lane ROM/initial-register data.
    plans = []
    groups: dict[tuple, list[int]] = {}
    for index, program in enumerate(programs):
        try:
            plan = decode_program(program)
            key = plan.structure_key()
        except PlanError:
            if engine not in ("auto",):
                raise
            plan, key = None, ("scalar", index)
        plans.append(plan)
        groups.setdefault(key, []).append(index)

    obs = current_telemetry()
    results: list[dict[str, list[int]] | None] = [None] * len(programs)
    for key, members in groups.items():
        if plans[members[0]] is None:
            for index in members:
                results[index] = run_batch(
                    programs[index], [inputs[index]], n_frames,
                    engine="scalar")[0]
            continue
        if len(members) == 1:
            index = members[0]
            results[index] = run_batch(
                programs[index], [inputs[index]], n_frames,
                engine=engine, plan=plans[index])[0]
            continue
        plan = plans[members[0]]
        member_inputs = [inputs[index] for index in members]
        by_frames: dict[int, list[int]] = {}
        for position, index in enumerate(members):
            from .machine import default_frame_count

            frames = (n_frames if n_frames is not None
                      else default_frame_count(programs[index],
                                               inputs[index]))
            by_frames.setdefault(frames, []).append(position)
        with obs.span("simulate", engine="numpy", lanes=len(members),
                      n_frames=n_frames, stacked=True):
            cycles = frames_total = 0
            for frames_wanted, positions in sorted(by_frames.items()):
                simulator = BatchSimulator(
                    plan, len(positions),
                    variants=[plans[members[p]] for p in positions])
                simulator.load_inputs(
                    [member_inputs[p] for p in positions])
                group_out = simulator.run_frames(frames_wanted)
                for position, lane_out in zip(positions, group_out):
                    results[members[position]] = lane_out
                cycles += simulator.lane_cycles
                frames_total += simulator.lane_frames
            obs.count("sim.cycles", cycles)
            obs.count("sim.frames", frames_total)
            obs.count("sim.batch_width", len(members))
    return results
