"""Cycle-accurate simulation of an in-house core running its microcode.

The simulator executes the *encoded binary* — not the RT list — so it
independently checks the whole chain: RT generation, conflict
modelling, scheduling, register allocation and instruction encoding.
Its output streams must match the golden reference interpreter
bit-exactly.

Machine model (figures 3 and 4)
-------------------------------
* Register files read at the start of a cycle, write at its end.
* Every active OPU computes one result per issue; pipelined OPUs
  deliver it onto their bus ``latency - 1`` cycles later, which is also
  when the destination fields of the instruction word take effect.
* RAM writes commit at the end of the cycle; RAM cannot read and write
  simultaneously (the usage model never schedules that).
* The controller runs CONT/IDLE/JUMP/CJMP/LOOP/ENDL/HALT with a loop
  stack of configurable depth.  IDLE waits for the start signal that
  arrives once per sample frame.
* ALU-kind OPUs update the datapath flags (flag 0: negative, flag 1:
  zero) when the controller has flags.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.controller import CtrlOp
from ..arch.opu import OpuKind
from ..encode.assembler import EncodedProgram
from ..encode.fields import CTRL_DECODE, opcode_table
from ..errors import SimulationError
from ..fixed import FixedFormat
from ..obs import current_telemetry


@dataclass
class TraceEntry:
    """One executed word (for debugging and the Gantt report)."""

    cycle: int
    pc: int
    ctrl: CtrlOp
    active: dict[str, str]            # OPU -> operation
    bus_values: dict[str, int]        # bus -> value delivered this cycle


class CoreSimulator:
    """Executes an :class:`~repro.encode.assembler.EncodedProgram`."""

    def __init__(self, program: EncodedProgram):
        self.program = program
        core = program.core
        self.core = core
        self.dp = core.datapath
        self.fmt = FixedFormat(core.data_width, core.frac_bits)
        self.opcodes = opcode_table(core)
        self._opcode_names = {
            opu: {code: name for name, code in table.items()}
            for opu, table in self.opcodes.items()
        }

        self.registers: dict[str, list[int]] = {
            rf.name: [0] * rf.size for rf in self.dp.register_files.values()
        }
        for rf_name, inits in program.initial_registers.items():
            for register, value in inits:
                self.registers[rf_name][register] = value
        self.memories: dict[str, list[int]] = {}
        for opu in self.dp.opus.values():
            if opu.kind is OpuKind.RAM:
                self.memories[opu.name] = [0] * opu.memory_size
            elif opu.kind is OpuKind.ROM:
                contents = list(program.rom_words)
                contents += [0] * (opu.memory_size - len(contents))
                self.memories[opu.name] = contents

        self.pc = 0
        self.stack: list[tuple[int, int]] = []
        self.flags = [0] * max(1, core.controller.n_flags)
        self.cycle = 0
        self.frame = 0
        self.halted = False
        self.start_tokens = 0

        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self._input_cursor: dict[str, int] = {}
        #: results computed earlier, maturing on a bus at a later cycle:
        #: (due cycle) -> list of (bus name, value)
        self._in_flight: dict[int, list[tuple[str, int]]] = {}
        self.trace: list[TraceEntry] = []
        self.keep_trace = False

    # ------------------------------------------------------------------

    def load_inputs(self, streams: dict[str, list[int]]) -> None:
        self.inputs = {port: list(values) for port, values in streams.items()}
        self._input_cursor = {port: 0 for port in streams}

    def run_frames(self, n_frames: int, max_cycles: int | None = None) -> dict[str, list[int]]:
        """Run ``n_frames`` complete time-loop iterations.

        The start signal is granted once per frame; the run ends when
        the controller idles with no frames left (or HALTs).
        """
        self.start_tokens += n_frames
        budget = max_cycles if max_cycles is not None else (
            (n_frames + 1) * max(len(self.program.words) * 4, 64)
        )
        while not self.halted and self.cycle < budget:
            if self._at_idle_without_token():
                break
            self.step()
        if not self.halted and not self._at_idle_without_token():
            raise SimulationError(
                f"simulation did not settle within {budget} cycles"
            )
        return {port: list(values) for port, values in self.outputs.items()}

    def _at_idle_without_token(self) -> bool:
        if self.pc >= len(self.program.words):
            raise SimulationError(f"PC {self.pc} outside the program")
        fields = self.program.format.decode(self.program.words[self.pc])
        ctrl = CTRL_DECODE[fields["ctrl.op"]]
        return ctrl is CtrlOp.IDLE and self.start_tokens == 0

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction word (one machine cycle)."""
        if self.halted:
            raise SimulationError("stepping a halted core")
        word = self.program.words[self.pc]
        fields = self.program.format.decode(word)
        ctrl = CTRL_DECODE[fields["ctrl.op"]]

        # Phase 1: all active OPUs read operands and compute.
        produced: list[tuple[str, int, int]] = []   # bus, value, due cycle
        register_writes: list[tuple[str, int, int]] = []
        memory_writes: list[tuple[str, int, int]] = []
        active: dict[str, str] = {}
        alu_result: int | None = None
        body_cycle = self.pc - self.program.body_offset

        for opu in self.dp.opus.values():
            opcode = fields.get(f"{opu.name}.op", 0)
            if opcode == 0:
                continue
            operation_name = self._opcode_names[opu.name][opcode]
            operation = opu.operation(operation_name)
            active[opu.name] = operation_name
            operands = self._read_operands(opu, operation, fields)
            result = self._execute(
                opu, operation_name, operands, memory_writes, body_cycle
            )
            if opu.kind is OpuKind.ALU and result is not None:
                alu_result = result
            if result is not None and opu.bus is not None:
                produced.append(
                    (opu.bus.name, result, self.cycle + operation.latency - 1)
                )

        # Phase 2: results maturing *this* cycle appear on their buses.
        bus_values: dict[str, int] = {}
        for bus, value in self._in_flight.pop(self.cycle, []):
            bus_values[bus] = value
        for bus, value, due in produced:
            if due == self.cycle:
                bus_values[bus] = value
            else:
                self._in_flight.setdefault(due, []).append((bus, value))

        # Phase 3: destination fields route bus values into registers.
        for rf in self.dp.register_files.values():
            if not fields.get(f"{rf.name}.wr_en", 0):
                continue
            address = fields.get(f"{rf.name}.wr_addr", 0)
            bus = self._selected_bus(rf, fields)
            if bus not in bus_values:
                raise SimulationError(
                    f"cycle {self.cycle}: register file {rf.name!r} expects "
                    f"a value on {bus!r} but nothing matured there"
                )
            register_writes.append((rf.name, address, bus_values[bus]))

        # Phase 4: commit (registers and memory write at end of cycle).
        for rf_name, address, value in register_writes:
            if address >= len(self.registers[rf_name]):
                raise SimulationError(
                    f"register index {address} outside {rf_name!r}"
                )
            self.registers[rf_name][address] = value
        for memory, address, value in memory_writes:
            self.memories[memory][address] = value
        if alu_result is not None and self.core.controller.n_flags:
            self.flags[0] = 1 if alu_result < 0 else 0
            if self.core.controller.n_flags > 1:
                self.flags[1] = 1 if alu_result == 0 else 0

        if self.keep_trace:
            self.trace.append(TraceEntry(
                cycle=self.cycle, pc=self.pc, ctrl=ctrl,
                active=active, bus_values=dict(bus_values),
            ))

        self._advance_pc(ctrl, fields)
        self.cycle += 1

    # ------------------------------------------------------------------

    def _read_operands(self, opu, operation, fields) -> list[int]:
        operands: list[int] = []
        for index in range(operation.arity):
            port = opu.ports[index]
            if port.accepts_immediate:
                raw = fields.get(f"{opu.name}.p{index}.imm", 0)
                if opu.kind is OpuKind.CONST:
                    raw = self._sign_extend(raw, self.core.data_width)
                operands.append(raw)
            else:
                rf = port.register_file
                address = fields.get(f"{opu.name}.p{index}.addr", 0)
                operands.append(self.registers[rf.name][address])
        return operands

    def _execute(self, opu, operation_name, operands, memory_writes,
                 body_cycle) -> int | None:
        kind = opu.kind
        if kind is OpuKind.RAM:
            if operation_name == "read":
                return self._memory_fetch(opu.name, operands[0])
            if operation_name == "write":
                self._memory_check(opu.name, operands[0])
                memory_writes.append((opu.name, operands[0], operands[1]))
                return None
        if kind is OpuKind.ROM:
            return self._memory_fetch(opu.name, operands[0])
        if kind is OpuKind.ACU:
            modulus = self.program.acu_moduli.get(opu.name, 1)
            if operation_name == "addmod":
                return (operands[0] + operands[1]) % modulus
            if operation_name == "inca":
                return (operands[0] + 1) % modulus
            if operation_name == "add":
                return self.fmt.wrap(operands[0] + operands[1])
        if kind is OpuKind.CONST:
            return operands[0]
        if kind is OpuKind.INPUT:
            port = self.program.input_map.get((opu.name, body_cycle))
            if port is None:
                raise SimulationError(
                    f"input read on {opu.name!r} at body cycle {body_cycle} "
                    f"has no logical port"
                )
            cursor = self._input_cursor.get(port, 0)
            stream = self.inputs.get(port, [])
            if cursor >= len(stream):
                raise SimulationError(f"input stream {port!r} exhausted")
            self._input_cursor[port] = cursor + 1
            return self.fmt.wrap(stream[cursor])
        if kind is OpuKind.OUTPUT:
            port = self.program.output_map.get((opu.name, body_cycle))
            if port is None:
                raise SimulationError(
                    f"output write on {opu.name!r} at body cycle "
                    f"{body_cycle} has no logical port"
                )
            self.outputs.setdefault(port, []).append(operands[0])
            return None
        # ALU / MULT / ASU: shared fixed-point semantics.
        return self.fmt.apply(operation_name, *operands)

    def _memory_fetch(self, memory: str, address: int) -> int:
        self._memory_check(memory, address)
        return self.memories[memory][address]

    def _memory_check(self, memory: str, address: int) -> None:
        if not 0 <= address < len(self.memories[memory]):
            raise SimulationError(
                f"address {address} outside memory {memory!r} "
                f"(size {len(self.memories[memory])})"
            )

    def _selected_bus(self, rf, fields) -> str:
        mux = self.dp.muxes.get(f"mux_{rf.name}")
        if mux is not None:
            select = fields.get(f"{rf.name}.mux", 0)
            if select >= len(mux.inputs):
                raise SimulationError(
                    f"mux select {select} outside mux of {rf.name!r}"
                )
            return mux.inputs[select].name
        writers = [w for w in rf.writers]
        if not writers:
            raise SimulationError(f"register file {rf.name!r} has no writer")
        return self._bus_of_sink(writers[0])

    def _bus_of_sink(self, sink) -> str:
        for bus in self.dp.buses.values():
            if sink in bus.sinks:
                return bus.name
        raise SimulationError("sink without a bus")

    @staticmethod
    def _sign_extend(value: int, width: int) -> int:
        if value & (1 << (width - 1)):
            return value - (1 << width)
        return value

    def _advance_pc(self, ctrl: CtrlOp, fields) -> None:
        controller = self.core.controller
        if ctrl not in controller.allowed_ops():
            raise SimulationError(
                f"controller op {ctrl.value!r} not supported by this core"
            )
        if ctrl is CtrlOp.CONT:
            self.pc += 1
        elif ctrl is CtrlOp.IDLE:
            if self.start_tokens > 0:
                self.start_tokens -= 1
                self.frame += 1
                self.pc += 1
            # else: spin on the IDLE word (run_frames stops us earlier)
        elif ctrl is CtrlOp.JUMP:
            self.pc = fields["ctrl.arg"]
        elif ctrl is CtrlOp.CJMP:
            flag_index = fields.get("ctrl.flag", 0)
            if self.flags[flag_index]:
                self.pc = fields["ctrl.arg"]
            else:
                self.pc += 1
        elif ctrl is CtrlOp.LOOP:
            if len(self.stack) >= controller.stack_depth:
                raise SimulationError("loop stack overflow")
            self.stack.append((self.pc + 1, fields["ctrl.arg"]))
            self.pc += 1
        elif ctrl is CtrlOp.ENDL:
            if not self.stack:
                raise SimulationError("ENDL with empty loop stack")
            address, count = self.stack[-1]
            if count > 1:
                self.stack[-1] = (address, count - 1)
                self.pc = address
            else:
                self.stack.pop()
                self.pc += 1
        elif ctrl is CtrlOp.HALT:
            self.halted = True
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unhandled controller op {ctrl}")


def default_frame_count(
    program: EncodedProgram, inputs: dict[str, list[int]]
) -> int:
    """Stream-derived frame count: the shortest input stream divided by
    the block size (a block-repeat program consumes ``repeat_count``
    samples per stream per frame).

    A stream too short for even one frame is an error — the old
    behaviour of computing zero frames and silently returning empty
    output streams hid stimulus bugs.
    """
    if not inputs:
        raise SimulationError("n_frames is required without inputs")
    port = min(inputs, key=lambda name: len(inputs[name]))
    shortest = len(inputs[port])
    n_frames = shortest // program.repeat_count
    if n_frames == 0:
        raise SimulationError(
            f"input stream {port!r} has {shortest} samples but one frame "
            f"consumes {program.repeat_count}; supply at least a full "
            f"frame or pass n_frames explicitly"
        )
    return n_frames


def run_program(
    program: EncodedProgram,
    inputs: dict[str, list[int]],
    n_frames: int | None = None,
) -> dict[str, list[int]]:
    """Convenience wrapper: fresh simulator, run, return output streams.

    ``n_frames`` counts *start signals*; the default comes from
    :func:`default_frame_count`.  This is the scalar oracle path — the
    batch engines live in :mod:`repro.sim.batch` and are asserted
    bit-identical to it.
    """
    if n_frames is None:
        n_frames = default_frame_count(program, inputs)
    obs = current_telemetry()
    with obs.span("simulate", engine="scalar", lanes=1, n_frames=n_frames):
        simulator = CoreSimulator(program)
        simulator.load_inputs(inputs)
        outputs = simulator.run_frames(n_frames)
        obs.count("sim.cycles", simulator.cycle)
        obs.count("sim.frames", simulator.frame)
        obs.count("sim.batch_width", 1)
    return outputs
