"""The complete code generator: source → running microcode.

This is figure 1b end to end, with a machine-independent optimizer
layered in front:

0. **DFG optimization** (:mod:`repro.opt`) — constant folding, common
   subexpressions, algebraic identities, strength reduction and dead
   code removed from the data-flow graph (``-O0``/``-O1``/``-O2``,
   default ``-O1``).
1. **RT generation** (:mod:`repro.rtgen`) — lower the application's
   data-flow graph onto the core's datapath.
2. **RT modification** (:mod:`repro.core`) — merge register files and
   buses, then impose the instruction set by adding artificial conflict
   resources (sections 6.1-6.3).
3. **Scheduling & instruction encoding** (:mod:`repro.sched`,
   :mod:`repro.encode`) — pack RTs into VLIW instructions within the
   cycle budget, allocate registers, emit binary microcode.

:func:`compile_application` returns a :class:`CompiledProgram` with all
intermediate artifacts, so reports and benches can inspect every stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .arch.library import CoreSpec
from .arch.merge import MergeSpec
from .core.artificial import ConflictModel, impose_instruction_set
from .core.instruction_set import InstructionSet
from .core.merge import apply_merges, merged_register_file_sizes
from .core.rtclass import ClassTable
from .encode.assembler import EncodedProgram, assemble
from .lang.dfg import Dfg
from .lang.parser import parse_source
from .opt import OptReport, optimize
from .rtgen.generator import generate_rts
from .rtgen.program import RTProgram
from .sched.dependence import DependenceGraph, build_dependence_graph
from .sched.list_scheduler import list_schedule
from .sched.regalloc import Allocation, allocate_registers
from .sched.schedule import Schedule
from .sim.machine import run_program


@dataclass
class CompiledProgram:
    """Every artifact of one compilation, ready for inspection.

    ``dfg`` is the graph actually lowered (post-optimizer);
    ``source_dfg`` preserves the application as written and
    ``opt_report`` records what the optimizer did between the two.
    """

    core: CoreSpec
    dfg: Dfg
    rt_program: RTProgram
    conflict_model: ConflictModel
    dependence_graph: DependenceGraph
    schedule: Schedule
    allocation: Allocation
    binary: EncodedProgram
    source_dfg: Dfg | None = None
    opt_report: OptReport | None = None

    @property
    def n_cycles(self) -> int:
        """Time-loop length in instructions (the paper's figure of merit)."""
        return self.schedule.length

    def run(self, inputs: dict[str, list[int]],
            n_frames: int | None = None) -> dict[str, list[int]]:
        """Execute the binary on the cycle-accurate core simulator."""
        return run_program(self.binary, inputs, n_frames)


def compile_application(
    application: Dfg | str,
    core: CoreSpec,
    budget: int | None = None,
    io_binding: dict[str, str] | None = None,
    merges: MergeSpec | None = None,
    cover_algorithm: str = "greedy",
    restarts: int = 0,
    seed: int = 0,
    mode: str = "loop",
    repeat_count: int = 1,
    opt_level: int = 1,
) -> CompiledProgram:
    """Compile an application (source text or DFG) onto a core.

    Parameters
    ----------
    budget:
        The user-specified time-loop cycle budget (section 2: "the
        cycle budget is specified by the user").  ``None`` compiles for
        minimum length.
    merges:
        Register-file/bus merges of the final core (applied as RT
        modifications, step 2a).
    cover_algorithm:
        Edge-clique-cover algorithm for the artificial resources.
    restarts:
        Extra list-scheduler attempts with jittered priorities.
    opt_level:
        Machine-independent optimization level (0, 1 or 2, see
        :mod:`repro.opt`).  ``0`` lowers the graph exactly as written.
    """
    source_dfg = (parse_source(application) if isinstance(application, str)
                  else application)
    dfg, opt_report = optimize(source_dfg, core=core, level=opt_level)
    rt_program = generate_rts(dfg, core, io_binding)
    base_program = rt_program
    base_rts = list(rt_program.rts)

    capacities = None
    merged = merges is not None and not merges.is_empty
    if merged:
        capacities = merged_register_file_sizes(rt_program, merges)
        rt_program = apply_merges(rt_program, merges)

    table = ClassTable.from_core(core)
    instruction_set = InstructionSet.from_desired(
        table.names, core.instruction_types
    )
    model = impose_instruction_set(
        rt_program.rts, table, instruction_set, cover_algorithm=cover_algorithm
    )
    rt_program.rts = model.rts

    graph = build_dependence_graph(rt_program)
    schedule = list_schedule(graph, budget=budget, restarts=restarts, seed=seed)
    schedule.validate(graph)
    allocation = allocate_registers(rt_program, schedule, capacities)

    if merged:
        # Merging only *restricts* parallelism, so the merged schedule
        # is cycle-for-cycle valid on the distributed datapath too.
        # Binary generation and simulation target the physical
        # (unmerged) core: transplant the cycles onto the original RTs.
        encode_cycles = {
            base: schedule.cycle_of[scheduled]
            for base, scheduled in zip(base_rts, rt_program.rts)
        }
        encode_schedule = Schedule(
            cycle_of=encode_cycles, length=schedule.length,
            budget=schedule.budget,
        )
        encode_allocation = allocate_registers(base_program, encode_schedule)
        binary = assemble(base_program, encode_schedule,
                          encode_allocation, mode=mode,
                          repeat_count=repeat_count)
    else:
        binary = assemble(rt_program, schedule, allocation, mode=mode,
                          repeat_count=repeat_count)
    return CompiledProgram(
        core=core,
        dfg=dfg,
        rt_program=rt_program,
        conflict_model=model,
        dependence_graph=graph,
        schedule=schedule,
        allocation=allocation,
        binary=binary,
        source_dfg=source_dfg,
        opt_report=opt_report,
    )
