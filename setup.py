"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine lacks ``bdist_wheel`` (offline,
no ``wheel`` distribution), so editable installs fall back to the
legacy path: ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
