"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine lacks ``bdist_wheel`` (offline,
no ``wheel`` distribution), so editable installs fall back to the
legacy path: ``pip install -e . --no-build-isolation --no-use-pep517``.

The core package is dependency-free; ``repro[batch]`` adds numpy for
the vectorized batch simulator (``repro.sim.batch`` — every entry
point degrades to the pure-Python decoded engine without it, see
``docs/simulator.md``).
"""

from setuptools import setup

setup(
    extras_require={
        "batch": ["numpy"],
    },
)
