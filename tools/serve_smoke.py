#!/usr/bin/env python3
"""End-to-end smoke test for the compile server (docs/serving.md).

Starts a real ``repro serve`` subprocess on an ephemeral port, then
proves the four things that make the service trustworthy:

1. a compile submitted over HTTP returns a microcode image
   bit-identical to a local ``Toolchain.compile`` of the same source;
2. re-submitting the same job executes **zero** stages — the result is
   restored from the shared cache backend, observed both in the job's
   own cache accounting and in the server's aggregated
   ``stagecache.*`` counters;
3. ``repro cache stats`` / ``verify`` see a clean store and
   ``repro cache gc --min-age`` protects fresh (in-flight) entries
   while a plain bounded gc actually empties it;
4. the server shuts down cleanly on SIGINT.

Run locally with::

    PYTHONPATH=src python tools/serve_smoke.py

Exits 0 on success, 1 with a one-line reason on the first failure.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import CompileOptions, Toolchain, audio_core  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

SOURCE = """
app smoke;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

N_STAGES = 8
STARTUP_PATTERN = re.compile(r"repro serve: (http://[\d.]+:\d+) ")


def fail(reason: str) -> None:
    print(f"serve smoke: FAIL — {reason}", file=sys.stderr)
    sys.exit(1)


def step(message: str) -> None:
    print(f"serve smoke: {message}")


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def start_server(cache_dir: str):
    """Spawn ``repro serve --port 0`` and return (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--executor", "process", "--cache", cache_dir],
        stderr=subprocess.PIPE, text=True, env=child_env(),
    )
    lines: list[str] = []

    def drain() -> None:
        for line in process.stderr:
            lines.append(line)

    threading.Thread(target=drain, daemon=True).start()
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        for line in lines:
            match = STARTUP_PATTERN.search(line)
            if match:
                return process, match.group(1)
        if process.poll() is not None:
            fail(f"server exited at startup: {''.join(lines).strip()}")
        time.sleep(0.05)
    process.kill()
    fail("server did not announce its URL within 30s")


def cache_cli(action: str, cache_dir: str, *extra: str) -> int:
    command = [sys.executable, "-m", "repro", "cache", action,
               "--cache-dir", cache_dir, *extra]
    return subprocess.run(command, env=child_env()).returncode


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    process, url = start_server(cache_dir)
    try:
        client = ServeClient(url)
        health = client.health()
        step(f"server up at {url} (version {health.get('version')})")

        # 1. HTTP compile, bit-identical to a local one.
        job = client.submit(SOURCE, "audio", options={"budget": 64},
                            name="smoke")
        first = client.wait(job["id"], timeout=120)
        if first["state"] != "done":
            fail(f"first job ended {first['state']}: {first.get('error')}")
        local = Toolchain(audio_core(), cache=None,
                          options=CompileOptions(budget=64)).compile(SOURCE)
        local_words = [hex(word) for word in local.binary.words]
        if first["result"]["program"]["words"] != local_words:
            fail("HTTP result is not bit-identical to the local compile")
        step("HTTP compile bit-identical to local Toolchain.compile")

        # 2. Re-submission restores everything from the shared backend.
        before = client.stats()["counters"].get("stagecache.miss", 0)
        second = client.wait(client.submit(SOURCE, "audio",
                                           options={"budget": 64},
                                           name="smoke-again")["id"],
                             timeout=120)
        if second["state"] != "done":
            fail(f"second job ended {second['state']}")
        cache_counts = second["result"]["cache"]
        if cache_counts["executed"] != 0:
            fail(f"re-submission executed stages: {cache_counts}")
        after = client.stats()["counters"].get("stagecache.miss", 0)
        if after != before:
            fail(f"re-submission missed the cache "
                 f"(stagecache.miss {before} -> {after})")
        if second["result"]["program"]["words"] != local_words:
            fail("re-submitted result is not bit-identical")
        step(f"re-submission executed zero stages ({cache_counts})")

        # The server-side view agrees.
        remote = client.cache_stats()["cache"]
        if remote["entries"] < N_STAGES:
            fail(f"server store holds {remote['entries']} entries, "
                 f"expected >= {N_STAGES}")
    finally:
        process.send_signal(signal.SIGINT)
        try:
            code = process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("server ignored SIGINT")
    if code != 0:
        fail(f"server exited {code} on SIGINT")
    step("server shut down cleanly on SIGINT")

    # 3. Cache administration against the store the server filled.
    if cache_cli("stats", cache_dir) != 0:
        fail("repro cache stats exited non-zero")
    if cache_cli("verify", cache_dir) != 0:
        fail("repro cache verify found a dirty store")
    if cache_cli("gc", cache_dir, "--max-bytes", "0",
                 "--min-age", "3600") != 0:
        fail("repro cache gc (min-age) exited non-zero")
    from repro.pipeline import DiskCache
    if len(DiskCache(cache_dir).keys()) < N_STAGES:
        fail("gc --min-age evicted fresh (in-flight-age) entries")
    step("gc --min-age 3600 protected every fresh entry")
    if cache_cli("gc", cache_dir, "--max-bytes", "0") != 0:
        fail("repro cache gc exited non-zero")
    if DiskCache(cache_dir).keys():
        fail("gc --max-bytes 0 left entries behind")
    step("gc --max-bytes 0 emptied the store")

    print("serve smoke: OK")


if __name__ == "__main__":
    main()
