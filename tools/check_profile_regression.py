#!/usr/bin/env python3
"""Fail CI when a pipeline stage's share of compile time regresses.

Compares a fresh ``repro profile`` record (``BENCH_compile_profile.json``,
produced by ``python -m repro profile --app audio --out ...``) against
the committed baseline ``benchmarks/compile_profile_baseline.json``.

Absolute wall clock is machine-dependent, so the guard is *normalized*:
for each regime (``cold``, ``warm``) every stage's p50 is divided by
that regime's total p50, and the resulting *share* is compared to the
baseline's share.  A stage whose share grew by more than ``--max-ratio``
(default 3×) fails — that shape change survives hardware differences,
while a uniformly slower CI runner does not trip it.

Two noise guards:

* stages whose current p50 is below ``--min-seconds`` (default 2 ms)
  never fail — at sub-millisecond durations the share is timer noise;
* a stage missing from the baseline (a newly added pipeline stage)
  is reported as informational, never a failure — commit a refreshed
  baseline to start guarding it.

Usage::

    python tools/check_profile_regression.py BENCH_compile_profile.json \
        [--baseline benchmarks/compile_profile_baseline.json] \
        [--max-ratio 3.0] [--min-seconds 0.002]

Exits 0 when every stage's share is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REGIMES = ("cold", "warm")


def shares(regime: dict[str, dict[str, float]]) -> dict[str, float]:
    """Stage -> p50 share of the regime's total p50."""
    total = regime["total"]["p50"]
    if total <= 0.0:
        return {}
    return {
        stage: stats["p50"] / total
        for stage, stats in regime.items()
        if stage != "total"
    }


def check_regime(
    name: str,
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    max_ratio: float,
    min_seconds: float,
    problems: list[str],
    notes: list[str],
) -> None:
    current_shares = shares(current)
    baseline_shares = shares(baseline)
    for stage, share in sorted(current_shares.items()):
        if stage not in baseline_shares:
            notes.append(
                f"{name}: stage {stage!r} has no baseline share — "
                f"refresh benchmarks/compile_profile_baseline.json to "
                f"guard it"
            )
            continue
        if current[stage]["p50"] < min_seconds:
            continue  # sub-noise-floor absolute time: share is noise
        base = baseline_shares[stage]
        if base <= 0.0:
            continue
        ratio = share / base
        if ratio > max_ratio:
            problems.append(
                f"{name}: stage {stage!r} share of total p50 grew "
                f"{ratio:.1f}x (baseline {base:.1%} -> now {share:.1%}, "
                f"p50 {current[stage]['p50'] * 1e3:.2f} ms) — "
                f"limit {max_ratio:.1f}x"
            )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="compare a repro profile record against the "
                    "committed per-stage baseline")
    parser.add_argument("profile",
                        help="fresh profile JSON (repro profile --out ...)")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "benchmarks" / "compile_profile_baseline.json"),
        help="committed baseline record (default: "
             "benchmarks/compile_profile_baseline.json)")
    parser.add_argument("--max-ratio", type=float, default=3.0,
                        help="largest tolerated share growth (default 3.0)")
    parser.add_argument("--min-seconds", type=float, default=0.002,
                        help="stages faster than this never fail "
                             "(default 0.002)")
    args = parser.parse_args(argv[1:])

    current = json.loads(Path(args.profile).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    problems: list[str] = []
    notes: list[str] = []
    for regime in REGIMES:
        check_regime(regime, current[regime], baseline[regime],
                     args.max_ratio, args.min_seconds, problems, notes)

    for note in notes:
        print(f"note: {note}")
    if problems:
        print(f"{len(problems)} stage-share regression(s) vs "
              f"{args.baseline}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    checked = sum(
        1 for regime in REGIMES
        for stage in current[regime] if stage != "total"
    )
    print(f"profile shares ok: {checked} stage regimes within "
          f"{args.max_ratio:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
