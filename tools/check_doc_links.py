#!/usr/bin/env python3
"""Fail CI on broken intra-repo Markdown links (and stale doc tables).

Scans every ``*.md`` file in the repository for inline links and
images (``[text](target)``), and checks that:

* relative targets resolve to an existing file or directory;
* fragment links (``#anchor`` — bare, or appended to a Markdown
  target) name a heading that actually exists, using GitHub's
  heading-slug rules.

It also checks two code/doc lockstep tables:

* the telemetry counter table in ``docs/observability.md`` matches the
  canonical ``repro.obs.COUNTERS`` dict exactly — every counter the
  code can emit is documented, and no documented counter has been
  removed from the code;
* the diagnostic-code table in ``docs/analysis.md`` matches
  ``repro.analyze.CHECK_CODES`` the same way.

External schemes (``http://``, ``https://``, ``mailto:``) are ignored
— this guards the repository's own docs tree, not the internet.

Usage::

    python tools/check_doc_links.py [ROOT]

Exits 0 when every link resolves, 1 otherwise (listing each broken
link as ``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` with no nesting; images share the syntax.
LINK = re.compile(r"!?\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE = re.compile(r"^\s*(```|~~~)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor id for a heading text (with duplicate suffixes)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    slug = "".join(
        ch for ch in text.lower().replace(" ", "-")
        if ch.isalnum() or ch in "-_"
    )
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def markdown_files(root: Path) -> list[Path]:
    return sorted(
        path for path in root.rglob("*.md")
        if not any(part in SKIP_DIRS for part in path.parts)
    )


def anchors_of(path: Path) -> set[str]:
    """All heading anchors a Markdown file defines."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def check_file(path: Path, root: Path, anchor_cache: dict[Path, set[str]],
               problems: list[str]) -> None:
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if EXTERNAL.match(target):
                continue
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (path.parent / raw_path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: broken link "
                        f"target {raw_path!r}"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors into non-Markdown: not checkable
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    try:
                        shown = resolved.relative_to(root)
                    except ValueError:  # target outside the scanned root
                        shown = resolved
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: no heading "
                        f"for anchor #{fragment} in {shown}"
                    )


#: ``| `counter.name` | meaning |`` rows of the observability doc.
COUNTER_ROW = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|")


def documented_counters(doc: Path) -> set[str]:
    """Counter names listed in the observability doc's table."""
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = COUNTER_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


def check_counter_table(root: Path, problems: list[str]) -> None:
    """``docs/observability.md`` table == ``repro.obs.COUNTERS`` keys."""
    doc = root / "docs" / "observability.md"
    src = root / "src"
    if not doc.is_file() or not (src / "repro" / "obs").is_dir():
        return  # run against a tree without the package: nothing to check
    sys.path.insert(0, str(src))
    try:
        from repro.obs import COUNTERS
    finally:
        sys.path.pop(0)
    documented = documented_counters(doc)
    canonical = set(COUNTERS)
    shown = doc.relative_to(root)
    for name in sorted(canonical - documented):
        problems.append(
            f"{shown}: counter {name!r} (repro.obs.COUNTERS) is missing "
            f"from the counter table"
        )
    for name in sorted(documented - canonical):
        problems.append(
            f"{shown}: documented counter {name!r} does not exist in "
            f"repro.obs.COUNTERS"
        )


#: ``| `dfg.edge-cycle` | ... |`` rows of the analysis doc (codes may
#: contain hyphens, unlike counter names).
CODE_ROW = re.compile(r"^\|\s*`([a-z]+\.[a-z0-9-]+)`\s*\|")


def documented_codes(doc: Path) -> set[str]:
    """Check codes listed in the analysis doc's tables."""
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = CODE_ROW.match(line)
        if match:
            names.add(match.group(1))
    return names


def check_code_table(root: Path, problems: list[str]) -> None:
    """``docs/analysis.md`` tables == ``repro.analyze.CHECK_CODES``."""
    doc = root / "docs" / "analysis.md"
    src = root / "src"
    if not doc.is_file() or not (src / "repro" / "analyze").is_dir():
        return
    sys.path.insert(0, str(src))
    try:
        from repro.analyze import CHECK_CODES
    finally:
        sys.path.pop(0)
    documented = documented_codes(doc)
    canonical = set(CHECK_CODES)
    shown = doc.relative_to(root)
    for name in sorted(canonical - documented):
        problems.append(
            f"{shown}: check code {name!r} (repro.analyze.CHECK_CODES) is "
            f"missing from the diagnostic tables"
        )
    for name in sorted(documented - canonical):
        problems.append(
            f"{shown}: documented check code {name!r} does not exist in "
            f"repro.analyze.CHECK_CODES"
        )


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for path in files:
        check_file(path, root, anchor_cache, problems)
    check_counter_table(root, problems)
    check_code_table(root, problems)
    if problems:
        print(f"{len(problems)} broken doc link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"doc links ok: {len(files)} Markdown files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
