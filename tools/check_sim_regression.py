#!/usr/bin/env python3
"""Fail CI when the batch simulator's speedup over scalar regresses.

Compares a fresh ``BENCH_sim.json`` (produced by
``benchmarks/test_bench_sim.py``) against the committed baseline
``benchmarks/sim_baseline.json``.

Absolute cycles/second is machine-dependent, so the guard compares
*speedups*: every engine's cycles-per-second is already normalized to
the same run's scalar rate, and that ratio survives slower or faster
CI hardware.  An engine whose speedup at some batch width fell below
``baseline / max-ratio`` fails; the numpy engine at the widest batch
additionally must clear the absolute ``--min-numpy-speedup`` floor
(the repo's acceptance threshold).

A (width, engine) pair missing from the baseline — a newly added
width or engine — is reported as informational, never a failure;
commit a refreshed baseline to start guarding it.  A record written
without numpy installed skips the numpy rows entirely.

Usage::

    python tools/check_sim_regression.py BENCH_sim.json \
        [--baseline benchmarks/sim_baseline.json] \
        [--max-ratio 4.0] [--min-numpy-speedup 10.0]

Exits 0 when every speedup is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def speedups(record: dict) -> dict[tuple[str, str], float]:
    """(batch width, engine) -> speedup over that run's scalar rate."""
    out: dict[tuple[str, str], float] = {}
    for width, engines in record.get("batch", {}).items():
        for engine, row in engines.items():
            value = row.get("speedup_vs_scalar")
            if engine != "scalar" and value is not None:
                out[(width, engine)] = value
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="compare a BENCH_sim.json record against the "
                    "committed engine-speedup baseline")
    parser.add_argument("record",
                        help="fresh bench JSON (benchmarks/test_bench_sim.py "
                             "writes BENCH_sim.json)")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "benchmarks" / "sim_baseline.json"),
        help="committed baseline record (default: "
             "benchmarks/sim_baseline.json)")
    parser.add_argument("--max-ratio", type=float, default=4.0,
                        help="largest tolerated speedup shrink vs the "
                             "baseline (default 4.0)")
    parser.add_argument("--min-numpy-speedup", type=float, default=10.0,
                        help="absolute floor for the numpy engine at the "
                             "widest batch (default 10.0)")
    args = parser.parse_args(argv[1:])

    current = json.loads(Path(args.record).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    current_speedups = speedups(current)
    baseline_speedups = speedups(baseline)

    problems: list[str] = []
    notes: list[str] = []
    for (width, engine), value in sorted(current_speedups.items()):
        base = baseline_speedups.get((width, engine))
        if base is None:
            notes.append(
                f"N={width} {engine}: no baseline speedup — refresh "
                f"benchmarks/sim_baseline.json to guard it")
            continue
        floor = base / args.max_ratio
        if value < floor:
            problems.append(
                f"N={width} {engine}: speedup over scalar fell to "
                f"{value:.1f}x (baseline {base:.1f}x, floor {floor:.1f}x "
                f"at --max-ratio {args.max_ratio:.1f})")

    if current.get("numpy_available"):
        widths = sorted(current.get("batch", {}), key=int)
        if widths:
            widest = widths[-1]
            value = current_speedups.get((widest, "numpy"))
            if value is None:
                problems.append(
                    f"N={widest}: numpy is available but the record has "
                    f"no numpy speedup")
            elif value < args.min_numpy_speedup:
                problems.append(
                    f"N={widest} numpy: {value:.1f}x over scalar is below "
                    f"the absolute {args.min_numpy_speedup:.1f}x floor")
    else:
        notes.append("record was produced without numpy; numpy rows "
                     "not checked")

    for note in notes:
        print(f"note: {note}")
    if problems:
        print(f"{len(problems)} simulator speedup regression(s) vs "
              f"{args.baseline}:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"sim speedups ok: {len(current_speedups)} engine/width pairs "
          f"within {args.max_ratio:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
