"""Tests for the workload library, including the audio application's
exact reproduction of the figure-9 resource profile."""

import pytest

from repro import Q15, Toolchain, audio_core, fir_core
from repro.apps import (
    AudioAppSpec,
    adaptive_core,
    audio_application,
    audio_io_binding,
    biquad_cascade_application,
    expected_opu_counts,
    fir_application,
    lms_application,
    reference_fir,
    stress_application,
)
from repro.lang import run_reference
from repro.rtgen import generate_rts


class TestAudioApplication:
    def test_profile_matches_figure9_counts(self):
        # 58 RAM / 58 MULT / 58 ALU / 59 ACU / 58 ROM / 58 PRG / 2 IPB /
        # 4 + 4 OPB — the counts pinned by figure 9's percentages.
        program = generate_rts(
            audio_application(), audio_core(), audio_io_binding()
        )
        assert program.opu_histogram() == expected_opu_counts()

    def test_treble_section_is_verbatim_template(self):
        # The published treble source: 3 multiplies, pass/add/add_clip.
        dfg = audio_application(AudioAppSpec(stereo=False))
        histogram = dfg.op_histogram()
        assert histogram["mult"] == 29
        assert histogram["pass"] + histogram["add"] + histogram["add_clip"] \
            + histogram["pass_clip"] == 29

    def test_distinct_coefficients_per_channel(self):
        dfg = audio_application()
        assert len(dfg.params) == 58  # one ROM word per multiply

    def test_mono_spec_halves_everything(self):
        counts = expected_opu_counts(AudioAppSpec(stereo=False))
        assert counts["ram"] == 29
        assert counts["mult"] == 29
        assert counts["acu"] == 30

    def test_io_binding_splits_outputs_evenly(self):
        binding = audio_io_binding()
        values = list(binding.values())
        assert values.count("opb_1") == 4
        assert values.count("opb_2") == 4

    def test_compiles_in_budget_and_runs(self):
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(audio_application(), io_binding=audio_io_binding())
        assert compiled.n_cycles <= 64
        stimulus = {
            "IN_L": [Q15.from_float(0.1 * i) for i in range(-4, 4)],
            "IN_R": [Q15.from_float(-0.05 * i) for i in range(-4, 4)],
        }
        expected = run_reference(compiled.dfg, stimulus)
        assert compiled.run(stimulus) == expected


class TestFirApplication:
    def test_matches_direct_reference(self):
        coefficients = [0.25, 0.5, 0.125, -0.0625]
        dfg = fir_application(coefficients)
        xs = [Q15.from_float(v) for v in (1.0, 0.0, -0.5, 0.25, 0.0, 0.125)]
        outputs = run_reference(dfg, {"x": xs})
        assert outputs["y"] == reference_fir(coefficients, Q15, xs)

    def test_single_tap_is_gain(self):
        dfg = fir_application([0.5])
        outputs = run_reference(dfg, {"x": [Q15.from_float(0.5)]})
        assert outputs["y"] == [Q15.from_float(0.25)]

    def test_compiles_on_fir_core(self):
        compiled = Toolchain(fir_core(), cache=None) \
            .compile(fir_application([0.3, 0.4, 0.3]))
        xs = [Q15.from_float(v) for v in (0.9, -0.9, 0.5, 0.0, 0.1)]
        expected = run_reference(compiled.dfg, {"x": xs})
        assert compiled.run({"x": xs}) == expected

    def test_empty_rejected(self):
        from repro.errors import SemanticError
        with pytest.raises(SemanticError):
            fir_application([])


class TestBiquadCascade:
    def test_single_section_impulse_response(self):
        # Impulse of 0.5 (1.0 is not representable in Q15): response is
        # b0 * x exactly, then silence.
        dfg = biquad_cascade_application([(0.5, 0.0, 0.0, 0.0, 0.0)])
        impulse = [Q15.from_float(0.5)] + [0] * 4
        outputs = run_reference(dfg, {"x": impulse})
        assert outputs["y"][0] == Q15.from_float(0.25)
        assert all(v == 0 for v in outputs["y"][1:])

    def test_cascade_compiles_on_audio_core(self):
        sections = [(0.4, 0.1, -0.05, 0.2, -0.1), (0.3, 0.05, 0.0, 0.1, 0.0)]
        compiled = Toolchain(audio_core(), cache=None, budget=64) \
            .compile(biquad_cascade_application(sections))
        xs = [Q15.from_float(v) for v in (0.7, -0.3, 0.2, 0.0, -0.8, 0.1)]
        expected = run_reference(compiled.dfg, {"x": xs})
        assert compiled.run({"x": xs}) == expected


class TestLms:
    def test_converges_toward_plant(self):
        # Identify a 2-tap plant: outputs (errors) must shrink.
        import random

        rng = random.Random(5)
        n = 400
        xs = [rng.randint(-12000, 12000) for _ in range(n)]
        plant = [0.5, 0.25]
        quantised = [Q15.from_float(h) for h in plant]
        ds = []
        for i, _ in enumerate(xs):
            acc = 0
            for k, h in enumerate(quantised):
                sample = xs[i - k] if i - k >= 0 else 0
                acc = Q15.add_clip(Q15.mult(h, sample), acc)
            ds.append(acc)
        dfg = lms_application(n_taps=2, mu=0.5)
        outputs = run_reference(dfg, {"x": xs, "d": ds})
        head = sum(abs(e) for e in outputs["e"][:40])
        tail = sum(abs(e) for e in outputs["e"][-40:])
        # Q15 truncation leaves a noise floor; halving the error still
        # demonstrates adaptation.
        assert tail < head / 2

    def test_needs_signal_multiply_routes(self):
        # The FIR core cannot route a signal into the coefficient port.
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            Toolchain(fir_core(), cache=None) \
                .compile(lms_application(n_taps=2))

    def test_compiles_and_runs_on_adaptive_core(self):
        compiled = Toolchain(adaptive_core(), cache=None) \
            .compile(lms_application(n_taps=2))
        xs = [Q15.from_float(v) for v in (0.5, -0.25, 0.125, 0.75, -0.5)]
        ds = [Q15.from_float(v) for v in (0.25, -0.125, 0.0625, 0.375, -0.25)]
        expected = run_reference(compiled.dfg, {"x": xs, "d": ds})
        assert compiled.run({"x": xs, "d": ds}) == expected


class TestStress:
    def test_deterministic_per_seed(self):
        a = stress_application(5, seed=3)
        b = stress_application(5, seed=3)
        assert a.params == b.params

    def test_scales_linearly(self):
        # Each section adds 3 multiplies; the 2 gain taps are constant.
        small = stress_application(3).op_histogram()
        large = stress_application(6).op_histogram()
        assert large["mult"] - 2 == 2 * (small["mult"] - 2)

    def test_compiles_on_audio_core(self):
        compiled = Toolchain(audio_core(), cache=None) \
            .compile(stress_application(4))
        xs = [Q15.from_float(0.2), Q15.from_float(-0.4), 0, 1000]
        expected = run_reference(compiled.dfg, {"x": xs})
        assert compiled.run({"x": xs}) == expected
