"""Tests for the RT resource/usage model (paper, section 3)."""

from repro.rtgen import RT, Destination, Operand, ResourceUse, conflict, conflict_same_cycle


def make_rt(uses, dests=(), operands=(), opu="alu", operation="add", latency=1):
    return RT(
        opu=opu,
        operation=operation,
        operands=tuple(operands),
        destinations=tuple(dests),
        uses=tuple(ResourceUse(*u) if isinstance(u, tuple) else u for u in uses),
        latency=latency,
    )


class TestConflict:
    def test_same_resource_different_usage_conflicts(self):
        a = make_rt([("alu", "add")])
        b = make_rt([("alu", "pass")], operation="pass")
        assert conflict_same_cycle(a, b)
        assert conflict(a, b)

    def test_same_resource_same_usage_is_parallel(self):
        # "Different RTs with common resources can be executed in
        # parallel when the common resources have the same usage."
        a = make_rt([("bus_alu", "v7")])
        b = make_rt([("bus_alu", "v7")])
        assert not conflict_same_cycle(a, b)

    def test_disjoint_resources_are_parallel(self):
        a = make_rt([("alu", "add")])
        b = make_rt([("mult", "mult")], opu="mult", operation="mult")
        assert not conflict_same_cycle(a, b)

    def test_bus_with_different_values_conflicts(self):
        a = make_rt([("alu", "add"), ("bus_alu", "v1")])
        b = make_rt([("alu", "add"), ("bus_alu", "v2")])
        assert conflict_same_cycle(a, b)

    def test_mux_selection_conflicts(self):
        a = make_rt([("mux_rf", "pass[0]")])
        b = make_rt([("mux_rf", "pass[1]")])
        assert conflict_same_cycle(a, b)

    def test_offset_misaligned_uses_do_not_conflict(self):
        a = make_rt([ResourceUse("bus_m", "v1", offset=1)], latency=2)
        b = make_rt([ResourceUse("bus_m", "v2", offset=0)])
        assert not conflict(a, b, distance=0)
        # b issued one cycle after a: both hit bus_m at absolute cycle 1.
        assert conflict(a, b, distance=1)

    def test_pipelined_opu_overlap(self):
        # An unpipelined 2-cycle multiply occupies the OPU at offsets 0,1.
        a = make_rt(
            [ResourceUse("mult", "mult", 0), ResourceUse("mult", "mult", 1)],
            opu="mult", operation="mult", latency=2,
        )
        b = make_rt([ResourceUse("mult", "mult", 0)], opu="mult", operation="mult")
        # Same usage -> no conflict even overlapped (same operation kind
        # sharing is then excluded by bus/value conflicts instead).
        assert not conflict(a, b, distance=1)
        c = make_rt([ResourceUse("mult", "nop", 0)], opu="mult", operation="nop")
        assert conflict(a, c, distance=1)

    def test_conflict_same_cycle_matches_general(self):
        a = make_rt([("alu", "add"), ("bus_alu", "v1"), ("rf:wr", "v1")])
        b = make_rt([("alu", "add"), ("bus_alu", "v9"), ("rf:wr", "v9")])
        assert conflict_same_cycle(a, b) == conflict(a, b, 0)


class TestRtBasics:
    def test_uids_are_unique_and_identity_based(self):
        a = make_rt([("alu", "add")])
        b = make_rt([("alu", "add")])
        assert a.uid != b.uid
        assert a != b
        assert len({a, b}) == 2

    def test_value_and_read_values(self):
        rt = make_rt(
            [("alu", "add")],
            dests=[Destination("rf_x", 42)],
            operands=[Operand.register("rf_a", 1), Operand.immediate(5)],
        )
        assert rt.value == 42
        assert rt.read_values == (1,)

    def test_with_extra_uses_preserves_class_and_renews_uid(self):
        rt = make_rt([("alu", "add")])
        rt.rt_class = "Y"
        clone = rt.with_extra_uses((ResourceUse("ABC", "Y"),))
        assert clone.rt_class == "Y"
        assert clone.uid != rt.uid
        assert ("ABC", "Y") in [(u.resource, u.usage) for u in clone.uses]

    def test_resources_at(self):
        rt = make_rt([ResourceUse("a", "x", 0), ResourceUse("b", "y", 1)])
        assert rt.resources_at(0) == {"a": "x"}
        assert rt.resources_at(1) == {"b": "y"}
        assert rt.max_offset == 1

    def test_pretty_uses_paper_syntax(self):
        rt = make_rt(
            [("acu_1", "add"), ("buf_1_acu_1", "write"),
             ("bus_1_acu_1", "v9"), ("mux_2_ram_1", "pass[0]")],
            dests=[Destination("reg_2_ram_1", 9, mux="mux_2_ram_1",
                               mux_usage="pass[0]")],
            operands=[Operand.register("reg_1_acu_1", 1),
                      Operand.register("reg_2_acu_1", 2)],
            opu="acu_1",
        )
        text = rt.pretty()
        assert "<-" in text
        assert "\\" in text
        assert "acu_1" in text and "= add" in text
        assert text.rstrip().endswith(";")
