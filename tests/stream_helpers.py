"""Shared stimulus helper for the test suite.

``random_streams`` lives in its own module (imported as
``from stream_helpers import random_streams``) rather than in
``conftest.py`` because ``conftest`` is not an importable name when the
full repo is collected — ``benchmarks/conftest.py`` claims the module
name first.  ``tests/conftest.py`` wraps it in fixtures for test bodies
that prefer injection.
"""

from __future__ import annotations

import random

from repro.fixed import Q15


def random_streams(ports, n=8, seed=0, fmt=Q15):
    """Full-range random stimulus for a Dfg or an iterable of ports.

    The single source of the stimulus idiom every differential test
    uses: seeded, so each call site names its determinism explicitly.
    """
    names = ports.inputs if hasattr(ports, "inputs") else ports
    rng = random.Random(seed)
    return {
        port: [rng.randint(fmt.min_value, fmt.max_value) for _ in range(n)]
        for port in names
    }
