"""Unit tests for the reservation table and schedule validation."""

import pytest

from repro.errors import SchedulingError
from repro.rtgen import RT, ResourceUse
from repro.sched import DependenceGraph, ReservationTable, Schedule
from repro.sched.dependence import Edge, EdgeKind


def rt_using(*uses, opu="alu", operation="add", latency=1):
    return RT(
        opu=opu, operation=operation, operands=(), destinations=(),
        uses=tuple(ResourceUse(*u) for u in uses), latency=latency,
    )


class TestReservationTable:
    def test_same_usage_shares(self):
        table = ReservationTable()
        a = rt_using(("bus", "v1"))
        b = rt_using(("bus", "v1"))
        table.place(a, 0)
        assert table.fits(b, 0)
        table.place(b, 0)
        assert table.usage_at("bus", 0) == "v1"

    def test_different_usage_conflicts(self):
        table = ReservationTable()
        table.place(rt_using(("bus", "v1")), 0)
        blocked = rt_using(("bus", "v2"))
        assert not table.fits(blocked, 0)
        with pytest.raises(SchedulingError, match="resource conflict"):
            table.place(blocked, 0)

    def test_reference_counted_removal(self):
        # Removing one sharer must not free the other's booking.
        table = ReservationTable()
        a = rt_using(("bus", "v1"))
        b = rt_using(("bus", "v1"))
        table.place(a, 0)
        table.place(b, 0)
        table.remove(a, 0)
        assert not table.fits(rt_using(("bus", "v2")), 0)
        table.remove(b, 0)
        assert table.fits(rt_using(("bus", "v2")), 0)

    def test_failed_place_rolls_back(self):
        table = ReservationTable()
        table.place(rt_using(("y", "q")), 0)
        # This RT books x first, then conflicts on y: x must be released.
        bad = rt_using(("x", "v1"), ("y", "different"))
        with pytest.raises(SchedulingError):
            table.place(bad, 0)
        assert table.fits(rt_using(("x", "other")), 0)

    def test_offsets_book_later_cycles(self):
        table = ReservationTable()
        pipelined = rt_using(("bus", "v1", 1), latency=2)
        table.place(pipelined, 3)
        assert table.usage_at("bus", 4) == "v1"
        assert table.usage_at("bus", 3) is None


class TestScheduleValidation:
    def graph_pair(self):
        a = rt_using(("alu", "add"))
        b = rt_using(("mult", "mult"), opu="mult", operation="mult")
        graph = DependenceGraph(
            rts=[a, b],
            edges=[Edge(a, b, 1, EdgeKind.RAW)],
        )
        return a, b, graph

    def test_valid_schedule_passes(self):
        a, b, graph = self.graph_pair()
        Schedule(cycle_of={a: 0, b: 1}, length=2).validate(graph)

    def test_dependence_violation_caught(self):
        a, b, graph = self.graph_pair()
        with pytest.raises(SchedulingError, match="dependence violated"):
            Schedule(cycle_of={a: 1, b: 0}, length=2).validate(graph)

    def test_missing_rt_caught(self):
        a, b, graph = self.graph_pair()
        with pytest.raises(SchedulingError, match="never scheduled"):
            Schedule(cycle_of={a: 0}, length=1).validate(graph)

    def test_negative_cycle_caught(self):
        a, b, graph = self.graph_pair()
        with pytest.raises(SchedulingError, match="negative"):
            Schedule(cycle_of={a: -1, b: 1}, length=2).validate(graph)

    def test_overrun_caught(self):
        a, b, graph = self.graph_pair()
        with pytest.raises(SchedulingError, match="spills past"):
            Schedule(cycle_of={a: 0, b: 2}, length=2).validate(graph)

    def test_budget_overrun_caught(self):
        a, b, graph = self.graph_pair()
        schedule = Schedule(cycle_of={a: 0, b: 1}, length=2, budget=1)
        with pytest.raises(SchedulingError, match="exceeds budget"):
            schedule.validate(graph)

    def test_usage_conflict_caught(self):
        a = rt_using(("bus", "v1"))
        b = rt_using(("bus", "v2"))
        graph = DependenceGraph(rts=[a, b], edges=[])
        with pytest.raises(SchedulingError, match="resource conflict"):
            Schedule(cycle_of={a: 0, b: 0}, length=1).validate(graph)

    def test_instructions_grouping(self):
        a, b, graph = self.graph_pair()
        schedule = Schedule(cycle_of={a: 0, b: 1}, length=2)
        instructions = schedule.instructions()
        assert instructions[0] == [a]
        assert instructions[1] == [b]

    def test_busy_cycle_queries(self):
        a, b, graph = self.graph_pair()
        schedule = Schedule(cycle_of={a: 0, b: 1}, length=2)
        assert schedule.opu_busy_cycles() == {"alu": {0}, "mult": {1}}
        assert schedule.resource_busy_cycles()["alu"] == {0}
