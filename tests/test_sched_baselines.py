"""Unit tests for the baseline schedulers (vertical / dynamic check)."""

import pytest

from repro.arch import audio_core
from repro.core import ClassTable, InstructionSet
from repro.errors import BudgetExceededError
from repro.lang import parse_source
from repro.rtgen import generate_rts
from repro.sched import (
    build_dependence_graph,
    dynamic_check_schedule,
    list_schedule,
    vertical_schedule,
)

SOURCE = """
app base;
param k0 = 0.5, k1 = 0.25;
input i;
output o0, o1;
state s(1);
loop {
  s = i;
  m0 := mlt(k0, s@1);
  a  := pass(m0);
  m1 := mlt(k1, i);
  r  := add_clip(m1, a);
  o0 = r;
  o1 = pass_clip(r);
}
"""


def setup():
    core = audio_core()
    program = generate_rts(parse_source(SOURCE), core)
    table = ClassTable.from_core(core)
    iset = InstructionSet.from_desired(table.names, core.instruction_types)
    graph = build_dependence_graph(program)
    return core, program, table, iset, graph


class TestDynamicCheck:
    def test_respects_io_exclusivity_without_artificial_resources(self):
        _, _, table, iset, graph = setup()
        schedule = dynamic_check_schedule(graph, table, iset)
        schedule.validate(graph)
        io_cycles = [
            cycle for rt, cycle in schedule.cycle_of.items()
            if rt.rt_class in ("A", "B", "C")
        ]
        assert len(io_cycles) == len(set(io_cycles))

    def test_budget_enforced(self):
        _, _, table, iset, graph = setup()
        with pytest.raises(BudgetExceededError):
            dynamic_check_schedule(graph, table, iset, budget=3)

    def test_same_quality_as_static_single_pass(self):
        # Both models express the same legality; schedules may differ
        # by heuristic tie-breaks but at most marginally.
        core, program, table, iset, graph = setup()
        dynamic = dynamic_check_schedule(graph, table, iset)

        from repro.core import impose_instruction_set

        program2 = generate_rts(parse_source(SOURCE), core)
        program2.rts = impose_instruction_set(program2.rts, table, iset).rts
        static_graph = build_dependence_graph(program2)
        static = list_schedule(static_graph)
        assert abs(dynamic.length - static.length) <= 2


class TestVertical:
    def test_every_cycle_has_one_rt(self):
        *_, graph = setup()
        schedule = vertical_schedule(graph)
        schedule.validate(graph)
        cycles = sorted(schedule.cycle_of.values())
        assert len(cycles) == len(set(cycles))

    def test_length_at_least_rt_count(self):
        *_, graph = setup()
        schedule = vertical_schedule(graph)
        assert schedule.length >= len(graph.rts)

    def test_dependences_hold(self):
        *_, graph = setup()
        schedule = vertical_schedule(graph)
        for edge in graph.edges:
            if edge.distance:
                continue
            assert schedule.cycle_of[edge.dst] >= \
                schedule.cycle_of[edge.src] + edge.delay
