"""Unit tests for the datapath model (repro.arch)."""

import pytest

from repro.arch import (
    ControllerSpec,
    Datapath,
    Operation,
    OpuKind,
    audio_datapath,
    fir_datapath,
    tiny_datapath,
    validate_datapath,
)
from repro.errors import ArchitectureError, ConnectivityError


def build_minimal():
    dp = Datapath("mini")
    alu = dp.add_opu("alu", OpuKind.ALU, [Operation("add", arity=2)])
    rf0 = dp.add_register_file("rf0", 2)
    rf1 = dp.add_register_file("rf1", 2)
    dp.connect_port(alu, 0, rf0)
    dp.connect_port(alu, 1, rf1)
    bus = dp.attach_bus(alu)
    dp.route_bus(bus, rf0)
    return dp, alu, rf0, rf1, bus


class TestBuilder:
    def test_add_opu_registers_by_name(self):
        dp, alu, *_ = build_minimal()
        assert dp.opu("alu") is alu

    def test_duplicate_opu_name_rejected(self):
        dp, *_ = build_minimal()
        with pytest.raises(ArchitectureError, match="duplicate OPU"):
            dp.add_opu("alu", OpuKind.ALU, [Operation("add")])

    def test_duplicate_rf_name_rejected(self):
        dp, *_ = build_minimal()
        with pytest.raises(ArchitectureError, match="duplicate register file"):
            dp.add_register_file("rf0", 2)

    def test_opu_without_operations_rejected(self):
        dp = Datapath("x")
        with pytest.raises(ArchitectureError, match="at least one operation"):
            dp.add_opu("bad", OpuKind.ALU, [])

    def test_duplicate_operation_names_rejected(self):
        dp = Datapath("x")
        with pytest.raises(ArchitectureError, match="duplicate operation"):
            dp.add_opu("bad", OpuKind.ALU, [Operation("add"), Operation("add")])

    def test_ram_requires_memory_size(self):
        dp = Datapath("x")
        with pytest.raises(ArchitectureError, match="memory_size"):
            dp.add_opu("ram", OpuKind.RAM, [Operation("read", arity=1)])

    def test_non_memory_opu_rejects_memory_size(self):
        dp = Datapath("x")
        with pytest.raises(ArchitectureError, match="no memory"):
            dp.add_opu("alu", OpuKind.ALU, [Operation("add")], memory_size=4)

    def test_port_cannot_be_fed_twice(self):
        dp, alu, rf0, *_ = build_minimal()
        with pytest.raises(ArchitectureError, match="already fed"):
            dp.connect_port(alu, 0, rf0)

    def test_immediate_port_cannot_be_fed(self):
        dp = Datapath("x")
        acu = dp.add_opu("acu", OpuKind.ACU, [Operation("addmod", arity=2)])
        rf = dp.add_register_file("rf", 2)
        dp.make_immediate_port(acu, 1)
        with pytest.raises(ArchitectureError, match="immediate"):
            dp.connect_port(acu, 1, rf)

    def test_port_index_out_of_range(self):
        dp, alu, rf0, *_ = build_minimal()
        with pytest.raises(ArchitectureError, match="no port 7"):
            dp.connect_port(alu, 7, rf0)

    def test_output_opu_drives_no_bus(self):
        dp = Datapath("x")
        opb = dp.add_opu("opb", OpuKind.OUTPUT, [Operation("write", arity=1)])
        with pytest.raises(ArchitectureError, match="drives no bus"):
            dp.attach_bus(opb)

    def test_double_bus_rejected(self):
        dp, alu, *_ = build_minimal()
        with pytest.raises(ArchitectureError, match="already drives"):
            dp.attach_bus(alu)

    def test_duplicate_route_rejected(self):
        dp, alu, rf0, rf1, bus = build_minimal()
        with pytest.raises(ArchitectureError, match="already routed"):
            dp.route_bus(bus, rf0)


class TestMuxInsertion:
    def test_single_writer_is_direct(self):
        dp, alu, rf0, rf1, bus = build_minimal()
        route = dp.route_to(alu, rf0)
        assert route.mux is None

    def test_second_writer_materialises_mux(self):
        dp, alu, rf0, rf1, bus = build_minimal()
        prg = dp.add_opu("prg", OpuKind.CONST, [Operation("const", arity=1)])
        dp.make_immediate_port(prg, 0)
        bus2 = dp.attach_bus(prg)
        dp.route_bus(bus2, rf0)
        route_alu = dp.route_to(alu, rf0)
        route_prg = dp.route_to(prg, rf0)
        assert route_alu.mux is route_prg.mux
        assert route_alu.mux is not None
        assert len(route_alu.mux.inputs) == 2
        # Existing direct writer was re-wired to mux input 0.
        assert route_alu.mux.input_index(bus) == 0
        assert route_alu.mux.input_index(bus2) == 1

    def test_mux_select_usage_strings(self):
        dp, alu, rf0, rf1, bus = build_minimal()
        prg = dp.add_opu("prg", OpuKind.CONST, [Operation("const", arity=1)])
        dp.make_immediate_port(prg, 0)
        bus2 = dp.attach_bus(prg)
        dp.route_bus(bus2, rf0)
        mux = dp.route_to(alu, rf0).mux
        assert mux.select_usage(bus) == "pass[0]"
        assert mux.select_usage(bus2) == "pass[1]"


class TestQueries:
    def test_opus_supporting(self):
        dp = audio_datapath()
        assert [o.name for o in dp.opus_supporting("mult")] == ["mult"]
        assert [o.name for o in dp.opus_supporting("const")] == ["rom", "prg_c"]

    def test_route_to_missing_raises(self):
        dp = audio_datapath()
        with pytest.raises(ConnectivityError, match="no route"):
            dp.route_to("prg_c", "rf_opb1")

    def test_port_register_file(self):
        dp = audio_datapath()
        assert dp.port_register_file("mult", 0).name == "rf_mult_data"
        assert dp.port_register_file("mult", 1).name == "rf_mult_coef"

    def test_port_register_file_on_immediate_port_raises(self):
        dp = audio_datapath()
        with pytest.raises(ConnectivityError, match="immediate"):
            dp.port_register_file("acu", 1)

    def test_reachable_register_files(self):
        dp = audio_datapath()
        reachable = {rf.name for rf in dp.reachable_register_files("alu")}
        assert reachable == {
            "rf_ram_data", "rf_mult_data", "rf_alu_p0", "rf_alu_p1",
            "rf_opb1", "rf_opb2",
        }

    def test_unknown_names_raise(self):
        dp = audio_datapath()
        with pytest.raises(ArchitectureError, match="unknown OPU"):
            dp.opu("nope")
        with pytest.raises(ArchitectureError, match="unknown register file"):
            dp.register_file("nope")


class TestValidation:
    def test_library_datapaths_are_valid(self):
        for dp in (audio_datapath(), fir_datapath(), tiny_datapath()):
            validate_datapath(dp)  # must not raise

    def test_unfed_port_is_rejected(self):
        dp = Datapath("bad")
        dp.add_opu("alu", OpuKind.ALU, [Operation("add", arity=2)])
        with pytest.raises(ArchitectureError, match="neither fed"):
            validate_datapath(dp)

    def test_busless_producer_is_rejected(self):
        dp = Datapath("bad")
        alu = dp.add_opu("alu", OpuKind.ALU, [Operation("add", arity=2)])
        rf0 = dp.add_register_file("rf0", 2)
        rf1 = dp.add_register_file("rf1", 2)
        dp.connect_port(alu, 0, rf0)
        dp.connect_port(alu, 1, rf1)
        with pytest.raises(ArchitectureError, match="drives no bus"):
            validate_datapath(dp)

    def test_empty_datapath_is_rejected(self):
        with pytest.raises(ArchitectureError, match="no OPUs"):
            validate_datapath(Datapath("empty"))

    def test_dangling_bus_warns(self):
        dp, alu, rf0, rf1, bus = build_minimal()
        prg = dp.add_opu("prg", OpuKind.CONST, [Operation("const", arity=1)])
        dp.make_immediate_port(prg, 0)
        dp.attach_bus(prg)  # never routed anywhere
        warnings = validate_datapath(dp)
        assert any("reaches no" in w for w in warnings)


class TestOperation:
    def test_latency_must_be_positive(self):
        with pytest.raises(ArchitectureError, match="latency"):
            Operation("x", latency=0)

    def test_initiation_interval_bounds(self):
        with pytest.raises(ArchitectureError, match="initiation interval"):
            Operation("x", latency=2, initiation_interval=3)

    def test_pipelined_operation_accepted(self):
        op = Operation("mult", latency=2, initiation_interval=1)
        assert op.latency == 2

    def test_negative_arity_rejected(self):
        with pytest.raises(ArchitectureError, match="arity"):
            Operation("x", arity=-1)


class TestControllerSpec:
    def test_conditionals_need_flags(self):
        with pytest.raises(ArchitectureError, match="flag"):
            ControllerSpec(supports_conditionals=True, n_flags=0)

    def test_stripped_removes_conditionals(self):
        spec = ControllerSpec(n_flags=2, supports_conditionals=True)
        stripped = spec.stripped()
        assert not stripped.supports_conditionals
        assert stripped.n_flags == 0
        assert stripped.stack_depth == spec.stack_depth

    def test_allowed_ops_without_loops(self):
        from repro.arch import CtrlOp
        spec = ControllerSpec(supports_loops=False)
        ops = spec.allowed_ops()
        assert CtrlOp.LOOP not in ops
        assert CtrlOp.JUMP in ops
        assert CtrlOp.IDLE in ops

    def test_address_bits(self):
        assert ControllerSpec(program_size=64).address_bits == 6
        assert ControllerSpec(program_size=65).address_bits == 7
