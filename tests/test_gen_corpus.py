"""The pinned-corpus property suite (repro.gen.corpus).

The acceptance bar for the generator/fuzz subsystem: a pinned corpus of
``REPRO_CORPUS_COUNT`` (default 200) generated applications compiles at
every optimizer level — under ``verify="strict"``, so every stage
verifier and the machine-code lint run on every compile — and passes
differential simulation on every available engine with zero mismatches.
The count is env-overridable so local iteration can shrink it without
touching the test.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.gen import CORPUS_REPORT_VERSION, GenSpec, run_corpus

CORPUS_COUNT = int(os.environ.get("REPRO_CORPUS_COUNT", "200"))


@pytest.fixture(scope="module")
def corpus_report():
    return run_corpus(CORPUS_COUNT, seed=0, core="fir",
                      n_frames=6, n_lanes=3, verify="strict")


class TestPinnedCorpus:
    def test_zero_mismatches_across_levels_and_engines(self, corpus_report):
        assert corpus_report.ok, corpus_report.failures
        assert corpus_report.mismatches == 0
        assert corpus_report.count == CORPUS_COUNT

    def test_every_level_compiled_the_whole_corpus(self, corpus_report):
        assert set(corpus_report.compile_stats) == {0, 1, 2}
        for stats in corpus_report.compile_stats.values():
            assert stats["seconds"] > 0
            assert stats["cycles_total"] > 0

    def test_every_engine_simulated_every_lane_frame(self, corpus_report):
        expected = CORPUS_COUNT * 3 * 6
        for engine, stats in corpus_report.sim_stats.items():
            assert stats["lane_frames"] == expected, engine

    def test_report_serializes(self, corpus_report, tmp_path):
        path = corpus_report.write(tmp_path / "BENCH_corpus.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == CORPUS_REPORT_VERSION
        assert payload["core"] == "fir"
        assert payload["mismatches"] == 0
        assert set(payload["compile"]) == {"O0", "O1", "O2"}
        assert payload["attempts"] >= payload["count"]
        assert payload["spec"]["max_ops"] == GenSpec().max_ops


class TestSmallCorpus:
    def test_audio_core_corpus_is_clean(self):
        report = run_corpus(10, seed=0, core="audio",
                            n_frames=4, n_lanes=2)
        assert report.ok, report.failures

    def test_engine_subset(self):
        report = run_corpus(5, seed=0, core="fir", engines=("scalar",),
                            n_frames=4, n_lanes=2)
        assert report.ok
        assert set(report.sim_stats) == {"scalar"}
