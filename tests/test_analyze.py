"""Tests for the static-analysis package (repro.analyze).

Two angles:

* **Adversarial** — hand-corrupt one artifact of a known-good compile
  per invariant class and assert the exact diagnostic code.  A verifier
  that only ever sees healthy artifacts proves nothing.
* **Green-path** — every builtin application at every optimizer level
  must compile under ``verify="strict"`` and come out finding-free;
  the ``verify=`` knob must not disturb cache fingerprints.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro import Telemetry
from repro.analyze import (
    CHECK_CODES,
    Finding,
    Severity,
    VerificationError,
    enforce,
    error,
    lint_program,
    verify_allocation,
    verify_dfg,
    verify_schedule,
    verify_state,
    warning,
)
from repro.apps import (
    audio_application,
    channel_frontend_application,
    fir_application,
    lms_application,
    stress_application,
)
from repro.arch import audio_core, datapath_findings, fir_datapath
from repro.errors import OptionsError
from repro.options import SEMANTIC_FIELDS, CompileOptions
from repro.sched.regalloc import compute_intervals
from repro.sim.batch import SEM_ROM_READ, decode_program
from repro.toolchain import Toolchain

#: Builtin application -> its natural core (the pairing the app suites
#: compile against).
APPLICATIONS = {
    "audio": (audio_application, "audio"),
    "fir": (lambda: fir_application([0.05 * (k + 1) for k in range(4)]),
            "fir"),
    "lms": (lambda: lms_application(n_taps=2), "adaptive"),
    "stress": (lambda: stress_application(6), "audio"),
    "channel": (channel_frontend_application, "fir"),
}


@pytest.fixture(scope="module")
def audio_state():
    """One healthy audio compile whose artifacts the corruption tests
    copy and damage."""
    toolchain = Toolchain("audio", cache=None)
    return toolchain.run_pipeline(audio_application())


def codes(findings) -> set[str]:
    return {f.code for f in findings}


class TestFindingSchema:
    def test_render_and_dict_round_trip(self):
        finding = error("mc.oob", "index 9 of an 8-word memory",
                        "word 3", "a corrupted field")
        assert finding.is_error
        assert finding.render() == ("error: mc.oob [word 3]: index 9 of "
                                    "an 8-word memory "
                                    "(hint: a corrupted field)")
        payload = finding.to_dict()
        assert payload["severity"] == "error"
        assert payload["code"] == "mc.oob"
        assert payload["location"] == "word 3"

    def test_warning_is_not_an_error(self):
        finding = warning("mc.unreachable", "word 7 is dead")
        assert not finding.is_error
        assert finding.severity is Severity.WARNING
        assert finding.render().startswith("warning: mc.unreachable")

    def test_enforce_raises_on_errors_with_findings_attached(self):
        findings = [warning("mc.dead-write", "w"),
                    error("mc.oob", "boom")]
        with pytest.raises(VerificationError) as exc:
            enforce(findings, "after stage 'assemble'")
        assert "mc.oob" in str(exc.value)
        assert findings[1] in exc.value.findings

    def test_enforce_tolerates_warnings(self):
        enforce([warning("mc.unreachable", "w")], "ctx")
        enforce([], "ctx")

    def test_every_code_is_registered(self):
        # Constructors refuse unknown codes, so one representative is
        # enough to prove the registry gate is live.
        with pytest.raises(ValueError, match="unknown check code"):
            error("mc.not-a-code", "nope")
        for code in CHECK_CODES:
            prefix = code.split(".", 1)[0]
            assert prefix in {"dfg", "rt", "sched", "regalloc", "arch", "mc"}


class TestAdversarialCorruption:
    """Six artifact classes, one hand-planted defect each."""

    def test_dfg_edge_cycle(self, audio_state):
        dfg = copy.deepcopy(audio_state.artifacts["dfg"])
        op = next(n for n in dfg.nodes if n.kind.name == "OP")
        op.args = (op.id,) + op.args[1:]
        assert "dfg.edge-cycle" in codes(verify_dfg(dfg))

    def test_schedule_double_booked_opu(self, audio_state):
        art = audio_state.artifacts
        schedule = art["schedule"]
        by_resource: dict[str, list] = {}
        for rt, cycle in schedule.cycle_of.items():
            for use in rt.uses:
                by_resource.setdefault(use.resource, []).append((rt, use))
        pair = next(
            (first[0], second[0])
            for users in by_resource.values()
            for i, first in enumerate(users)
            for second in users[i + 1:]
            if first[0] is not second[0] and first[1].usage != second[1].usage)
        cycle_of = dict(schedule.cycle_of)
        cycle_of[pair[1]] = cycle_of[pair[0]]
        corrupted = dataclasses.replace(schedule, cycle_of=cycle_of)
        found = verify_schedule(art["program"], corrupted,
                                art["dependence_graph"])
        assert "sched.double-booking" in codes(found)

    def test_allocation_overlapping_live_ranges(self, audio_state):
        art = audio_state.artifacts
        program, schedule = art["program"], art["schedule"]
        allocation = art["allocation"]
        intervals = compute_intervals(program, schedule)
        rf_name, first, second = next(
            (rf, a, b)
            for rf, file_intervals in intervals.items()
            for a in file_intervals
            for b in file_intervals
            if a is not b
            and b.birth < a.death and a.birth < b.death
            and allocation.register_of.get((rf, a.value)) is not None
            and allocation.register_of.get((rf, b.value)) is not None
            and allocation.register_of[(rf, a.value)]
            != allocation.register_of[(rf, b.value)])
        register_of = dict(allocation.register_of)
        register_of[(rf_name, second.value)] = \
            register_of[(rf_name, first.value)]
        corrupted = dataclasses.replace(allocation, register_of=register_of)
        found = verify_allocation(program, schedule, corrupted)
        assert "regalloc.overlap" in codes(found)

    def test_image_clobbered_in_flight_destination(self, audio_state):
        binary = audio_state.artifacts["binary"]
        fmt = binary.format
        victim = next(rf for rf in
                      binary.core.datapath.register_files.values()
                      if rf.writers)
        fields = fmt.decode(binary.words[0])
        fields[f"{victim.name}.wr_en"] = 1
        words = list(binary.words)
        words[0] = fmt.encode(fields)
        corrupted = dataclasses.replace(binary, words=words)
        assert "mc.bus-hazard" in codes(lint_program(corrupted))

    def test_image_oob_rom_index(self):
        # rf_scale=3 gives rf_rom_addr 12 registers behind a 4-bit
        # address field, so index 15 encodes but is out of bounds.
        core = audio_core(rf_scale=3)
        state = Toolchain(core, cache=None).run_pipeline(audio_application())
        binary = state.artifacts["binary"]
        plan = decode_program(binary)
        rom_word = next(word.index for word in plan.words
                        for op in word.ops if op.sem == SEM_ROM_READ)
        fmt = binary.format
        fields = fmt.decode(binary.words[rom_word])
        fields["rom.p0.addr"] = 15
        words = list(binary.words)
        words[rom_word] = fmt.encode(fields)
        corrupted = dataclasses.replace(binary, words=words)
        oob = [f for f in lint_program(corrupted) if f.code == "mc.oob"]
        assert oob and "rf_rom_addr[15]" in oob[0].message

    def test_image_unreachable_word(self, audio_state):
        from repro.arch.controller import CtrlOp
        from repro.encode.fields import CTRL_OPCODES

        # An inert word (word 0's empty body, ctrl CONT) appended past
        # the closing jump decodes fine but can never execute.
        binary = audio_state.artifacts["binary"]
        fmt = binary.format
        fields = fmt.decode(binary.words[0])
        fields["ctrl.op"] = CTRL_OPCODES[CtrlOp.CONT]
        corrupted = dataclasses.replace(
            binary, words=list(binary.words) + [fmt.encode(fields)])
        unreachable = [f for f in lint_program(corrupted)
                       if f.code == "mc.unreachable"]
        assert unreachable
        assert not unreachable[0].is_error

    def test_clean_artifacts_produce_no_findings(self, audio_state):
        assert verify_state(audio_state) == []


class TestStrictPipeline:
    """verify="strict" holds on every builtin app at every level."""

    @pytest.mark.parametrize("app_name", sorted(APPLICATIONS))
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_builtin_app_is_finding_free(self, app_name, level):
        factory, core = APPLICATIONS[app_name]
        toolchain = Toolchain(core, cache=None, opt=level, verify="strict")
        state = toolchain.run_pipeline(factory())
        assert verify_state(state) == []

    def test_boundary_counters(self):
        for level_name, expected in (("strict", 6), ("boundaries", 5)):
            obs = Telemetry()
            toolchain = Toolchain("audio", cache=None, verify=level_name,
                                  telemetry=obs)
            toolchain.run_pipeline(audio_application())
            assert obs.counters["verify.checks"] == expected
            assert obs.counters.get("verify.findings", 0) == 0

    def test_off_runs_no_checks(self):
        obs = Telemetry()
        toolchain = Toolchain("audio", cache=None, telemetry=obs)
        toolchain.run_pipeline(audio_application())
        assert "verify.checks" not in obs.counters

    def test_verify_does_not_change_fingerprints(self):
        assert "verify" not in SEMANTIC_FIELDS
        assert (CompileOptions().fingerprint()
                == CompileOptions(verify="strict").fingerprint())

    def test_unknown_verify_level_is_rejected(self):
        with pytest.raises(OptionsError, match="verify"):
            CompileOptions(verify="paranoid")


class TestDatapathFindings:
    def test_healthy_datapath_has_no_errors(self):
        findings = datapath_findings(fir_datapath())
        assert all(not f.is_error for f in findings)
        assert all(isinstance(f, Finding) and f.code.startswith("arch.")
                   for f in findings)

    def test_structured_and_legacy_agree(self):
        from repro.arch import validate_datapath

        dp = fir_datapath()
        warnings = validate_datapath(dp)
        assert warnings == [f.message for f in datapath_findings(dp)
                            if not f.is_error]
