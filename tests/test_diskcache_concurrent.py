"""Concurrent multi-process DiskCache access.

The disk store's whole claim is that independent processes can share
one cache directory safely: publication is atomic (temp file + rename)
and every unreadable entry degrades to a miss.  These tests actually
run N simultaneous compiler processes — same application, different
applications, cold and warm — against one directory and check the
three things that matter: no corruption (verify() is clean), correct
hit accounting (a warm process restores all 8 stages from disk), and
bit-identical binaries everywhere.
"""

from concurrent.futures import ProcessPoolExecutor

from repro import Toolchain, audio_core
from repro.pipeline import DiskCache, StageCache

SOURCE = """
app mp;
param k = 0.5;
input i; output o;
state s(1);
loop {
  s = i;
  m := mlt(k, s@1);
  o = add_clip(m, i);
}
"""

VARIANT = SOURCE.replace("0.5", "0.25").replace("app mp", "app mp_v")

N_STAGES = 8


def compile_in_process(args):
    """One compiler process: cold memory tier over the shared dir.

    Module-level so it pickles across the process boundary; returns
    plain data (hex words + cache accounting), never artifacts.
    """
    cache_dir, source, budget = args
    toolchain = Toolchain(audio_core(), budget=budget,
                          cache=StageCache(disk=DiskCache(cache_dir)))
    state = toolchain.run_pipeline(source)
    words = [hex(word) for word in state.as_compiled().binary.words]
    return words, state.cache_counts()


def fan_out(jobs, workers):
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(compile_in_process, jobs))


class TestConcurrentSameApp:
    def test_simultaneous_cold_compiles_agree_and_do_not_corrupt(
            self, tmp_path):
        results = fan_out([(str(tmp_path), SOURCE, 64)] * 4, workers=4)
        words = {tuple(w) for w, _ in results}
        assert len(words) == 1  # bit-identical across every process
        # Racing publishers never corrupt the store.
        disk = DiskCache(tmp_path)
        report = disk.verify()
        assert report.clean and report.checked == N_STAGES
        # The store holds exactly one entry per stage — the atomic
        # rename makes the racing writes idempotent, not additive.
        assert len(disk.keys()) == N_STAGES

    def test_warm_process_restores_everything_from_disk(self, tmp_path):
        fan_out([(str(tmp_path), SOURCE, 64)], workers=1)
        (words, counts), = fan_out([(str(tmp_path), SOURCE, 64)],
                                   workers=1)
        assert counts == {"executed": 0, "memory": 0, "disk": N_STAGES}
        local = Toolchain(audio_core(), budget=64, cache=None) \
            .compile(SOURCE)
        assert words == [hex(word) for word in local.binary.words]

    def test_many_warm_processes_all_hit(self, tmp_path):
        fan_out([(str(tmp_path), SOURCE, 64)], workers=1)
        results = fan_out([(str(tmp_path), SOURCE, 64)] * 4, workers=4)
        for _, counts in results:
            assert counts["executed"] == 0
            assert counts["disk"] == N_STAGES


class TestConcurrentDifferentApps:
    def test_mixed_apps_one_directory(self, tmp_path):
        jobs = [(str(tmp_path), SOURCE, 64),
                (str(tmp_path), VARIANT, 64)] * 2
        results = fan_out(jobs, workers=4)
        by_app = {}
        for (words, _), (_, source, _) in zip(results, jobs):
            by_app.setdefault(source, set()).add(tuple(words))
        # Each app deterministic across processes, and distinct.
        assert all(len(images) == 1 for images in by_app.values())
        assert len(by_app) == 2
        assert DiskCache(tmp_path).verify().clean

    def test_warm_hits_are_per_app(self, tmp_path):
        fan_out([(str(tmp_path), SOURCE, 64)], workers=1)
        # VARIANT differs from the parse stage on (different source
        # text), so a warm run of it shares nothing.
        (_, counts), = fan_out([(str(tmp_path), VARIANT, 64)], workers=1)
        assert counts["executed"] == N_STAGES
        (_, counts), = fan_out([(str(tmp_path), VARIANT, 64)], workers=1)
        assert counts == {"executed": 0, "memory": 0, "disk": N_STAGES}


class TestConcurrentWithGc:
    def test_gc_during_warm_traffic_never_errors(self, tmp_path):
        """A gc pass racing live readers degrades hits, never crashes.

        One process streams warm compiles while the parent runs gc
        with a zero bound between them; the compiles must all succeed
        (recomputing evicted stages is fine) and the store must stay
        uncorrupted.
        """
        fan_out([(str(tmp_path), SOURCE, 64)], workers=1)
        with ProcessPoolExecutor(max_workers=1) as pool:
            futures = [pool.submit(compile_in_process,
                                   (str(tmp_path), SOURCE, 64))
                       for _ in range(3)]
            DiskCache(tmp_path).gc(0)
            results = [future.result() for future in futures]
        words = {tuple(w) for w, _ in results}
        assert len(words) == 1
        assert DiskCache(tmp_path).verify().clean
