"""Batch simulator tests: decode plans, engine parity, stacking.

The scalar :class:`repro.sim.CoreSimulator` is the oracle; every other
engine (the decoded single-lane interpreter and the numpy batch
engine) must be bit-identical to it on every program the toolchain can
produce.  The suite covers:

* differential parity over compiled applications (fixed seeds plus a
  Hypothesis-driven random-stimulus property),
* the controller edge cases batches make interesting — nested
  hardware loops, flag-driven CJMP *divergence* across lanes,
  pipelined-OPU in-flight results,
* candidate stacking (``run_programs`` executing several compiled
  variants as lanes of one batch),
* engine resolution (``auto``, ``REPRO_SIM_ENGINE``, the scalar
  fallback for undecodable programs),
* the short-stimulus guard and the ``sim.*`` telemetry counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, Telemetry, Toolchain, use_telemetry
from repro.apps import fir_application, lms_application
from repro.arch import CtrlOp
from repro.encode.assembler import EncodedProgram
from repro.errors import SimulationError
from repro.sim import (
    ENGINES,
    NUMPY_AVAILABLE,
    CoreSimulator,
    DecodedSimulator,
    PlanError,
    decode_program,
    resolve_engine,
    run_batch,
    run_program,
    run_programs,
)
from repro.sim import batch as batch_module

from stream_helpers import random_streams
from test_pipelined_opu import FIR3, pipelined_core
from test_sim_controller import ProgramBuilder, make_core, mux_index

BATCH_ENGINES = ["decoded"] + (["numpy"] if NUMPY_AVAILABLE else [])

OPTIONS = CompileOptions(disk_cache=False)


def scalar_oracle(program, lanes, n_frames=None):
    return [run_program(program, dict(streams), n_frames)
            for streams in lanes]


@pytest.fixture(scope="module")
def fir_program():
    toolchain = Toolchain("fir", OPTIONS)
    return toolchain.compile(fir_application([0.25, 0.5, -0.125, 0.3])).binary


@pytest.fixture(scope="module")
def lms_program():
    toolchain = Toolchain("adaptive", OPTIONS)
    return toolchain.compile(lms_application(n_taps=3)).binary


class TestDecodePlan:
    def test_plan_covers_every_word(self, fir_program):
        plan = decode_program(fir_program)
        assert plan.n_words == len(fir_program.words)

    def test_structure_key_is_stable(self, fir_program):
        a = decode_program(fir_program).structure_key()
        b = decode_program(fir_program).structure_key()
        assert a == b

    def test_decoded_simulator_matches_scalar(self, fir_program):
        streams = random_streams(["x"], 12, seed=7)
        simulator = DecodedSimulator(decode_program(fir_program))
        simulator.load_inputs(dict(streams))
        assert simulator.run_frames(12) == run_program(
            fir_program, dict(streams), 12)


class TestDifferentialApps:
    """Compiled applications: every engine equals the scalar oracle."""

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_fir_batch_parity(self, fir_program, engine):
        lanes = [random_streams(["x"], 10, seed=s) for s in range(9)]
        assert run_batch(fir_program, lanes, engine=engine) == \
            scalar_oracle(fir_program, lanes)

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_lms_batch_parity(self, lms_program, engine):
        ports = sorted(set(lms_program.input_map.values()))
        lanes = [random_streams(ports, 8, seed=40 + s) for s in range(8)]
        assert run_batch(lms_program, lanes, engine=engine) == \
            scalar_oracle(lms_program, lanes)

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_ragged_stream_lengths_group_by_frames(self, fir_program,
                                                   engine):
        # Lanes with different stream lengths derive different frame
        # counts; the batch path must split them without reordering.
        lanes = [random_streams(["x"], n, seed=n) for n in (4, 9, 4, 6)]
        assert run_batch(fir_program, lanes, engine=engine) == \
            scalar_oracle(fir_program, lanes)

    @settings(max_examples=20, deadline=None)
    @given(seeds=st.lists(st.integers(min_value=0, max_value=2 ** 16),
                          min_size=1, max_size=12),
           n_samples=st.integers(min_value=1, max_value=16))
    def test_property_random_stimulus_bit_identical(self, fir_program,
                                                    seeds, n_samples):
        lanes = [random_streams(["x"], n_samples, seed=s) for s in seeds]
        expected = scalar_oracle(fir_program, lanes)
        for engine in BATCH_ENGINES:
            assert run_batch(fir_program, lanes, engine=engine) == expected


def build_divergent_program():
    """A hand-assembled conditional: lanes take the CJMP (flag 0 set by
    a negative input) or fall through, writing 222 or 111."""
    core = make_core(n_flags=2, conditionals=True)
    pb = ProgramBuilder(core)
    read = {
        "ipb.op": pb.opcodes["ipb"]["read"],
        "rf_alu_p0.wr_en": 1,
        "rf_alu_p0.wr_addr": 0,
        "rf_alu_p0.mux": mux_index(core, "rf_alu_p0", "bus_ipb"),
    }
    pb.word(**read)                                        # w0: p0[0] <- x
    pb.alu("add", a=0, b=0)                                # w1: flags <- x
    pb.word(ctrl=CtrlOp.CJMP, arg=7, flag=0)               # w2: if neg
    pb.const_p1(111, 1)                                    # w3
    pb.alu("add", a=1, b=1, dest=("rf_opb", 0))            # w4 (p0[1]=0)
    pb.word(**{"opb.op": pb.opcodes["opb"]["write"],
               "opb.p0.addr": 0})                          # w5: y <- 111
    pb.word(ctrl=CtrlOp.JUMP, arg=10)                      # w6
    pb.const_p1(222, 1)                                    # w7
    pb.alu("add", a=1, b=1, dest=("rf_opb", 0))            # w8
    pb.word(**{"opb.op": pb.opcodes["opb"]["write"],
               "opb.p0.addr": 0})                          # w9: y <- 222
    pb.word(ctrl=CtrlOp.HALT)                              # w10
    program = pb.build()
    return EncodedProgram(
        core=program.core, format=program.format, words=program.words,
        n_body=program.n_body, body_offset=0, rom_words=(),
        acu_moduli={}, input_map={("ipb", 0): "x"},
        output_map={("opb", 5): "y", ("opb", 9): "y"},
        initial_registers={}, mode="once")


class TestControlFlowEdges:
    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_cjmp_lane_divergence(self, engine):
        program = build_divergent_program()
        lanes = [{"x": [value]} for value in
                 (5, -3, 0, -1, 100, -100, 7, -7, 1, -1, 0)]
        outputs = run_batch(program, lanes, n_frames=0, engine=engine)
        assert outputs == scalar_oracle(program, lanes, n_frames=0)
        got = [out["y"][0] for out in outputs]
        assert got == [111 if x >= 0 else 222
                       for x in (5, -3, 0, -1, 100, -100, 7, -7, 1, -1, 0)]

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_nested_loops_fill_the_stack(self, engine):
        core = make_core(stack_depth=4)
        pb = ProgramBuilder(core)
        pb.const_p1(1, 0)
        for count in (2, 3, 2, 2):                         # 24 iterations
            pb.word(ctrl=CtrlOp.LOOP, arg=count)
        pb.alu("add", a=0, b=0, dest=("rf_alu_p0", 0))
        for _ in range(4):
            pb.word(ctrl=CtrlOp.ENDL)
        pb.word(ctrl=CtrlOp.HALT)
        program = pb.build()
        oracle = CoreSimulator(program)
        oracle.run_frames(0, max_cycles=500)
        assert oracle.registers["rf_alu_p0"][0] == 24
        plan = decode_program(program)
        if engine == "decoded":
            simulator = DecodedSimulator(plan)
            simulator.run_frames(0, max_cycles=500)
            assert simulator.registers["rf_alu_p0"][0] == 24
            assert simulator.cycle == oracle.cycle
        else:
            simulator = batch_module.BatchSimulator(plan, 6)
            simulator.load_inputs([{} for _ in range(6)])
            simulator.run_frames(0, max_cycles=500)
            assert list(simulator.registers["rf_alu_p0"][:, 0]) == [24] * 6
            assert simulator.lane_cycles == 6 * oracle.cycle

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_pipelined_opu_latency(self, engine):
        toolchain = Toolchain(pipelined_core(mult_latency=2), OPTIONS)
        program = toolchain.compile(FIR3).binary
        lanes = [random_streams(["x"], 8, seed=s) for s in range(8)]
        assert run_batch(program, lanes, engine=engine) == \
            scalar_oracle(program, lanes)


class TestShortStreams:
    def test_run_program_rejects_short_stream(self, fir_program):
        with pytest.raises(SimulationError, match="'x'"):
            run_program(fir_program, {"x": []})

    def test_error_names_the_short_stream(self, lms_program):
        ports = sorted(set(lms_program.input_map.values()))
        streams = {port: [1, 2, 3] for port in ports}
        streams[ports[-1]] = []
        with pytest.raises(SimulationError, match=repr(ports[-1])):
            run_program(lms_program, streams)

    def test_run_batch_rejects_short_stream(self, fir_program):
        for engine in BATCH_ENGINES:
            with pytest.raises(SimulationError, match="'x'"):
                run_batch(fir_program, [{"x": [1]}, {"x": []}],
                          engine=engine)

    def test_explicit_n_frames_still_allowed(self, fir_program):
        # An explicit frame count bypasses the stream-derived default
        # (the simulator then raises only if it actually runs dry).
        outputs = run_program(fir_program, {"x": [100, 200]}, n_frames=2)
        assert len(outputs["y"]) == 2


class TestEngineResolution:
    def test_known_engines(self):
        assert set(ENGINES) == {"auto", "scalar", "decoded", "numpy"}
        assert resolve_engine("scalar", 256) == "scalar"
        assert resolve_engine("decoded", 256) == "decoded"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown simulation"):
            resolve_engine("jit", 1)

    def test_auto_small_batches_stay_pure_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine("auto", 1) == "decoded"

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
    def test_auto_wide_batches_pick_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine("auto", batch_module.NUMPY_MIN_LANES) == "numpy"

    def test_env_var_forces_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "decoded")
        assert resolve_engine("auto", 512) == "decoded"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "bogus")
        with pytest.raises(SimulationError, match="REPRO_SIM_ENGINE"):
            resolve_engine("auto", 512)

    def test_env_var_does_not_override_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scalar")
        assert resolve_engine("decoded", 512) == "decoded"

    def test_numpy_without_numpy_is_an_error(self, monkeypatch):
        monkeypatch.setattr(batch_module, "NUMPY_AVAILABLE", False)
        with pytest.raises(SimulationError, match="numpy is not installed"):
            resolve_engine("numpy", 16)

    def test_auto_without_numpy_degrades(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        monkeypatch.setattr(batch_module, "NUMPY_AVAILABLE", False)
        assert resolve_engine("auto", 512) == "decoded"

    def test_undecodable_program_falls_back_to_scalar(self, fir_program,
                                                      monkeypatch):
        def refuse(program):
            raise PlanError("not decodable")

        monkeypatch.setattr(batch_module, "decode_program", refuse)
        streams = random_streams(["x"], 6, seed=3)
        expected = run_program(fir_program, dict(streams))
        obs = Telemetry()
        with use_telemetry(obs):
            assert run_batch(fir_program, [streams]) == [expected]
        (span,) = obs.spans("simulate")
        assert span.tags["engine"] == "scalar"
        assert span.tags["fallback"] == "plan"
        with pytest.raises(PlanError):
            run_batch(fir_program, [streams], engine="decoded")


class TestRunPrograms:
    COEFFS = [[0.3, -0.45, 0.21], [0.11, 0.27, -0.33], [0.6, -0.15, 0.09]]

    @pytest.fixture(scope="class")
    def variants(self):
        options = CompileOptions(disk_cache=False, opt=0)
        return [Toolchain("fir", options).compile(fir_application(c)).binary
                for c in self.COEFFS]

    def test_variants_share_a_control_path(self, variants):
        keys = {decode_program(b).structure_key() for b in variants}
        assert len(keys) == 1

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
    def test_stacked_outputs_match_oracle(self, variants):
        streams = random_streams(["x"], 10, seed=11)
        stacked = run_programs(variants, streams, engine="numpy")
        oracle = [run_program(b, dict(streams)) for b in variants]
        assert stacked == oracle
        assert len({tuple(out["y"]) for out in stacked}) == len(variants)

    def test_per_program_inputs(self, variants):
        lanes = [random_streams(["x"], 8, seed=70 + s)
                 for s in range(len(variants))]
        expected = [run_program(b, dict(streams))
                    for b, streams in zip(variants, lanes)]
        for engine in BATCH_ENGINES:
            assert run_programs(variants, lanes, engine=engine) == expected

    def test_mixed_structures_keep_program_order(self, variants,
                                                 lms_program):
        programs = [variants[0], lms_program, variants[1]]
        lms_ports = sorted(set(lms_program.input_map.values()))
        lanes = [random_streams(["x"], 8, seed=1),
                 random_streams(lms_ports, 8, seed=2),
                 random_streams(["x"], 8, seed=3)]
        expected = [run_program(b, dict(streams))
                    for b, streams in zip(programs, lanes)]
        for engine in BATCH_ENGINES:
            assert run_programs(programs, lanes, engine=engine) == expected

    def test_empty_and_mismatched_inputs(self, variants):
        assert run_programs([], {}) == []
        with pytest.raises(SimulationError, match="stimulus dicts"):
            run_programs(variants, [{"x": [1]}])


class TestTelemetry:
    def test_scalar_run_counts_and_span(self, fir_program):
        obs = Telemetry()
        streams = random_streams(["x"], 6, seed=5)
        with use_telemetry(obs):
            run_program(fir_program, streams)
        expected_frames = 6 // fir_program.repeat_count
        (span,) = obs.spans("simulate")
        assert span.tags["engine"] == "scalar"
        assert span.tags["n_frames"] == expected_frames
        assert obs.counters["sim.frames"] == expected_frames
        assert obs.counters["sim.batch_width"] == 1
        assert obs.counters["sim.cycles"] > 0

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_batch_run_counts_every_lane(self, fir_program, engine):
        obs = Telemetry()
        lanes = [random_streams(["x"], 4, seed=s) for s in range(3)]
        with use_telemetry(obs):
            run_batch(fir_program, lanes, engine=engine)
        (span,) = obs.spans("simulate")
        assert span.tags["engine"] == engine
        assert span.tags["lanes"] == 3
        assert obs.counters["sim.frames"] == 3 * (4 // fir_program.repeat_count)
        assert obs.counters["sim.batch_width"] == 3
        assert obs.counters["sim.cycles"] > 0

    def test_counters_are_documented(self):
        from repro.obs import COUNTERS
        for name in ("sim.cycles", "sim.frames", "sim.batch_width"):
            assert name in COUNTERS


class TestSimulatePoints:
    def test_exploration_candidates_run_real_stimulus(self):
        from repro import simulate_points
        from repro.arch import Allocation, explore

        dfg = fir_application([0.5, 0.25, 0.125])
        points = explore([dfg], [Allocation(n_mult=1),
                                 Allocation(n_mult=2)])
        stimuli = random_streams(["x"], 8, seed=31)
        sims = simulate_points(dfg, points, stimuli)
        assert len(sims) == len(points)
        streams = []
        for sim in sims:
            if sim.point.feasible:
                assert sim.ok
                assert len(sim.outputs) == 1
                streams.append(sim.outputs[0])
            else:
                assert not sim.ok and sim.failure
        # The same application on different feasible cores computes the
        # same streams — that is what makes candidates comparable.
        assert streams and all(out == streams[0] for out in streams)

    def test_per_lane_stimuli(self):
        from repro import simulate_points
        from repro.arch import Allocation, explore

        dfg = fir_application([0.5, 0.25, 0.125])
        points = explore([dfg], [Allocation()])
        lanes = [random_streams(["x"], 6, seed=s) for s in (1, 2)]
        (sim,) = simulate_points(dfg, points, lanes)
        assert sim.ok and len(sim.outputs) == 2
        assert sim.outputs[0] != sim.outputs[1]


class TestToolchainIntegration:
    def test_toolchain_run_accepts_engine(self):
        toolchain = Toolchain("fir", OPTIONS)
        app = fir_application([0.25, 0.5, 0.25])
        streams = random_streams(["x"], 6, seed=9)
        expected = toolchain.run(app, dict(streams), engine="scalar")
        for engine in BATCH_ENGINES:
            assert toolchain.run(app, dict(streams), engine=engine) == \
                expected

    def test_toolchain_run_batch_of_stimuli(self):
        toolchain = Toolchain("fir", OPTIONS)
        app = fir_application([0.25, 0.5, 0.25])
        lanes = [random_streams(["x"], 6, seed=20 + s) for s in range(4)]
        outputs = toolchain.run(app, [dict(lane) for lane in lanes])
        program = toolchain.compile(app).binary
        assert outputs == scalar_oracle(program, lanes)
