"""Tests for the differential fuzz harness (repro.gen.fuzz + shrink).

The harness cannot be trusted on green runs alone, so the suite plants
an artificial defect (``inject="mult"`` corrupts the compiled image on
graphs containing a ``mult``) and proves the full chain — detection,
seed replay, greedy shrinking — end to end.  With the lint oracle on
(the default) the planted defect must be caught *without simulating*;
with ``lint=False`` the legacy decoded-engine perturbation covers the
differential path.
"""

from __future__ import annotations

import pytest

from repro import Telemetry, use_telemetry
from repro.errors import ReproError
from repro.gen import (
    FuzzConfig,
    FuzzReport,
    GenSpec,
    available_engines,
    fuzz,
    generate_dfg,
    run_case,
    shrink_dfg,
)
from repro.lang.dfg import NodeKind
from repro.lang.parser import parse_source

#: Keep planted-defect campaigns cheap: small graphs, few shrink steps.
SMALL = GenSpec(max_ops=8)


class TestRunCase:
    def test_clean_case_is_ok_on_every_engine(self):
        dfg = generate_dfg(SMALL, 1, core="fir")
        result = run_case(dfg, "fir", stimulus_seed=1)
        assert result.status == "ok"
        assert result.levels_compiled

    def test_unroutable_graph_is_infeasible(self):
        # audio has no 'sub' OPU: a sub-only graph cannot route there.
        spec = GenSpec(ops=(("sub", 2),), constant_density=0.0,
                       mult_coefficient_bias=0.0)
        dfg = generate_dfg(spec, 0)
        result = run_case(dfg, "audio", stimulus_seed=0)
        assert result.status == "infeasible"
        assert not result.levels_compiled

    def test_engine_subset_is_honored(self):
        dfg = generate_dfg(SMALL, 2, core="fir")
        result = run_case(dfg, "fir", engines=("scalar",), stimulus_seed=2)
        assert result.status == "ok"

    def test_injected_defect_names_the_decoded_engine(self):
        spec = GenSpec(ops=(("mult", 2),), min_ops=1, max_ops=2)
        dfg = generate_dfg(spec, 0, core="fir")
        result = run_case(dfg, "fir", stimulus_seed=0, inject="mult",
                          lint=False)
        assert result.status == "mismatch"
        assert "decoded" in result.detail

    def test_inject_without_the_op_is_harmless(self):
        spec = GenSpec(ops=(("add", 2),), constant_density=0.0,
                       mult_coefficient_bias=0.0)
        dfg = generate_dfg(spec, 0, core="fir")
        assert run_case(dfg, "fir", stimulus_seed=0,
                        inject="mult").status == "ok"


class TestFuzzCampaign:
    def test_clean_campaign_reports_shape(self):
        report = fuzz(FuzzConfig(core="fir", seed=0, count=6, spec=SMALL))
        assert isinstance(report, FuzzReport)
        assert report.ok
        assert report.n_cases == 6
        assert report.n_ok + report.n_infeasible == 6
        payload = report.to_dict()
        assert payload["core"] == "fir"
        assert payload["n_failures"] == 0
        assert payload["levels"] == [0, 1, 2]
        assert set(payload["engines"]) == set(available_engines())
        assert payload["spec"]["max_ops"] == SMALL.max_ops

    def test_campaign_needs_a_budget(self):
        with pytest.raises(ReproError, match="count or a time budget"):
            fuzz(FuzzConfig(count=None, time_budget=None))

    def test_time_budget_runs_at_least_one_case(self):
        report = fuzz(FuzzConfig(core="fir", count=None, time_budget=1e-6,
                                 spec=SMALL))
        assert report.n_cases == 1

    def test_telemetry_counts_cases(self):
        obs = Telemetry()
        with use_telemetry(obs):
            fuzz(FuzzConfig(core="fir", seed=0, count=3, spec=SMALL))
        assert obs.counters.get("fuzz.cases") == 3

    def test_progress_callback_sees_every_case(self):
        seen = []
        fuzz(FuzzConfig(core="fir", seed=5, count=4, spec=SMALL),
             progress=seen.append)
        assert [record["done"] for record in seen] == [1, 2, 3, 4]
        assert [record["seed"] for record in seen] == [5, 6, 7, 8]


class TestInjectedFailure:
    CONFIG = FuzzConfig(core="fir", seed=0, count=6, spec=SMALL,
                        inject="mult", shrink_attempts=80, lint=False)

    def test_detected_shrunk_and_replayable(self):
        report = fuzz(self.CONFIG)
        assert not report.ok
        failure = report.failures[0]
        assert failure.status == "mismatch"
        assert "decoded" in failure.detail

        # Shrinking kept the graph failing, smaller, and well-formed:
        # the minimal graph must still contain the trigger operation.
        assert failure.shrunk_nodes <= failure.n_nodes
        shrunk = parse_source(failure.shrunk_source)
        shrunk.validate()
        assert any(node.kind is NodeKind.OP and node.name == "mult"
                   for node in shrunk.nodes)

        # Replay contract: a count=1 campaign at the case seed
        # reproduces the identical finding.
        replay = fuzz(FuzzConfig(core="fir", seed=failure.seed, count=1,
                                 spec=SMALL, inject="mult",
                                 shrink_attempts=80, lint=False))
        assert len(replay.failures) == 1
        assert replay.failures[0].detail == failure.detail
        assert replay.failures[0].shrunk_source == failure.shrunk_source

    def test_campaign_is_deterministic(self):
        first, second = fuzz(self.CONFIG), fuzz(self.CONFIG)
        assert ([f.to_dict() for f in first.failures]
                == [f.to_dict() for f in second.failures])

    def test_no_shrink_leaves_failures_unminimized(self):
        report = fuzz(FuzzConfig(core="fir", seed=0, count=6, spec=SMALL,
                                 inject="mult", shrink=False, lint=False))
        assert not report.ok
        assert all(f.shrunk_source is None for f in report.failures)


class TestLintOracle:
    """The simulation-free third oracle (``repro.analyze.lint_program``)."""

    def test_planted_defect_caught_without_simulation(self):
        spec = GenSpec(ops=(("mult", 2),), min_ops=1, max_ops=2)
        dfg = generate_dfg(spec, 0, core="fir")
        result = run_case(dfg, "fir", stimulus_seed=0, inject="mult")
        assert result.status == "lint"
        assert result.failed
        assert "without simulation" in result.detail
        assert "mc.bus-hazard" in result.detail

    def test_lint_campaign_flags_planted_defects(self):
        report = fuzz(FuzzConfig(core="fir", seed=0, count=6, spec=SMALL,
                                 inject="mult", shrink=False))
        assert not report.ok
        assert report.failures
        assert all(f.status == "lint" for f in report.failures)

    def test_clean_campaign_with_lint_oracle_is_green(self):
        report = fuzz(FuzzConfig(core="fir", seed=11, count=6, spec=SMALL))
        assert report.ok

    def test_lint_false_restores_differential_only_harness(self):
        spec = GenSpec(ops=(("mult", 2),), min_ops=1, max_ops=2)
        dfg = generate_dfg(spec, 0, core="fir")
        result = run_case(dfg, "fir", stimulus_seed=0, inject="mult",
                          lint=False)
        assert result.status == "mismatch"


class TestShrinker:
    def test_shrinks_to_a_minimal_failing_graph(self):
        dfg = generate_dfg(GenSpec(min_ops=10, max_ops=14), 3, core="fir")

        def still_fails(candidate):
            return any(node.kind is NodeKind.OP and node.name == "mult"
                       for node in candidate.nodes)

        if not still_fails(dfg):
            pytest.skip("seed 3 grew no mult; adjust the seed")
        shrunk = shrink_dfg(dfg, still_fails)
        shrunk.validate()
        assert len(shrunk.nodes) < len(dfg.nodes)
        assert still_fails(shrunk)

    def test_never_accepts_a_passing_candidate(self):
        dfg = generate_dfg(GenSpec(), 4, core="fir")
        shrunk = shrink_dfg(dfg, lambda candidate: False)
        assert shrunk is dfg

    def test_attempt_budget_is_respected(self):
        dfg = generate_dfg(GenSpec(min_ops=12, max_ops=14), 6, core="fir")
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return True

        shrink_dfg(dfg, predicate, max_attempts=3)
        assert len(calls) <= 3
